//! The HAVING condition language and its evaluator.
//!
//! HAVING conditions quantify over the *states* of a window's sequence
//! (`EXISTS ?k IN seq`, `FORALL ?i < ?j IN seq`), inspect the RDF graph at a
//! state (`GRAPH ?i { ?s sie:hasValue ?x }`), and compare values
//! (`?x <= ?y`). Two layers:
//!
//! * [`ProtoFormula`] — the parser's output: may contain `$param`
//!   placeholders and macro calls (`MONOTONIC.HAVING(?c2, sie:hasValue)`);
//!   [`expand`] substitutes macro definitions away,
//! * [`HavingFormula`] — the closed form the evaluator runs against a
//!   [`crate::sequence::StateSequence`].
//!
//! `FORALL`'s universally-quantified value variables are range-restricted
//! by the graph patterns in the `IF` condition (the classical safe-formula
//! requirement): evaluation enumerates the condition's satisfying
//! assignments and checks the consequent under each.

use std::collections::{BTreeMap, HashMap};

use optique_rdf::{Iri, Term};
use optique_relational::AggAcc;
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};

use crate::sequence::StateSequence;

/// Window-aggregate functions usable in HAVING atoms like
/// `SUM(?c, sie:hasValue) >= 100`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// Number of non-null values.
    Count,
    /// Sum of numeric values.
    Sum,
    /// Arithmetic mean of numeric values.
    Avg,
    /// Smallest numeric value.
    Min,
    /// Largest numeric value.
    Max,
}

impl AggFunc {
    /// Parses an aggregate keyword (case-insensitive); `None` for any other
    /// identifier, so ordinary macro namespaces keep working.
    pub fn from_keyword(word: &str) -> Option<AggFunc> {
        match word.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// Per-subject window aggregates handed to the evaluator for a tick: the
/// group key is the minted subject term (one group per sensor), the value
/// the combined accumulator over the window's tuples.
pub type AggContext = BTreeMap<Term, AggAcc>;

/// Comparison operators in value comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A term in the pre-expansion formula: variable, constant, or `$param`.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtoTerm {
    /// `?x`.
    Var(String),
    /// An IRI or literal constant.
    Const(Term),
    /// `$param` (macro formal).
    Param(String),
}

/// A graph-pattern atom whose predicate may still be a `$param`.
#[derive(Clone, PartialEq, Debug)]
pub struct ProtoAtom {
    /// Subject.
    pub subject: ProtoTerm,
    /// Predicate: an IRI or a parameter. `None` encodes the unary
    /// class-style pattern `{ ?x sie:showsFailure }` where the "predicate"
    /// slot is really a class.
    pub predicate: ProtoPred,
    /// Object, absent for unary patterns.
    pub object: Option<ProtoTerm>,
}

/// Predicate slot of a proto atom.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtoPred {
    /// A known IRI.
    Iri(Iri),
    /// A macro parameter.
    Param(String),
}

/// Pre-expansion HAVING formula.
#[derive(Clone, PartialEq, Debug)]
pub enum ProtoFormula {
    /// Always true.
    True,
    /// `EXISTS ?k IN seq : body`.
    Exists {
        /// Quantified state variables.
        state_vars: Vec<String>,
        /// Scope.
        body: Box<ProtoFormula>,
    },
    /// `FORALL ?i < ?j IN seq, ?x, ?y : body`.
    Forall {
        /// Quantified state variables (the `< `-chain order constraint is
        /// expressed separately inside the body when present).
        state_vars: Vec<String>,
        /// Universally quantified value variables.
        value_vars: Vec<String>,
        /// Scope (normally an `IF`).
        body: Box<ProtoFormula>,
    },
    /// `IF (cond) THEN then`.
    If {
        /// Antecedent (range-restricts value variables).
        cond: Box<ProtoFormula>,
        /// Consequent.
        then: Box<ProtoFormula>,
    },
    /// Conjunction.
    And(Box<ProtoFormula>, Box<ProtoFormula>),
    /// Disjunction.
    Or(Box<ProtoFormula>, Box<ProtoFormula>),
    /// Negation.
    Not(Box<ProtoFormula>),
    /// `?i, ?j < ?k`: every left state index precedes the right one.
    StateLess {
        /// Left state variables.
        left: Vec<String>,
        /// Right state variable.
        right: String,
    },
    /// `GRAPH ?k { atoms }`.
    Graph {
        /// The state variable.
        state: String,
        /// The pattern.
        atoms: Vec<ProtoAtom>,
    },
    /// Value comparison.
    Cmp {
        /// Left term.
        left: ProtoTerm,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: ProtoTerm,
    },
    /// `NS.NAME(args)` aggregate macro call.
    MacroCall {
        /// Namespace part.
        namespace: String,
        /// Name part.
        name: String,
        /// Actual arguments.
        args: Vec<ProtoTerm>,
    },
    /// `SUM(?c, sie:hasValue) >= 100` — a window aggregate over one
    /// subject's values of a property, compared against a threshold.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The grouped subject (a WHERE variable or a constant IRI).
        subject: ProtoTerm,
        /// The aggregated value property.
        property: ProtoPred,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold term (a numeric literal or a bound variable).
        threshold: ProtoTerm,
    },
}

/// Macro-expansion and `$param` resolution: turns a [`ProtoFormula`] into an
/// evaluable [`HavingFormula`] given the query's aggregate definitions.
pub fn expand(
    formula: &ProtoFormula,
    macros: &[crate::ast::AggregateDef],
) -> Result<HavingFormula, String> {
    expand_with(formula, macros, &HashMap::new(), 0)
}

fn expand_with(
    formula: &ProtoFormula,
    macros: &[crate::ast::AggregateDef],
    params: &HashMap<String, ProtoTerm>,
    depth: usize,
) -> Result<HavingFormula, String> {
    if depth > 16 {
        return Err("aggregate macros nest too deep (cycle?)".into());
    }
    let resolve_term = |t: &ProtoTerm| -> Result<QueryTerm, String> {
        match t {
            ProtoTerm::Var(v) => Ok(QueryTerm::var(v.clone())),
            ProtoTerm::Const(c) => Ok(QueryTerm::Const(c.clone())),
            ProtoTerm::Param(p) => match params.get(p) {
                Some(ProtoTerm::Var(v)) => Ok(QueryTerm::var(v.clone())),
                Some(ProtoTerm::Const(c)) => Ok(QueryTerm::Const(c.clone())),
                Some(ProtoTerm::Param(_)) => Err(format!("parameter ${p} bound to a parameter")),
                None => Err(format!("unbound macro parameter ${p}")),
            },
        }
    };
    let resolve_pred = |p: &ProtoPred| -> Result<Iri, String> {
        match p {
            ProtoPred::Iri(iri) => Ok(iri.clone()),
            ProtoPred::Param(name) => match params.get(name) {
                Some(ProtoTerm::Const(Term::Iri(iri))) => Ok(iri.clone()),
                Some(other) => Err(format!(
                    "parameter ${name} used as predicate but bound to {other:?}"
                )),
                None => Err(format!("unbound macro parameter ${name}")),
            },
        }
    };

    Ok(match formula {
        ProtoFormula::True => HavingFormula::True,
        ProtoFormula::Exists { state_vars, body } => HavingFormula::Exists {
            state_vars: state_vars.clone(),
            body: Box::new(expand_with(body, macros, params, depth)?),
        },
        ProtoFormula::Forall {
            state_vars,
            value_vars,
            body,
        } => HavingFormula::Forall {
            state_vars: state_vars.clone(),
            value_vars: value_vars.clone(),
            body: Box::new(expand_with(body, macros, params, depth)?),
        },
        ProtoFormula::If { cond, then } => HavingFormula::If {
            cond: Box::new(expand_with(cond, macros, params, depth)?),
            then: Box::new(expand_with(then, macros, params, depth)?),
        },
        ProtoFormula::And(a, b) => HavingFormula::And(
            Box::new(expand_with(a, macros, params, depth)?),
            Box::new(expand_with(b, macros, params, depth)?),
        ),
        ProtoFormula::Or(a, b) => HavingFormula::Or(
            Box::new(expand_with(a, macros, params, depth)?),
            Box::new(expand_with(b, macros, params, depth)?),
        ),
        ProtoFormula::Not(a) => {
            HavingFormula::Not(Box::new(expand_with(a, macros, params, depth)?))
        }
        ProtoFormula::StateLess { left, right } => HavingFormula::StateLess {
            left: left.clone(),
            right: right.clone(),
        },
        ProtoFormula::Graph { state, atoms } => {
            let mut out = Vec::with_capacity(atoms.len());
            for atom in atoms {
                let subject = resolve_term(&atom.subject)?;
                match &atom.object {
                    Some(object) => {
                        let predicate = resolve_pred(&atom.predicate)?;
                        out.push(Atom::Property {
                            property: predicate,
                            subject,
                            object: resolve_term(object)?,
                        });
                    }
                    None => {
                        // Unary pattern `{ ?x C }`: class membership.
                        let class = resolve_pred(&atom.predicate)?;
                        out.push(Atom::Class {
                            class,
                            arg: subject,
                        });
                    }
                }
            }
            HavingFormula::Graph {
                state: state.clone(),
                atoms: out,
            }
        }
        ProtoFormula::Cmp { left, op, right } => HavingFormula::Cmp {
            left: resolve_term(left)?,
            op: *op,
            right: resolve_term(right)?,
        },
        ProtoFormula::MacroCall {
            namespace,
            name,
            args,
        } => {
            let def = macros
                .iter()
                .find(|d| {
                    d.namespace.eq_ignore_ascii_case(namespace) && d.name.eq_ignore_ascii_case(name)
                })
                .ok_or_else(|| format!("unknown aggregate macro {namespace}.{name}"))?;
            if def.params.len() != args.len() {
                return Err(format!(
                    "macro {namespace}.{name} expects {} arguments, got {}",
                    def.params.len(),
                    args.len()
                ));
            }
            // Resolve actual args in the current param scope first.
            let mut inner: HashMap<String, ProtoTerm> = HashMap::new();
            for (formal, actual) in def.params.iter().zip(args) {
                let resolved = match actual {
                    ProtoTerm::Param(p) => params
                        .get(p)
                        .cloned()
                        .ok_or_else(|| format!("unbound macro parameter ${p}"))?,
                    other => other.clone(),
                };
                inner.insert(formal.clone(), resolved);
            }
            expand_with(&def.body, macros, &inner, depth + 1)?
        }
        ProtoFormula::Agg {
            func,
            subject,
            property,
            op,
            threshold,
        } => HavingFormula::Agg {
            func: *func,
            subject: resolve_term(subject)?,
            property: resolve_pred(property)?,
            op: *op,
            threshold: resolve_term(threshold)?,
        },
    })
}

/// The evaluable HAVING formula.
#[derive(Clone, PartialEq, Debug)]
pub enum HavingFormula {
    /// Always true.
    True,
    /// Existential state quantifier.
    Exists {
        /// Quantified state variables.
        state_vars: Vec<String>,
        /// Scope.
        body: Box<HavingFormula>,
    },
    /// Universal state/value quantifier.
    Forall {
        /// Quantified state variables.
        state_vars: Vec<String>,
        /// Universally quantified value variables (range-restricted by the
        /// `IF` condition in the body).
        value_vars: Vec<String>,
        /// Scope.
        body: Box<HavingFormula>,
    },
    /// Guarded implication.
    If {
        /// Antecedent.
        cond: Box<HavingFormula>,
        /// Consequent.
        then: Box<HavingFormula>,
    },
    /// Conjunction.
    And(Box<HavingFormula>, Box<HavingFormula>),
    /// Disjunction.
    Or(Box<HavingFormula>, Box<HavingFormula>),
    /// Negation.
    Not(Box<HavingFormula>),
    /// State-order constraint.
    StateLess {
        /// Left state variables.
        left: Vec<String>,
        /// Right state variable.
        right: String,
    },
    /// Graph pattern at a state.
    Graph {
        /// State variable.
        state: String,
        /// Pattern atoms.
        atoms: Vec<Atom>,
    },
    /// Value comparison.
    Cmp {
        /// Left term.
        left: QueryTerm,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: QueryTerm,
    },
    /// Window aggregate comparison: `FUNC(subject, property) op threshold`.
    ///
    /// Evaluated against the tick's [`AggContext`] (per-subject accumulators
    /// over the whole window), not against individual states — which is what
    /// lets the engine answer it from pane partials without materializing
    /// the window.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The grouped subject.
        subject: QueryTerm,
        /// The aggregated value property.
        property: Iri,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold term.
        threshold: QueryTerm,
    },
}

/// Evaluation environment: state variables → state indices, value
/// variables → RDF terms.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// State-variable bindings.
    pub states: HashMap<String, usize>,
    /// Value-variable bindings.
    pub values: HashMap<String, Term>,
}

impl HavingFormula {
    /// Evaluates the formula over a state sequence under an environment
    /// binding its free variables. Formulas containing [`HavingFormula::Agg`]
    /// atoms need [`HavingFormula::eval_with`] and an aggregate context.
    pub fn eval(&self, seq: &StateSequence, env: &Env) -> Result<bool, String> {
        self.eval_with(seq, env, None)
    }

    /// Evaluates the formula, additionally supplying the tick's per-subject
    /// window aggregates for [`HavingFormula::Agg`] atoms.
    pub fn eval_with(
        &self,
        seq: &StateSequence,
        env: &Env,
        aggs: Option<&AggContext>,
    ) -> Result<bool, String> {
        match self {
            HavingFormula::True => Ok(true),
            HavingFormula::Exists { state_vars, body } => {
                let n = seq.states.len();
                let mut env = env.clone();
                exists_rec(state_vars, 0, n, &mut env, |e| body.eval_with(seq, e, aggs))
            }
            HavingFormula::Forall {
                state_vars,
                value_vars: _,
                body,
            } => {
                // Enumerate all state assignments; the body (typically an
                // IF) handles value-variable range restriction.
                let n = seq.states.len();
                let mut env = env.clone();
                forall_rec(state_vars, 0, n, &mut env, |e| body.eval_with(seq, e, aggs))
            }
            HavingFormula::If { cond, then } => {
                // For every satisfying extension of the antecedent, the
                // consequent must hold.
                for extended in cond.satisfying_assignments(seq, env, aggs)? {
                    if !then.eval_with(seq, &extended, aggs)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            HavingFormula::And(..) => {
                // Conjunctions evaluate existentially over the bindings their
                // graph patterns produce: `GRAPH ?k {?s :v ?x} AND ?x >= 95`
                // holds when SOME match of the pattern satisfies the
                // comparison. Non-binding conjuncts act as boolean filters.
                Ok(!self.satisfying_assignments(seq, env, aggs)?.is_empty())
            }
            HavingFormula::Or(a, b) => {
                Ok(a.eval_with(seq, env, aggs)? || b.eval_with(seq, env, aggs)?)
            }
            HavingFormula::Not(a) => Ok(!a.eval_with(seq, env, aggs)?),
            HavingFormula::StateLess { left, right } => {
                let r = lookup_state(env, right)?;
                for l in left {
                    if lookup_state(env, l)? >= r {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            HavingFormula::Graph { state, atoms } => {
                let idx = lookup_state(env, state)?;
                let graph = &seq
                    .states
                    .get(idx)
                    .ok_or_else(|| format!("state index {idx} out of range"))?
                    .graph;
                let cq = pattern_query(atoms, env, &[]);
                Ok(!cq.evaluate(graph).is_empty())
            }
            HavingFormula::Cmp { left, op, right } => {
                let l = lookup_value(env, left)?;
                let r = lookup_value(env, right)?;
                Ok(op.test(compare_terms(&l, &r)))
            }
            HavingFormula::Agg {
                func,
                subject,
                property: _,
                op,
                threshold,
            } => {
                let Some(ctx) = aggs else {
                    return Err(
                        "aggregate atom requires a windowed aggregate context (eval_with)".into(),
                    );
                };
                let subj = lookup_value(env, subject)?;
                let threshold = match lookup_value(env, threshold)? {
                    Term::Literal(lit) => lit
                        .as_f64()
                        .ok_or_else(|| format!("aggregate threshold {lit:?} is not numeric"))?,
                    other => return Err(format!("aggregate threshold {other:?} is not a literal")),
                };
                let acc = ctx.get(&subj);
                // A subject with no rows in the window has COUNT 0 but no
                // defined SUM/AVG/MIN/MAX — those comparisons are false.
                let value = match (func, acc) {
                    (AggFunc::Count, None) => Some(0.0),
                    (AggFunc::Count, Some(a)) => Some(a.count as f64),
                    (_, None) => None,
                    (AggFunc::Sum, Some(a)) => (a.count > 0).then(|| a.sum()),
                    (AggFunc::Avg, Some(a)) => (a.count > 0).then(|| a.sum() / a.count as f64),
                    (AggFunc::Min, Some(a)) => a.min,
                    (AggFunc::Max, Some(a)) => a.max,
                };
                Ok(value.is_some_and(|v| op.test(v.total_cmp(&threshold))))
            }
        }
    }

    /// Enumerates the environments extending `env` that satisfy this
    /// formula — defined for the conjunctive fragment (AND / Graph /
    /// StateLess / Cmp); other connectives act as boolean filters.
    fn satisfying_assignments(
        &self,
        seq: &StateSequence,
        env: &Env,
        aggs: Option<&AggContext>,
    ) -> Result<Vec<Env>, String> {
        match self {
            HavingFormula::And(a, b) => {
                let mut out = Vec::new();
                for e in a.satisfying_assignments(seq, env, aggs)? {
                    out.extend(b.satisfying_assignments(seq, &e, aggs)?);
                }
                Ok(out)
            }
            HavingFormula::Graph { state, atoms } => {
                let idx = lookup_state(env, state)?;
                let graph = &seq
                    .states
                    .get(idx)
                    .ok_or_else(|| format!("state index {idx} out of range"))?
                    .graph;
                // Free variables of the pattern become answer variables.
                let free = free_value_vars(atoms, env);
                let cq = pattern_query(atoms, env, &free);
                let mut out = Vec::new();
                for tuple in cq.evaluate(graph) {
                    let mut extended = env.clone();
                    for (var, term) in free.iter().zip(tuple) {
                        extended.values.insert(var.clone(), term);
                    }
                    out.push(extended);
                }
                Ok(out)
            }
            other => {
                if other.eval_with(seq, env, aggs)? {
                    Ok(vec![env.clone()])
                } else {
                    Ok(vec![])
                }
            }
        }
    }
}

fn exists_rec(
    vars: &[String],
    i: usize,
    n: usize,
    env: &mut Env,
    check: impl Fn(&Env) -> Result<bool, String> + Copy,
) -> Result<bool, String> {
    if i == vars.len() {
        return check(env);
    }
    for s in 0..n {
        env.states.insert(vars[i].clone(), s);
        if exists_rec(vars, i + 1, n, env, check)? {
            env.states.remove(&vars[i]);
            return Ok(true);
        }
    }
    env.states.remove(&vars[i]);
    Ok(false)
}

fn forall_rec(
    vars: &[String],
    i: usize,
    n: usize,
    env: &mut Env,
    check: impl Fn(&Env) -> Result<bool, String> + Copy,
) -> Result<bool, String> {
    if i == vars.len() {
        return check(env);
    }
    for s in 0..n {
        env.states.insert(vars[i].clone(), s);
        if !forall_rec(vars, i + 1, n, env, check)? {
            env.states.remove(&vars[i]);
            return Ok(false);
        }
    }
    env.states.remove(&vars[i]);
    Ok(true)
}

fn lookup_state(env: &Env, var: &str) -> Result<usize, String> {
    env.states
        .get(var)
        .copied()
        .ok_or_else(|| format!("unbound state variable ?{var}"))
}

fn lookup_value(env: &Env, term: &QueryTerm) -> Result<Term, String> {
    match term {
        QueryTerm::Const(c) => Ok(c.clone()),
        QueryTerm::Var(v) => env
            .values
            .get(v)
            .cloned()
            .ok_or_else(|| format!("unbound value variable ?{v}")),
    }
}

/// Numeric comparison when both terms are numeric literals; term order
/// otherwise.
fn compare_terms(a: &Term, b: &Term) -> std::cmp::Ordering {
    if let (Term::Literal(la), Term::Literal(lb)) = (a, b) {
        if let (Some(x), Some(y)) = (la.as_f64(), lb.as_f64()) {
            return x.total_cmp(&y);
        }
    }
    a.cmp(b)
}

/// Builds a CQ from pattern atoms, substituting env-bound variables by
/// constants; `answer_vars` selects which free variables to report.
fn pattern_query(atoms: &[Atom], env: &Env, answer_vars: &[String]) -> ConjunctiveQuery {
    let substitute = |t: &QueryTerm| -> QueryTerm {
        match t {
            QueryTerm::Var(v) => match env.values.get(v) {
                Some(term) => QueryTerm::Const(term.clone()),
                None => t.clone(),
            },
            QueryTerm::Const(_) => t.clone(),
        }
    };
    let atoms = atoms
        .iter()
        .map(|a| match a {
            Atom::Class { class, arg } => Atom::Class {
                class: class.clone(),
                arg: substitute(arg),
            },
            Atom::Property {
                property,
                subject,
                object,
            } => Atom::Property {
                property: property.clone(),
                subject: substitute(subject),
                object: substitute(object),
            },
        })
        .collect();
    ConjunctiveQuery::new(answer_vars.to_vec(), atoms)
}

// ---- stream-restriction safety -----------------------------------------
//
// The distributed tick path may ship each window *restricted* to the rows
// whose subject key belongs to some statically-bound subject (a semi-join
// pushed from the static side of the stream-static join). Restriction
// drops rows that are **foreign** to every binding — and with them it may
// drop whole states (timestamps whose every tuple was foreign). The
// analysis below decides, purely syntactically, when that can never change
// the formula's outcome for any binding:
//
// * every `GRAPH` atom's subject must be a WHERE-bound variable or a
//   constant (checked by the caller, which also inverts the subjects to
//   raw keys) — then a foreign state satisfies *no* graph atom;
// * no `NOT` anywhere — negation can turn a foreign state into a witness;
// * every `EXISTS`-quantified state variable is **guarded**: any witness
//   must satisfy a graph atom at it, so a foreign state is never a
//   witness and removing it removes nothing;
// * every `FORALL`-quantified state variable is **vacuously satisfied at
//   foreign states**: the body is an `IF` whose condition guards the
//   variable (false at foreign ⇒ implication true), so removing the state
//   removes only trivially-met obligations — the classical safe-formula
//   shape the parser already enforces for value variables.

impl HavingFormula {
    /// The subject terms of every `GRAPH` atom in the formula.
    pub fn graph_subjects(&self) -> Vec<&QueryTerm> {
        fn walk<'a>(f: &'a HavingFormula, out: &mut Vec<&'a QueryTerm>) {
            match f {
                HavingFormula::Graph { atoms, .. } => {
                    for atom in atoms {
                        match atom {
                            Atom::Class { arg, .. } => out.push(arg),
                            Atom::Property { subject, .. } => out.push(subject),
                        }
                    }
                }
                HavingFormula::Exists { body, .. } | HavingFormula::Forall { body, .. } => {
                    walk(body, out)
                }
                HavingFormula::If { cond, then } => {
                    walk(cond, out);
                    walk(then, out);
                }
                HavingFormula::And(a, b) | HavingFormula::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                HavingFormula::Not(a) => walk(a, out),
                // Aggregate atoms group by subject exactly as graph atoms
                // match by subject: the restriction machinery must keep every
                // aggregated subject's rows in the shipped window.
                HavingFormula::Agg { subject, .. } => out.push(subject),
                HavingFormula::True
                | HavingFormula::StateLess { .. }
                | HavingFormula::Cmp { .. } => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// True when dropping stream tuples foreign to every statically-bound
    /// subject provably cannot change this formula's outcome (see the
    /// module-level discussion above). The caller must separately ensure
    /// every graph-atom subject is bound or constant and inverts to a
    /// stream key.
    pub fn restriction_safe(&self) -> bool {
        match self {
            // An aggregate atom reads only its own subject's group; the
            // restricted window keeps all rows of every bound subject (and
            // of every inverted constant subject — `graph_subjects` reports
            // them), so the group's accumulator is unchanged.
            HavingFormula::True
            | HavingFormula::StateLess { .. }
            | HavingFormula::Graph { .. }
            | HavingFormula::Cmp { .. }
            | HavingFormula::Agg { .. } => true,
            HavingFormula::Not(_) => false,
            HavingFormula::And(a, b) | HavingFormula::Or(a, b) => {
                a.restriction_safe() && b.restriction_safe()
            }
            HavingFormula::If { cond, then } => cond.restriction_safe() && then.restriction_safe(),
            HavingFormula::Exists { state_vars, body } => {
                body.restriction_safe() && state_vars.iter().all(|v| body.guards(v))
            }
            HavingFormula::Forall {
                state_vars, body, ..
            } => body.restriction_safe() && state_vars.iter().all(|v| body.vacuous_at_foreign(v)),
        }
    }

    /// True when any satisfying assignment must match a graph atom at
    /// state variable `var` — so a state with no bound-subject triples can
    /// never participate in a witness.
    fn guards(&self, var: &str) -> bool {
        match self {
            HavingFormula::Graph { state, atoms } => state == var && !atoms.is_empty(),
            HavingFormula::And(a, b) => a.guards(var) || b.guards(var),
            HavingFormula::Or(a, b) => a.guards(var) && b.guards(var),
            // An EXISTS holds only through some satisfying body
            // assignment, which must itself guard the outer variable.
            HavingFormula::Exists { body, .. } => body.guards(var),
            // FORALL over an empty candidate set is vacuously true without
            // any graph match; IF escapes through ¬cond; the rest never
            // force a match.
            _ => false,
        }
    }

    /// True when the formula is satisfied by *any* assignment placing
    /// `var` on a foreign state — so removing that state removes only
    /// vacuously-met obligations of an enclosing FORALL.
    fn vacuous_at_foreign(&self, var: &str) -> bool {
        match self {
            HavingFormula::True => true,
            // ¬cond ∨ then: cond guarding `var` is false at a foreign
            // state, so the implication holds there.
            HavingFormula::If { cond, then } => cond.guards(var) || then.vacuous_at_foreign(var),
            HavingFormula::And(a, b) => a.vacuous_at_foreign(var) && b.vacuous_at_foreign(var),
            HavingFormula::Or(a, b) => a.vacuous_at_foreign(var) || b.vacuous_at_foreign(var),
            _ => false,
        }
    }
}

/// Variables of the pattern not bound in the environment, in first-seen
/// order.
fn free_value_vars(atoms: &[Atom], env: &Env) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for atom in atoms {
        for term in atom.terms() {
            if let QueryTerm::Var(v) = term {
                if !env.values.contains_key(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod restriction_safety_tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn graph(state: &str, subject: &str) -> HavingFormula {
        HavingFormula::Graph {
            state: state.into(),
            atoms: vec![Atom::Property {
                property: iri("hasValue"),
                subject: QueryTerm::var(subject),
                object: QueryTerm::var("x"),
            }],
        }
    }

    #[test]
    fn guarded_exists_is_safe() {
        let f = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::And(
                Box::new(graph("k", "c")),
                Box::new(HavingFormula::Cmp {
                    left: QueryTerm::var("x"),
                    op: CmpOp::Ge,
                    right: QueryTerm::Const(Term::Literal(optique_rdf::Literal::integer(90))),
                }),
            )),
        };
        assert!(f.restriction_safe());
    }

    #[test]
    fn unguarded_exists_is_unsafe() {
        // A witness state need not match any graph pattern: a foreign
        // state could be the witness.
        let f = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::True),
        };
        assert!(!f.restriction_safe());
        // An IF body escapes through ¬cond: also no guard.
        let via_if = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::If {
                cond: Box::new(graph("k", "c")),
                then: Box::new(HavingFormula::True),
            }),
        };
        assert!(!via_if.restriction_safe());
    }

    #[test]
    fn negation_is_unsafe_anywhere() {
        let f = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::And(
                Box::new(graph("k", "c")),
                Box::new(HavingFormula::Not(Box::new(graph("k", "c")))),
            )),
        };
        assert!(!f.restriction_safe());
    }

    #[test]
    fn forall_needs_a_guarding_condition() {
        // The classical safe shape: IF cond guards every quantified state
        // var → vacuous at foreign states.
        let safe = HavingFormula::Forall {
            state_vars: vec!["i".into(), "j".into()],
            value_vars: vec!["x".into()],
            body: Box::new(HavingFormula::If {
                cond: Box::new(HavingFormula::And(
                    Box::new(graph("i", "c")),
                    Box::new(graph("j", "c")),
                )),
                then: Box::new(HavingFormula::True),
            }),
        };
        assert!(safe.restriction_safe());
        // A condition guarding only one var leaves real obligations at
        // foreign assignments of the other (a trivially-true consequent
        // would still be vacuous — so use a comparison).
        let unsafe_forall = HavingFormula::Forall {
            state_vars: vec!["i".into(), "j".into()],
            value_vars: vec![],
            body: Box::new(HavingFormula::If {
                cond: Box::new(graph("i", "c")),
                then: Box::new(HavingFormula::Graph {
                    state: "j".into(),
                    atoms: vec![Atom::Class {
                        class: iri("Ok"),
                        arg: QueryTerm::var("c"),
                    }],
                }),
            }),
        };
        assert!(!unsafe_forall.restriction_safe());
    }

    #[test]
    fn or_guards_only_when_both_branches_guard() {
        let both = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::Or(
                Box::new(graph("k", "c")),
                Box::new(graph("k", "d")),
            )),
        };
        assert!(both.restriction_safe());
        let one = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::Or(
                Box::new(graph("k", "c")),
                Box::new(HavingFormula::True),
            )),
        };
        assert!(!one.restriction_safe());
    }

    #[test]
    fn graph_subjects_collects_all_positions() {
        let f = HavingFormula::And(
            Box::new(graph("k", "c")),
            Box::new(HavingFormula::Graph {
                state: "k".into(),
                atoms: vec![Atom::Class {
                    class: iri("Failure"),
                    arg: QueryTerm::Const(Term::iri("http://x/sensor/7")),
                }],
            }),
        );
        let subjects = f.graph_subjects();
        assert_eq!(subjects.len(), 2);
        assert!(subjects
            .iter()
            .any(|s| matches!(s, QueryTerm::Var(v) if v == "c")));
        assert!(subjects.iter().any(|s| matches!(s, QueryTerm::Const(_))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{State, StateSequence};
    use optique_rdf::{Graph, Iri, Literal, Triple};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn sensor(n: u32) -> Term {
        Term::iri(format!("http://x/sensor/{n}"))
    }

    /// Sequence of 4 states: sensor 1's value rises 70, 75, 80 then shows a
    /// failure; sensor 2 falls.
    fn rising_sequence() -> StateSequence {
        let mut states = Vec::new();
        for (t, (v1, v2)) in [(70.0, 90.0), (75.0, 85.0), (80.0, 80.0)]
            .iter()
            .enumerate()
        {
            let mut g = Graph::new();
            g.insert(Triple::new(
                sensor(1),
                iri("hasValue"),
                Term::Literal(Literal::double(*v1)),
            ));
            g.insert(Triple::new(
                sensor(2),
                iri("hasValue"),
                Term::Literal(Literal::double(*v2)),
            ));
            states.push(State {
                timestamp: t as i64 * 1000,
                graph: g,
            });
        }
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(sensor(1), iri("showsFailure")));
        states.push(State {
            timestamp: 3000,
            graph: g,
        });
        StateSequence { states }
    }

    /// The Figure 1 monotonicity formula for a given sensor.
    fn monotonic_formula(sensor_var: &str) -> HavingFormula {
        let graph_failure = HavingFormula::Graph {
            state: "k".into(),
            atoms: vec![Atom::class(iri("showsFailure"), QueryTerm::var(sensor_var))],
        };
        let cond = HavingFormula::And(
            Box::new(HavingFormula::StateLess {
                left: vec!["i".into(), "j".into()],
                right: "k".into(),
            }),
            Box::new(HavingFormula::And(
                Box::new(HavingFormula::Graph {
                    state: "i".into(),
                    atoms: vec![Atom::property(
                        iri("hasValue"),
                        QueryTerm::var(sensor_var),
                        QueryTerm::var("x"),
                    )],
                }),
                Box::new(HavingFormula::Graph {
                    state: "j".into(),
                    atoms: vec![Atom::property(
                        iri("hasValue"),
                        QueryTerm::var(sensor_var),
                        QueryTerm::var("y"),
                    )],
                }),
            )),
        );
        let implication = HavingFormula::If {
            cond: Box::new(cond),
            then: Box::new(HavingFormula::Cmp {
                left: QueryTerm::var("x"),
                op: CmpOp::Le,
                right: QueryTerm::var("y"),
            }),
        };
        // NOTE: ?i < ?j ordering is enforced via StateLess in the antecedent
        // together with i,j < k; the original formula's `?i < ?j` is added:
        let ordered = HavingFormula::If {
            cond: Box::new(HavingFormula::And(
                Box::new(HavingFormula::StateLess {
                    left: vec!["i".into()],
                    right: "j".into(),
                }),
                match implication.clone() {
                    HavingFormula::If { cond, .. } => cond,
                    _ => unreachable!(),
                },
            )),
            then: Box::new(HavingFormula::Cmp {
                left: QueryTerm::var("x"),
                op: CmpOp::Le,
                right: QueryTerm::var("y"),
            }),
        };
        HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(HavingFormula::And(
                Box::new(graph_failure),
                Box::new(HavingFormula::Forall {
                    state_vars: vec!["i".into(), "j".into()],
                    value_vars: vec!["x".into(), "y".into()],
                    body: Box::new(ordered),
                }),
            )),
        }
    }

    fn env_with_sensor(n: u32) -> Env {
        let mut env = Env::default();
        env.values.insert("c".into(), sensor(n));
        env
    }

    #[test]
    fn monotonic_rise_detected() {
        let seq = rising_sequence();
        let formula = monotonic_formula("c");
        assert!(formula.eval(&seq, &env_with_sensor(1)).unwrap());
    }

    #[test]
    fn falling_sensor_rejected() {
        // Sensor 2 falls and shows no failure: EXISTS fails already.
        let seq = rising_sequence();
        let formula = monotonic_formula("c");
        assert!(!formula.eval(&seq, &env_with_sensor(2)).unwrap());
    }

    #[test]
    fn failure_without_monotonicity_rejected() {
        // Rearrange: sensor 1 falls then fails — FORALL must reject.
        let mut seq = rising_sequence();
        seq.states.swap(0, 2); // values now 80, 75, 70, then failure
        let formula = monotonic_formula("c");
        assert!(!formula.eval(&seq, &env_with_sensor(1)).unwrap());
    }

    #[test]
    fn empty_sequence_has_no_witness() {
        let seq = StateSequence { states: vec![] };
        let formula = monotonic_formula("c");
        assert!(!formula.eval(&seq, &env_with_sensor(1)).unwrap());
    }

    #[test]
    fn vacuous_forall_is_true() {
        let seq = rising_sequence();
        // FORALL over a pattern that never matches.
        let f = HavingFormula::Forall {
            state_vars: vec!["i".into()],
            value_vars: vec!["x".into()],
            body: Box::new(HavingFormula::If {
                cond: Box::new(HavingFormula::Graph {
                    state: "i".into(),
                    atoms: vec![Atom::property(
                        iri("noSuchProp"),
                        QueryTerm::var("c"),
                        QueryTerm::var("x"),
                    )],
                }),
                then: Box::new(HavingFormula::Cmp {
                    left: QueryTerm::var("x"),
                    op: CmpOp::Lt,
                    right: QueryTerm::var("x"),
                }),
            }),
        };
        assert!(f.eval(&seq, &env_with_sensor(1)).unwrap());
    }

    #[test]
    fn cmp_numeric_semantics() {
        let seq = StateSequence { states: vec![] };
        let f = HavingFormula::Cmp {
            left: QueryTerm::Const(Term::Literal(Literal::integer(2))),
            op: CmpOp::Lt,
            right: QueryTerm::Const(Term::Literal(Literal::double(2.5))),
        };
        assert!(f.eval(&seq, &Env::default()).unwrap());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let seq = rising_sequence();
        let f = HavingFormula::Cmp {
            left: QueryTerm::var("nope"),
            op: CmpOp::Eq,
            right: QueryTerm::var("nope"),
        };
        assert!(f.eval(&seq, &Env::default()).is_err());
    }

    #[test]
    fn macro_expansion_substitutes_params() {
        use crate::ast::AggregateDef;
        let def = AggregateDef {
            namespace: "M".into(),
            name: "TEST".into(),
            params: vec!["var".into(), "attr".into()],
            body: ProtoFormula::Exists {
                state_vars: vec!["k".into()],
                body: Box::new(ProtoFormula::Graph {
                    state: "k".into(),
                    atoms: vec![ProtoAtom {
                        subject: ProtoTerm::Param("var".into()),
                        predicate: ProtoPred::Param("attr".into()),
                        object: Some(ProtoTerm::Var("x".into())),
                    }],
                }),
            },
        };
        let call = ProtoFormula::MacroCall {
            namespace: "M".into(),
            name: "TEST".into(),
            args: vec![
                ProtoTerm::Var("c".into()),
                ProtoTerm::Const(Term::Iri(iri("hasValue"))),
            ],
        };
        let expanded = expand(&call, &[def]).unwrap();
        let HavingFormula::Exists { body, .. } = expanded else {
            panic!()
        };
        let HavingFormula::Graph { atoms, .. } = *body else {
            panic!()
        };
        assert_eq!(
            atoms[0],
            Atom::property(iri("hasValue"), QueryTerm::var("c"), QueryTerm::var("x"))
        );
    }

    #[test]
    fn unknown_macro_is_an_error() {
        let call = ProtoFormula::MacroCall {
            namespace: "NO".into(),
            name: "PE".into(),
            args: vec![],
        };
        assert!(expand(&call, &[]).is_err());
    }

    fn agg_formula(func: AggFunc, op: CmpOp, threshold: f64) -> HavingFormula {
        HavingFormula::Agg {
            func,
            subject: QueryTerm::var("c"),
            property: iri("hasValue"),
            op,
            threshold: QueryTerm::Const(Term::Literal(Literal::double(threshold))),
        }
    }

    fn agg_ctx() -> AggContext {
        let mut acc = AggAcc::default();
        for v in [70.0, 75.0, 80.0] {
            acc.observe(&optique_relational::Value::Float(v)).unwrap();
        }
        let mut ctx = AggContext::new();
        ctx.insert(sensor(1), acc);
        ctx
    }

    #[test]
    fn agg_atoms_evaluate_against_the_context() {
        let seq = StateSequence { states: vec![] };
        let ctx = agg_ctx();
        let env = env_with_sensor(1);
        let cases = [
            (AggFunc::Sum, CmpOp::Ge, 225.0, true),
            (AggFunc::Sum, CmpOp::Gt, 225.0, false),
            (AggFunc::Count, CmpOp::Eq, 3.0, true),
            (AggFunc::Avg, CmpOp::Eq, 75.0, true),
            (AggFunc::Min, CmpOp::Eq, 70.0, true),
            (AggFunc::Max, CmpOp::Eq, 80.0, true),
        ];
        for (func, op, t, expect) in cases {
            let f = agg_formula(func, op, t);
            assert_eq!(
                f.eval_with(&seq, &env, Some(&ctx)).unwrap(),
                expect,
                "{func:?} {op:?} {t}"
            );
        }
    }

    #[test]
    fn missing_group_counts_zero_and_fails_other_aggregates() {
        let seq = StateSequence { states: vec![] };
        let ctx = agg_ctx();
        let env = env_with_sensor(2); // no group for sensor 2
        assert!(agg_formula(AggFunc::Count, CmpOp::Eq, 0.0)
            .eval_with(&seq, &env, Some(&ctx))
            .unwrap());
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            assert!(
                !agg_formula(func, CmpOp::Ge, -1e18)
                    .eval_with(&seq, &env, Some(&ctx))
                    .unwrap(),
                "{func:?} over an empty group must not satisfy any comparison"
            );
        }
    }

    #[test]
    fn agg_without_context_is_an_error() {
        let seq = StateSequence { states: vec![] };
        assert!(agg_formula(AggFunc::Sum, CmpOp::Ge, 0.0)
            .eval(&seq, &env_with_sensor(1))
            .is_err());
    }

    #[test]
    fn agg_combines_with_connectives_and_graph_atoms() {
        let seq = rising_sequence();
        let ctx = agg_ctx();
        let env = env_with_sensor(1);
        // AND with a graph pattern: both sides must hold.
        let combo = HavingFormula::And(
            Box::new(HavingFormula::Exists {
                state_vars: vec!["k".into()],
                body: Box::new(HavingFormula::Graph {
                    state: "k".into(),
                    atoms: vec![Atom::class(iri("showsFailure"), QueryTerm::var("c"))],
                }),
            }),
            Box::new(agg_formula(AggFunc::Max, CmpOp::Ge, 80.0)),
        );
        assert!(combo.eval_with(&seq, &env, Some(&ctx)).unwrap());
        let failing = HavingFormula::And(
            Box::new(HavingFormula::True),
            Box::new(agg_formula(AggFunc::Max, CmpOp::Gt, 80.0)),
        );
        assert!(!failing.eval_with(&seq, &env, Some(&ctx)).unwrap());
    }

    #[test]
    fn agg_is_restriction_safe_and_reports_its_subject() {
        let f = agg_formula(AggFunc::Sum, CmpOp::Ge, 100.0);
        assert!(f.restriction_safe());
        let subjects = f.graph_subjects();
        assert_eq!(subjects.len(), 1);
        assert!(matches!(subjects[0], QueryTerm::Var(v) if v == "c"));
        // But an aggregate never guards a state variable: EXISTS over an
        // agg-only body stays unsafe.
        let unguarded = HavingFormula::Exists {
            state_vars: vec!["k".into()],
            body: Box::new(agg_formula(AggFunc::Sum, CmpOp::Ge, 100.0)),
        };
        assert!(!unguarded.restriction_safe());
    }

    #[test]
    fn agg_expands_through_macros() {
        use crate::ast::AggregateDef;
        let def = AggregateDef {
            namespace: "THRESH".into(),
            name: "SUMGE".into(),
            params: vec!["var".into(), "attr".into()],
            body: ProtoFormula::Agg {
                func: AggFunc::Sum,
                subject: ProtoTerm::Param("var".into()),
                property: ProtoPred::Param("attr".into()),
                op: CmpOp::Ge,
                threshold: ProtoTerm::Const(Term::Literal(Literal::integer(100))),
            },
        };
        let call = ProtoFormula::MacroCall {
            namespace: "THRESH".into(),
            name: "SUMGE".into(),
            args: vec![
                ProtoTerm::Var("c".into()),
                ProtoTerm::Const(Term::Iri(iri("hasValue"))),
            ],
        };
        let HavingFormula::Agg {
            func,
            subject,
            property,
            ..
        } = expand(&call, &[def]).unwrap()
        else {
            panic!()
        };
        assert_eq!(func, AggFunc::Sum);
        assert_eq!(subject, QueryTerm::var("c"));
        assert_eq!(property, iri("hasValue"));
    }

    #[test]
    fn unary_pattern_expands_to_class_atom() {
        let proto = ProtoFormula::Graph {
            state: "k".into(),
            atoms: vec![ProtoAtom {
                subject: ProtoTerm::Var("c".into()),
                predicate: ProtoPred::Iri(iri("showsFailure")),
                object: None,
            }],
        };
        let HavingFormula::Graph { atoms, .. } = expand(&proto, &[]).unwrap() else {
            panic!()
        };
        assert!(matches!(&atoms[0], Atom::Class { .. }));
    }
}
