//! STARQL lexer.

/// A token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// STARQL token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Keyword / bare identifier / CURIE (`sie:hasValue`, `:MonInc`,
    /// `MONOTONIC`, `rdf:type`).
    Ident(String),
    /// `?name` variable.
    Var(String),
    /// `$name` macro parameter.
    Param(String),
    /// `<…>` IRI reference.
    IriRef(String),
    /// `"…"` string literal (datatype tag, if any, arrives as `^^` + Ident).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `^^` datatype marker.
    Carets,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->`
    Arrow,
    /// `-`
    Minus,
    /// `+`
    Plus,
    /// `!` (only inside WHERE clauses, whose tokens the SPARQL parser
    /// consumes from the raw source)
    Bang,
    /// `&` (see [`TokenKind::Bang`])
    Amp,
    /// `|` (see [`TokenKind::Bang`])
    Pipe,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes STARQL text. `#` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    // Byte offsets per char index for error reporting.
    let mut offsets = Vec::with_capacity(chars.len() + 1);
    let mut acc = 0;
    for c in &chars {
        offsets.push(acc);
        acc += c.len_utf8();
    }
    offsets.push(acc);

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let offset = offsets[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let kind = match c {
            '{' => {
                i += 1;
                TokenKind::LBrace
            }
            '}' => {
                i += 1;
                TokenKind::RBrace
            }
            '[' => {
                i += 1;
                TokenKind::LBracket
            }
            ']' => {
                i += 1;
                TokenKind::RBracket
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            ';' => {
                i += 1;
                TokenKind::Semicolon
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    // Bare `!` only occurs inside SPARQL WHERE clauses; the
                    // STARQL parser skips those tokens and re-parses the raw
                    // source, so it just needs to lex.
                    i += 1;
                    TokenKind::Bang
                }
            }
            '&' => {
                i += 1;
                TokenKind::Amp
            }
            '|' => {
                i += 1;
                TokenKind::Pipe
            }
            '^' => {
                if chars.get(i + 1) == Some(&'^') {
                    i += 2;
                    TokenKind::Carets
                } else {
                    return Err(LexError {
                        offset,
                        message: "stray '^'".into(),
                    });
                }
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    i += 2;
                    TokenKind::Arrow
                } else {
                    i += 1;
                    TokenKind::Minus
                }
            }
            '<' => {
                // '<=' | '<iri>' | '<'
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    TokenKind::Le
                } else if chars
                    .get(i + 1)
                    .is_some_and(|n| n.is_alphabetic() || *n == '_')
                {
                    // Heuristic: `<` directly followed by a letter starts an
                    // IRI reference (comparisons are written with spaces).
                    let mut j = i + 1;
                    while j < chars.len() && chars[j] != '>' {
                        j += 1;
                    }
                    if j == chars.len() {
                        return Err(LexError {
                            offset,
                            message: "unterminated <IRI>".into(),
                        });
                    }
                    let iri: String = chars[i + 1..j].iter().collect();
                    i = j + 1;
                    TokenKind::IriRef(iri)
                } else {
                    i += 1;
                    TokenKind::Lt
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        Some('"') => {
                            j += 1;
                            break;
                        }
                        Some('\\') => {
                            if let Some(next) = chars.get(j + 1) {
                                s.push(*next);
                                j += 2;
                            } else {
                                return Err(LexError {
                                    offset,
                                    message: "unterminated escape".into(),
                                });
                            }
                        }
                        Some(ch) => {
                            s.push(*ch);
                            j += 1;
                        }
                        None => {
                            return Err(LexError {
                                offset,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                i = j;
                TokenKind::Str(s)
            }
            '?' => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(LexError {
                        offset,
                        message: "empty variable name".into(),
                    });
                }
                let name: String = chars[i + 1..j].iter().collect();
                i = j;
                TokenKind::Var(name)
            }
            '$' => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(LexError {
                        offset,
                        message: "empty parameter name".into(),
                    });
                }
                let name: String = chars[i + 1..j].iter().collect();
                i = j;
                TokenKind::Param(name)
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < chars.len() {
                    let ch = chars[j];
                    if ch.is_ascii_digit() {
                        j += 1;
                    } else if ch == '.'
                        && !is_float
                        && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                i = j;
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        offset,
                        message: format!("bad float {text}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        offset,
                        message: format!("bad integer {text}"),
                    })?)
                }
            }
            c if c.is_alphabetic() || c == '_' || c == ':' => {
                // Identifier or CURIE; a ':' is absorbed only when followed
                // by an identifier character (so `seq:` stays `seq` + `:`).
                let mut j = i;
                if c == ':' {
                    // Leading-colon CURIE like `:MonInc`.
                    j += 1;
                    if !chars.get(j).is_some_and(|n| is_ident_char(*n)) {
                        i += 1;
                        tokens.push(Token {
                            kind: TokenKind::Colon,
                            offset,
                        });
                        continue;
                    }
                }
                while j < chars.len() {
                    let ch = chars[j];
                    if is_ident_char(ch)
                        || (ch == ':' && chars.get(j + 1).is_some_and(|n| is_ident_char(*n)))
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word: String = chars[i..j].iter().collect();
                i = j;
                TokenKind::Ident(word)
            }
            other => {
                return Err(LexError {
                    offset,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        tokens.push(Token { kind, offset });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        lex(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn curies_and_vars() {
        assert_eq!(
            kinds("?c1 a sie:Assembly"),
            vec![
                TokenKind::Var("c1".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("sie:Assembly".into()),
            ]
        );
    }

    #[test]
    fn leading_colon_curie() {
        assert_eq!(kinds(":MonInc"), vec![TokenKind::Ident(":MonInc".into())]);
    }

    #[test]
    fn colon_not_absorbed_before_space() {
        assert_eq!(
            kinds("SEQ: GRAPH"),
            vec![
                TokenKind::Ident("SEQ".into()),
                TokenKind::Colon,
                TokenKind::Ident("GRAPH".into()),
            ]
        );
    }

    #[test]
    fn window_tokens() {
        assert_eq!(
            kinds("[NOW-\"PT10S\"^^xsd:duration, NOW]->\"PT1S\"^^xsd:duration"),
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("NOW".into()),
                TokenKind::Minus,
                TokenKind::Str("PT10S".into()),
                TokenKind::Carets,
                TokenKind::Ident("xsd:duration".into()),
                TokenKind::Comma,
                TokenKind::Ident("NOW".into()),
                TokenKind::RBracket,
                TokenKind::Arrow,
                TokenKind::Str("PT1S".into()),
                TokenKind::Carets,
                TokenKind::Ident("xsd:duration".into()),
            ]
        );
    }

    #[test]
    fn iriref_vs_comparison() {
        assert_eq!(
            kinds("<http://x/a> ?x <= ?y ?i < ?j"),
            vec![
                TokenKind::IriRef("http://x/a".into()),
                TokenKind::Var("x".into()),
                TokenKind::Le,
                TokenKind::Var("y".into()),
                TokenKind::Var("i".into()),
                TokenKind::Lt,
                TokenKind::Var("j".into()),
            ]
        );
    }

    #[test]
    fn params_and_macro_dots() {
        assert_eq!(
            kinds("MONOTONIC.HAVING($var,$attr)"),
            vec![
                TokenKind::Ident("MONOTONIC".into()),
                TokenKind::Dot,
                TokenKind::Ident("HAVING".into()),
                TokenKind::LParen,
                TokenKind::Param("var".into()),
                TokenKind::Comma,
                TokenKind::Param("attr".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn macro_colon_name_is_single_curie() {
        assert_eq!(
            kinds("MONOTONIC:HAVING"),
            vec![TokenKind::Ident("MONOTONIC:HAVING".into())]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a # rest\n b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn no_le_inside_compact_comparison() {
        assert_eq!(
            kinds("?x<=?y"),
            vec![
                TokenKind::Var("x".into()),
                TokenKind::Le,
                TokenKind::Var("y".into())
            ]
        );
    }

    #[test]
    fn errors_have_offsets() {
        let err = lex("abc ^def").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
