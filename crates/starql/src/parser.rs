//! Recursive-descent parser for STARQL (the paper's Figure 1 grammar).

use optique_rdf::{Iri, Literal, Namespaces, Term};
use optique_rewrite::{Atom, QueryTerm};

use crate::ast::{
    AggregateDef, OutputMode, PulseClause, SequenceMethod, StarQlQuery, StreamClause,
};
use crate::duration::{parse_clock_ms, parse_duration_ms};
use crate::having::{AggFunc, CmpOp, ProtoAtom, ProtoFormula, ProtoPred, ProtoTerm};
use crate::lexer::{lex, Token, TokenKind};

/// Parse failure with positional context.
#[derive(Debug, Clone, PartialEq)]
pub struct StarQlError {
    /// Byte offset in the source.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for StarQlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "STARQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for StarQlError {}

/// Parses a STARQL query. `namespaces` supplies prefix bindings used by
/// CURIEs; `PREFIX` declarations in the text extend them.
pub fn parse_starql(text: &str, namespaces: &Namespaces) -> Result<StarQlQuery, StarQlError> {
    let tokens = lex(text).map_err(|e| StarQlError {
        offset: e.offset,
        message: e.message,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        ns: namespaces.clone(),
        state_scope: Vec::new(),
        source: text.to_string(),
    };
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing tokens: {:?}", p.peek())));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ns: Namespaces,
    /// Stack of state-variable scopes (quantifier nesting) — used to tell
    /// `?i < ?j` (state order) apart from value comparisons.
    state_scope: Vec<Vec<String>>,
    /// The raw query text; the WHERE clause is re-sliced from it and handed
    /// to the SPARQL group-pattern parser.
    source: String,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn err(&self, message: String) -> StarQlError {
        StarQlError {
            offset: self.offset(),
            message,
        }
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), StarQlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, got {:?}", self.peek())))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), StarQlError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {kind:?}, got {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, StarQlError> {
        match self.bump() {
            Some(TokenKind::Ident(w)) => Ok(w),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn expect_var(&mut self) -> Result<String, StarQlError> {
        match self.bump() {
            Some(TokenKind::Var(v)) => Ok(v),
            other => Err(self.err(format!("expected ?variable, got {other:?}"))),
        }
    }

    fn resolve_curie(&self, curie: &str) -> Result<Iri, StarQlError> {
        self.ns.expand(curie).ok_or_else(|| StarQlError {
            offset: self.offset(),
            message: format!("unbound prefix in CURIE {curie}"),
        })
    }

    fn in_state_scope(&self, var: &str) -> bool {
        self.state_scope
            .iter()
            .any(|scope| scope.iter().any(|v| v == var))
    }

    // ---- top level ----------------------------------------------------

    fn parse_query(&mut self) -> Result<StarQlQuery, StarQlError> {
        // Optional PREFIX declarations.
        while self.eat_kw("PREFIX") {
            let prefix_word = match self.bump() {
                Some(TokenKind::Ident(w)) => w,
                Some(TokenKind::Colon) => String::new(),
                other => return Err(self.err(format!("expected prefix name, got {other:?}"))),
            };
            // `sie:` lexes as Ident("sie") + Colon when space-separated; the
            // colon may also have been absorbed.
            let prefix = prefix_word.trim_end_matches(':').to_string();
            if matches!(self.peek(), Some(TokenKind::Colon)) {
                self.pos += 1;
            }
            let Some(TokenKind::IriRef(iri)) = self.bump() else {
                return Err(self.err("expected <IRI> in PREFIX".into()));
            };
            self.ns.bind(prefix, iri);
        }

        self.expect_kw("CREATE")?;
        self.expect_kw("STREAM")?;
        let output_stream = self.expect_ident()?;
        self.expect_kw("AS")?;

        // Optional CQL relation-to-stream operator before CONSTRUCT.
        let output_mode = if self.eat_kw("ISTREAM") {
            OutputMode::IStream
        } else if self.eat_kw("DSTREAM") {
            OutputMode::DStream
        } else {
            self.eat_kw("RSTREAM");
            OutputMode::RStream
        };

        self.expect_kw("CONSTRUCT")?;
        self.expect_kw("GRAPH")?;
        self.expect_kw("NOW")?;
        self.expect(&TokenKind::LBrace)?;
        let construct = self.parse_bgp()?;
        self.expect(&TokenKind::RBrace)?;

        self.expect_kw("FROM")?;
        self.expect_kw("STREAM")?;
        let stream_name = self.expect_ident()?;
        let (range_ms, slide_ms) = self.parse_window()?;
        let stream = StreamClause {
            name: stream_name,
            range_ms,
            slide_ms,
        };

        let mut static_data = None;
        let mut ontology_ref = None;
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.pos += 1;
            if self.eat_kw("STATIC") {
                self.expect_kw("DATA")?;
                let Some(TokenKind::IriRef(iri)) = self.bump() else {
                    return Err(self.err("expected <IRI> after STATIC DATA".into()));
                };
                static_data = Some(iri);
            } else if self.eat_kw("ONTOLOGY") {
                let Some(TokenKind::IriRef(iri)) = self.bump() else {
                    return Err(self.err("expected <IRI> after ONTOLOGY".into()));
                };
                ontology_ref = Some(iri);
            } else {
                return Err(self.err("expected STATIC DATA or ONTOLOGY".into()));
            }
        }

        let pulse = if self.eat_kw("USING") {
            self.expect_kw("PULSE")?;
            self.expect_kw("WITH")?;
            self.expect_kw("START")?;
            self.expect(&TokenKind::Eq)?;
            let Some(TokenKind::Str(start)) = self.bump() else {
                return Err(self.err("expected quoted START value".into()));
            };
            self.skip_datatype_tag();
            self.expect(&TokenKind::Comma)?;
            self.expect_kw("FREQUENCY")?;
            self.expect(&TokenKind::Eq)?;
            let Some(TokenKind::Str(freq)) = self.bump() else {
                return Err(self.err("expected quoted FREQUENCY value".into()));
            };
            self.skip_datatype_tag();
            let start_ms = parse_clock_ms(&start)
                .or_else(|_| parse_duration_ms(&start))
                .map_err(|m| self.err(m))?;
            let frequency_ms = parse_lenient_duration(&freq).map_err(|m| self.err(m))?;
            Some(PulseClause {
                start_ms,
                frequency_ms,
            })
        } else {
            None
        };

        self.expect_kw("WHERE")?;
        let (where_disjuncts, where_filters) = self.parse_where_group()?;
        let where_bgp = where_disjuncts.first().cloned().unwrap_or_default();

        self.expect_kw("SEQUENCE")?;
        self.expect_kw("BY")?;
        let method = self.expect_ident()?;
        if !method.eq_ignore_ascii_case("StdSeq") {
            return Err(self.err(format!("unsupported sequencing method {method}")));
        }
        self.expect_kw("AS")?;
        let alias = self.expect_ident()?;
        let sequence = SequenceMethod::StdSeq { alias };

        self.expect_kw("HAVING")?;
        let having = self.parse_formula()?;

        let mut aggregates = Vec::new();
        while self.peek_kw("CREATE") {
            aggregates.push(self.parse_aggregate_def()?);
        }

        Ok(StarQlQuery {
            output_stream,
            output_mode,
            construct,
            stream,
            static_data,
            ontology_ref,
            pulse,
            where_bgp,
            where_disjuncts,
            where_filters,
            sequence,
            having,
            aggregates,
        })
    }

    /// Parses the WHERE clause by re-slicing its `{ … }` source text and
    /// delegating to the SPARQL group-graph-pattern parser, then lowering
    /// the pattern to a union of BGPs with per-disjunct FILTERs. Full SPARQL
    /// pattern *syntax* is accepted; `OPTIONAL` (no continuous-query
    /// semantics) and FILTER forms with no SQL translation (`REGEX`,
    /// `BOUND`) are rejected with a positioned explanation. Accepted
    /// filters are pushed into the unfolded SQL by the translator.
    #[allow(clippy::type_complexity)]
    fn parse_where_group(
        &mut self,
    ) -> Result<(Vec<Vec<Atom>>, Vec<Vec<optique_sparql::Expression>>), StarQlError> {
        let open = self.pos;
        let Some(Token {
            kind: TokenKind::LBrace,
            offset: start,
        }) = self.tokens.get(open).cloned()
        else {
            return Err(self.err(format!("expected {{ after WHERE, got {:?}", self.peek())));
        };
        // Find the matching close brace at this nesting level.
        let mut depth = 0usize;
        let mut close = None;
        for (i, token) in self.tokens.iter().enumerate().skip(open) {
            match token.kind {
                TokenKind::LBrace => depth += 1,
                TokenKind::RBrace => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return Err(self.err("unterminated WHERE clause (missing })".into()));
        };
        let end = self.tokens[close].offset + 1;
        let slice = &self.source[start..end];

        let group = optique_sparql::parse_group_graph_pattern(slice, &self.ns).map_err(|e| {
            StarQlError {
                offset: start,
                message: format!("in WHERE clause: {e}"),
            }
        })?;
        let lowered = group
            .bgp_disjuncts_with_filters()
            .map_err(|m| StarQlError {
                offset: start,
                message: format!("in WHERE clause: {m} in a continuous query"),
            })?;
        // Accept only FILTERs the translator can push into SQL; the rest
        // (REGEX, BOUND) have no continuous-query execution path.
        for (_, filters) in &lowered {
            for filter in filters {
                if let Some(blocked) = unsupported_filter_form(filter) {
                    return Err(StarQlError {
                        offset: start,
                        message: format!(
                            "in WHERE clause: FILTER {blocked} cannot be pushed into SQL \
                             in a continuous query (use comparisons and &&/||/!)"
                        ),
                    });
                }
            }
        }
        self.pos = close + 1;
        Ok(lowered.into_iter().unzip())
    }

    fn skip_datatype_tag(&mut self) {
        if matches!(self.peek(), Some(TokenKind::Carets)) {
            self.pos += 1;
            let _ = self.bump(); // the datatype CURIE
        }
    }

    /// `[NOW - "PT10S"^^xsd:duration, NOW] -> "PT1S"^^xsd:duration`
    fn parse_window(&mut self) -> Result<(i64, i64), StarQlError> {
        self.expect(&TokenKind::LBracket)?;
        self.expect_kw("NOW")?;
        self.expect(&TokenKind::Minus)?;
        let range = self.parse_duration_literal()?;
        self.expect(&TokenKind::Comma)?;
        self.expect_kw("NOW")?;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Arrow)?;
        let slide = self.parse_duration_literal()?;
        Ok((range, slide))
    }

    fn parse_duration_literal(&mut self) -> Result<i64, StarQlError> {
        let Some(TokenKind::Str(text)) = self.bump() else {
            return Err(self.err("expected quoted duration".into()));
        };
        self.skip_datatype_tag();
        parse_lenient_duration(&text).map_err(|m| self.err(m))
    }

    // ---- basic graph patterns -----------------------------------------

    /// Triples `t1 p t2 .` until the closing brace (not consumed).
    fn parse_bgp(&mut self) -> Result<Vec<Atom>, StarQlError> {
        let mut atoms = Vec::new();
        while !matches!(self.peek(), Some(TokenKind::RBrace) | None) {
            let subject = self.parse_query_term()?;
            let (is_type, predicate) = self.parse_predicate()?;
            let object = self.parse_query_term()?;
            if is_type {
                let QueryTerm::Const(Term::Iri(class)) = object else {
                    return Err(self.err("rdf:type object must be a class IRI".into()));
                };
                atoms.push(Atom::Class {
                    class,
                    arg: subject,
                });
            } else {
                atoms.push(Atom::Property {
                    property: predicate,
                    subject,
                    object,
                });
            }
            if matches!(self.peek(), Some(TokenKind::Dot)) {
                self.pos += 1;
            }
        }
        Ok(atoms)
    }

    /// Predicate position: `a` / `rdf:type` flag, or a property IRI.
    fn parse_predicate(&mut self) -> Result<(bool, Iri), StarQlError> {
        match self.bump() {
            Some(TokenKind::Ident(w)) if w == "a" => {
                Ok((true, Iri::new(optique_rdf::vocab::rdf::TYPE)))
            }
            Some(TokenKind::Ident(curie)) => {
                let iri = self.resolve_curie(&curie)?;
                Ok((iri.as_str() == optique_rdf::vocab::rdf::TYPE, iri))
            }
            Some(TokenKind::IriRef(iri)) => {
                let iri = Iri::new(iri);
                Ok((iri.as_str() == optique_rdf::vocab::rdf::TYPE, iri))
            }
            other => Err(self.err(format!("expected predicate, got {other:?}"))),
        }
    }

    fn parse_query_term(&mut self) -> Result<QueryTerm, StarQlError> {
        match self.bump() {
            Some(TokenKind::Var(v)) => Ok(QueryTerm::var(v)),
            Some(TokenKind::Ident(curie)) => {
                Ok(QueryTerm::Const(Term::Iri(self.resolve_curie(&curie)?)))
            }
            Some(TokenKind::IriRef(iri)) => Ok(QueryTerm::Const(Term::iri(iri))),
            Some(TokenKind::Str(s)) => {
                self.skip_datatype_tag();
                Ok(QueryTerm::Const(Term::Literal(Literal::string(s))))
            }
            Some(TokenKind::Int(i)) => Ok(QueryTerm::Const(Term::Literal(Literal::integer(i)))),
            Some(TokenKind::Float(f)) => Ok(QueryTerm::Const(Term::Literal(Literal::double(f)))),
            other => Err(self.err(format!("expected term, got {other:?}"))),
        }
    }

    // ---- HAVING formulas ----------------------------------------------

    fn parse_formula(&mut self) -> Result<ProtoFormula, StarQlError> {
        if self.peek_kw("EXISTS") {
            return self.parse_exists();
        }
        if self.peek_kw("FORALL") {
            return self.parse_forall();
        }
        self.parse_or()
    }

    fn parse_exists(&mut self) -> Result<ProtoFormula, StarQlError> {
        self.expect_kw("EXISTS")?;
        let mut vars = vec![self.expect_var()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.pos += 1;
            vars.push(self.expect_var()?);
        }
        self.expect_kw("IN")?;
        let _seq = self.expect_ident()?;
        self.expect(&TokenKind::Colon)?;
        self.state_scope.push(vars.clone());
        let body = self.parse_formula()?;
        self.state_scope.pop();
        Ok(ProtoFormula::Exists {
            state_vars: vars,
            body: Box::new(body),
        })
    }

    fn parse_forall(&mut self) -> Result<ProtoFormula, StarQlError> {
        self.expect_kw("FORALL")?;
        // State vars with optional `<` ordering chain: `?i < ?j`.
        let mut state_vars = vec![self.expect_var()?];
        let mut order_pairs: Vec<(String, String)> = Vec::new();
        while matches!(self.peek(), Some(TokenKind::Lt)) {
            self.pos += 1;
            let next = self.expect_var()?;
            order_pairs.push((state_vars.last().expect("nonempty").clone(), next.clone()));
            state_vars.push(next);
        }
        self.expect_kw("IN")?;
        let _seq = self.expect_ident()?;
        // Optional value variables.
        let mut value_vars = Vec::new();
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.pos += 1;
            value_vars.push(self.expect_var()?);
        }
        self.expect(&TokenKind::Colon)?;
        self.state_scope.push(state_vars.clone());
        let body = self.parse_formula()?;
        self.state_scope.pop();
        // Inject the header's ordering constraints into the body's guard.
        let body = if order_pairs.is_empty() {
            body
        } else {
            let mut order: Option<ProtoFormula> = None;
            for (l, r) in order_pairs {
                let c = ProtoFormula::StateLess {
                    left: vec![l],
                    right: r,
                };
                order = Some(match order {
                    None => c,
                    Some(prev) => ProtoFormula::And(Box::new(prev), Box::new(c)),
                });
            }
            let order = order.expect("nonempty");
            match body {
                ProtoFormula::If { cond, then } => ProtoFormula::If {
                    cond: Box::new(ProtoFormula::And(Box::new(order), cond)),
                    then,
                },
                other => ProtoFormula::If {
                    cond: Box::new(order),
                    then: Box::new(other),
                },
            }
        };
        Ok(ProtoFormula::Forall {
            state_vars,
            value_vars,
            body: Box::new(body),
        })
    }

    fn parse_or(&mut self) -> Result<ProtoFormula, StarQlError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = ProtoFormula::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<ProtoFormula, StarQlError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = ProtoFormula::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<ProtoFormula, StarQlError> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(ProtoFormula::Not(Box::new(inner)));
        }
        self.parse_atomic_formula()
    }

    fn parse_atomic_formula(&mut self) -> Result<ProtoFormula, StarQlError> {
        // Nested quantifiers are allowed in atomic position (Figure 1 puts
        // FORALL directly after AND).
        if self.peek_kw("EXISTS") {
            return self.parse_exists();
        }
        if self.peek_kw("FORALL") {
            return self.parse_forall();
        }
        if self.eat_kw("IF") {
            self.expect(&TokenKind::LParen)?;
            let cond = self.parse_formula()?;
            self.expect(&TokenKind::RParen)?;
            self.expect_kw("THEN")?;
            let then = self.parse_atomic_formula()?;
            return Ok(ProtoFormula::If {
                cond: Box::new(cond),
                then: Box::new(then),
            });
        }
        if self.peek_kw("GRAPH") {
            return self.parse_graph_formula();
        }
        if matches!(self.peek(), Some(TokenKind::LParen)) {
            self.pos += 1;
            let inner = self.parse_formula()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(inner);
        }
        // Window aggregate atom: SUM(?c, sie:hasValue) >= 100. The keyword
        // must be directly followed by `(` — `SUM.NAME(…)` stays a macro
        // call in the SUM namespace.
        if let Some(TokenKind::Ident(word)) = self.peek().cloned() {
            if let Some(func) = AggFunc::from_keyword(&word) {
                if matches!(self.peek2(), Some(TokenKind::LParen)) {
                    return self.parse_agg_atom(func);
                }
            }
            // Macro call: IDENT(.IDENT)?(…) — possibly a CURIE-shaped name.
            return self.parse_macro_call(word);
        }
        // Comparisons starting with a variable (or term).
        self.parse_comparison()
    }

    fn parse_graph_formula(&mut self) -> Result<ProtoFormula, StarQlError> {
        self.expect_kw("GRAPH")?;
        let state = self.expect_var()?;
        self.expect(&TokenKind::LBrace)?;
        let mut atoms = Vec::new();
        while !matches!(self.peek(), Some(TokenKind::RBrace) | None) {
            let subject = self.parse_proto_term()?;
            let predicate = self.parse_proto_pred()?;
            // Object present unless the atom ends here.
            let object = if matches!(
                self.peek(),
                Some(TokenKind::RBrace) | Some(TokenKind::Dot) | None
            ) {
                None
            } else {
                Some(self.parse_proto_term()?)
            };
            atoms.push(ProtoAtom {
                subject,
                predicate,
                object,
            });
            if matches!(self.peek(), Some(TokenKind::Dot)) {
                self.pos += 1;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(ProtoFormula::Graph { state, atoms })
    }

    fn parse_proto_term(&mut self) -> Result<ProtoTerm, StarQlError> {
        match self.bump() {
            Some(TokenKind::Var(v)) => Ok(ProtoTerm::Var(v)),
            Some(TokenKind::Param(p)) => Ok(ProtoTerm::Param(p)),
            Some(TokenKind::Ident(curie)) => {
                Ok(ProtoTerm::Const(Term::Iri(self.resolve_curie(&curie)?)))
            }
            Some(TokenKind::IriRef(iri)) => Ok(ProtoTerm::Const(Term::iri(iri))),
            Some(TokenKind::Int(i)) => Ok(ProtoTerm::Const(Term::Literal(Literal::integer(i)))),
            Some(TokenKind::Float(f)) => Ok(ProtoTerm::Const(Term::Literal(Literal::double(f)))),
            Some(TokenKind::Str(s)) => {
                self.skip_datatype_tag();
                Ok(ProtoTerm::Const(Term::Literal(Literal::string(s))))
            }
            other => Err(self.err(format!("expected term, got {other:?}"))),
        }
    }

    fn parse_proto_pred(&mut self) -> Result<ProtoPred, StarQlError> {
        match self.bump() {
            Some(TokenKind::Param(p)) => Ok(ProtoPred::Param(p)),
            Some(TokenKind::Ident(w)) if w == "a" => {
                Ok(ProtoPred::Iri(Iri::new(optique_rdf::vocab::rdf::TYPE)))
            }
            Some(TokenKind::Ident(curie)) => Ok(ProtoPred::Iri(self.resolve_curie(&curie)?)),
            Some(TokenKind::IriRef(iri)) => Ok(ProtoPred::Iri(Iri::new(iri))),
            other => Err(self.err(format!("expected predicate, got {other:?}"))),
        }
    }

    fn parse_macro_call(&mut self, first: String) -> Result<ProtoFormula, StarQlError> {
        self.pos += 1; // consume the ident
        let (namespace, name) = if let Some((ns, nm)) = first.split_once([':', '.']) {
            (ns.to_string(), nm.to_string())
        } else if matches!(self.peek(), Some(TokenKind::Dot) | Some(TokenKind::Colon)) {
            self.pos += 1;
            let name = self.expect_ident()?;
            (first, name)
        } else {
            return Err(self.err(format!("expected macro call, got bare identifier {first}")));
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(TokenKind::RParen)) {
            args.push(self.parse_proto_term()?);
            while matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
                args.push(self.parse_proto_term()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(ProtoFormula::MacroCall {
            namespace,
            name,
            args,
        })
    }

    /// `FUNC(subject, property) op threshold` — a window-aggregate atom.
    fn parse_agg_atom(&mut self, func: AggFunc) -> Result<ProtoFormula, StarQlError> {
        self.pos += 1; // the aggregate keyword
        self.expect(&TokenKind::LParen)?;
        let subject = self.parse_proto_term()?;
        self.expect(&TokenKind::Comma)?;
        let property = self.parse_proto_pred()?;
        self.expect(&TokenKind::RParen)?;
        let op = self.parse_cmp_op()?;
        let threshold = self.parse_proto_term()?;
        Ok(ProtoFormula::Agg {
            func,
            subject,
            property,
            op,
            threshold,
        })
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, StarQlError> {
        let op = match self.peek() {
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            Some(TokenKind::Eq) => CmpOp::Eq,
            Some(TokenKind::Ne) => CmpOp::Ne,
            other => return Err(self.err(format!("expected comparison operator, got {other:?}"))),
        };
        self.pos += 1;
        Ok(op)
    }

    /// `?i, ?j < ?k` (state order) or `?x <= ?y` (value comparison).
    fn parse_comparison(&mut self) -> Result<ProtoFormula, StarQlError> {
        let first = self.parse_proto_term()?;
        // Collect a comma list of further variables (state-order form).
        let mut list = vec![first];
        while matches!(self.peek(), Some(TokenKind::Comma))
            && matches!(self.peek2(), Some(TokenKind::Var(_)))
        {
            self.pos += 1;
            list.push(self.parse_proto_term()?);
        }
        let op = self.parse_cmp_op()?;
        let right = self.parse_proto_term()?;

        // State-order form: `<` with every operand a state variable.
        let all_state_vars = list
            .iter()
            .chain(std::iter::once(&right))
            .all(|t| matches!(t, ProtoTerm::Var(v) if self.in_state_scope(v)));
        if op == CmpOp::Lt && all_state_vars {
            let left_names: Vec<String> = list
                .iter()
                .map(|t| match t {
                    ProtoTerm::Var(v) => v.clone(),
                    _ => unreachable!(),
                })
                .collect();
            let ProtoTerm::Var(right_name) = right else {
                unreachable!()
            };
            return Ok(ProtoFormula::StateLess {
                left: left_names,
                right: right_name,
            });
        }
        if list.len() != 1 {
            return Err(self.err("comma-separated operands only valid in state comparisons".into()));
        }
        Ok(ProtoFormula::Cmp {
            left: list.into_iter().next().expect("len checked above"),
            op,
            right,
        })
    }

    fn parse_aggregate_def(&mut self) -> Result<AggregateDef, StarQlError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("AGGREGATE")?;
        let head = self.expect_ident()?;
        let (namespace, name) = if let Some((ns, nm)) = head.split_once([':', '.']) {
            (ns.to_string(), nm.to_string())
        } else if matches!(self.peek(), Some(TokenKind::Colon) | Some(TokenKind::Dot)) {
            self.pos += 1;
            (head, self.expect_ident()?)
        } else {
            return Err(self.err("aggregate name must be NS:NAME".into()));
        };
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Some(TokenKind::RParen)) {
            loop {
                match self.bump() {
                    Some(TokenKind::Param(p)) => params.push(p),
                    other => return Err(self.err(format!("expected $param, got {other:?}"))),
                }
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect_kw("AS")?;
        self.expect_kw("HAVING")?;
        let body = self.parse_formula()?;
        Ok(AggregateDef {
            namespace,
            name,
            params,
            body,
        })
    }
}

/// Durations accept full ISO form (`PT1S`) and the paper's shorthand (`1S`).
/// Returns the name of the first filter form with no SQL translation
/// (`REGEX`, `BOUND`), or `None` when the whole expression can be pushed
/// into the unfolded static SQL.
fn unsupported_filter_form(expr: &optique_sparql::Expression) -> Option<&'static str> {
    use optique_sparql::Expression as E;
    match expr {
        E::Var(_) | E::Const(_) => None,
        E::Regex { .. } => Some("REGEX"),
        E::Bound(_) => Some("BOUND"),
        E::Not(a) => unsupported_filter_form(a),
        E::Or(a, b) | E::And(a, b) | E::Compare(_, a, b) | E::Arithmetic(_, a, b) => {
            unsupported_filter_form(a).or_else(|| unsupported_filter_form(b))
        }
    }
}

fn parse_lenient_duration(text: &str) -> Result<i64, String> {
    parse_duration_ms(text).or_else(|_| parse_duration_ms(&format!("PT{text}")))
}

/// The Figure 1 query, verbatim modulo prefix declarations (used by tests,
/// examples and benches across the workspace).
pub const FIGURE1: &str = r#"
PREFIX sie: <http://siemens.example/ontology#>
PREFIX : <http://siemens.example/ontology#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
CREATE STREAM S_out AS
CONSTRUCT GRAPH NOW { ?c2 rdf:type :MonInc }
FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration,
STATIC DATA <http://www.optique-project.eu/siemens/ABoxstatic>,
ONTOLOGY <http://www.optique-project.eu/siemens/TBox>
USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"
WHERE {?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2.}
SEQUENCE BY StdSeq AS seq
HAVING MONOTONIC.HAVING(?c2,sie:hasValue)
CREATE AGGREGATE MONOTONIC:HAVING ($var,$attr) AS
HAVING EXISTS ?k IN seq: GRAPH ?k { $var sie:showsFailure } AND
FORALL ?i < ?j IN seq, ?x, ?y:
IF ( ?i, ?j < ?k AND GRAPH ?i {$var $attr ?x} AND GRAPH ?j {$var $attr ?y}) THEN ?x<=?y
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::having::expand;

    fn ns() -> Namespaces {
        Namespaces::with_w3c_defaults()
    }

    #[test]
    fn figure1_parses() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        assert_eq!(q.output_stream, "S_out");
        assert_eq!(q.stream.name, "S_Msmt");
        assert_eq!(q.stream.range_ms, 10_000);
        assert_eq!(q.stream.slide_ms, 1_000);
        assert_eq!(q.where_bgp.len(), 3);
        assert_eq!(q.construct.len(), 1);
        assert_eq!(q.aggregates.len(), 1);
        let pulse = q.pulse.unwrap();
        assert_eq!(pulse.start_ms, 600_000);
        assert_eq!(pulse.frequency_ms, 1_000);
        assert_eq!(
            q.static_data.as_deref(),
            Some("http://www.optique-project.eu/siemens/ABoxstatic")
        );
        assert_eq!(q.sequence.alias(), "seq");
    }

    #[test]
    fn figure1_macro_expands() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        let formula = expand(&q.having, &q.aggregates).unwrap();
        // Shape: Exists k . (Graph ∧ Forall i j …).
        let crate::having::HavingFormula::Exists { state_vars, body } = &formula else {
            panic!("expected EXISTS at top, got {formula:?}")
        };
        assert_eq!(state_vars, &vec!["k".to_string()]);
        let crate::having::HavingFormula::And(first, second) = body.as_ref() else {
            panic!("expected AND inside EXISTS")
        };
        assert!(matches!(
            first.as_ref(),
            crate::having::HavingFormula::Graph { .. }
        ));
        assert!(matches!(
            second.as_ref(),
            crate::having::HavingFormula::Forall { .. }
        ));
    }

    #[test]
    fn where_bgp_atoms_typed() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        let classes = q
            .where_bgp
            .iter()
            .filter(|a| matches!(a, Atom::Class { .. }))
            .count();
        assert_eq!(classes, 2);
    }

    #[test]
    fn construct_uses_rdf_type() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        let Atom::Class { class, arg } = &q.construct[0] else {
            panic!()
        };
        assert_eq!(class.local_name(), "MonInc");
        assert_eq!(arg, &QueryTerm::var("c2"));
    }

    fn with_output_mode(mode_kw: &str) -> String {
        format!(
            r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS {mode_kw}
            CONSTRUCT GRAPH NOW {{ ?x a sie:Alert }}
            FROM STREAM S [NOW-"PT2S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE {{ ?x a sie:Sensor }}
            SEQUENCE BY StdSeq AS seq
            HAVING SUM(?x, sie:hasValue) >= 100
            "#
        )
    }

    #[test]
    fn output_mode_defaults_to_rstream() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        assert_eq!(q.output_mode, OutputMode::RStream);
    }

    #[test]
    fn output_mode_keywords_parse() {
        for (kw, mode) in [
            ("RSTREAM", OutputMode::RStream),
            ("ISTREAM", OutputMode::IStream),
            ("DSTREAM", OutputMode::DStream),
            ("istream", OutputMode::IStream),
            ("", OutputMode::RStream),
        ] {
            let q = parse_starql(&with_output_mode(kw), &ns()).unwrap();
            assert_eq!(q.output_mode, mode, "keyword {kw:?}");
        }
    }

    #[test]
    fn agg_atom_parses() {
        let q = parse_starql(&with_output_mode(""), &ns()).unwrap();
        let formula = expand(&q.having, &q.aggregates).unwrap();
        let crate::having::HavingFormula::Agg {
            func,
            subject,
            property,
            op,
            threshold,
        } = formula
        else {
            panic!("expected Agg atom")
        };
        assert_eq!(func, AggFunc::Sum);
        assert_eq!(subject, QueryTerm::var("x"));
        assert_eq!(property.local_name(), "hasValue");
        assert_eq!(op, CmpOp::Ge);
        assert!(
            matches!(threshold, QueryTerm::Const(Term::Literal(ref l)) if l.as_f64() == Some(100.0))
        );
    }

    #[test]
    fn agg_atoms_combine_with_connectives() {
        let text = with_output_mode("").replace(
            "HAVING SUM(?x, sie:hasValue) >= 100",
            "HAVING COUNT(?x, sie:hasValue) > 3 AND NOT MAX(?x, sie:hasValue) > 95",
        );
        let q = parse_starql(&text, &ns()).unwrap();
        let formula = expand(&q.having, &q.aggregates).unwrap();
        let crate::having::HavingFormula::And(a, b) = formula else {
            panic!("expected AND")
        };
        assert!(matches!(
            a.as_ref(),
            crate::having::HavingFormula::Agg {
                func: AggFunc::Count,
                ..
            }
        ));
        let crate::having::HavingFormula::Not(inner) = b.as_ref() else {
            panic!("expected NOT")
        };
        assert!(matches!(
            inner.as_ref(),
            crate::having::HavingFormula::Agg {
                func: AggFunc::Max,
                ..
            }
        ));
    }

    #[test]
    fn dotted_agg_keyword_stays_a_macro_call() {
        // `SUM.NAME(...)` is a macro in the SUM namespace, not an aggregate.
        let text =
            with_output_mode("").replace("HAVING SUM(?x, sie:hasValue) >= 100", "HAVING SUM.X(?x)");
        let q = parse_starql(&text, &ns()).unwrap();
        assert!(matches!(
            q.having,
            ProtoFormula::MacroCall { ref namespace, .. } if namespace == "SUM"
        ));
    }

    #[test]
    fn bare_identifier_in_having_still_errors() {
        let text =
            with_output_mode("").replace("HAVING SUM(?x, sie:hasValue) >= 100", "HAVING bogus");
        let err = parse_starql(&text, &ns()).unwrap_err();
        assert!(err.message.contains("bare identifier"));
    }

    #[test]
    fn missing_clause_is_an_error() {
        let err = parse_starql("CREATE STREAM x AS WHERE {}", &ns()).unwrap_err();
        assert!(err.message.contains("CONSTRUCT"));
    }

    #[test]
    fn unbound_prefix_is_an_error() {
        let text = r#"
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { ?x a nope:Thing }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?x a nope:Thing }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?x nope:p ?y }
        "#;
        let err = parse_starql(text, &ns()).unwrap_err();
        assert!(err.message.contains("unbound prefix"));
    }

    #[test]
    fn state_vs_value_comparisons() {
        let q = parse_starql(FIGURE1, &ns()).unwrap();
        let formula = expand(&q.having, &q.aggregates).unwrap();
        // Dig to the IF: its guard must contain a StateLess with left {i,j}.
        fn find_stateless(f: &crate::having::HavingFormula) -> bool {
            use crate::having::HavingFormula as H;
            match f {
                H::StateLess { left, right } => {
                    left.contains(&"j".to_string()) && right == "k"
                        || left.contains(&"i".to_string())
                }
                H::Exists { body, .. } | H::Forall { body, .. } | H::Not(body) => {
                    find_stateless(body)
                }
                H::If { cond, then } => find_stateless(cond) || find_stateless(then),
                H::And(a, b) | H::Or(a, b) => find_stateless(a) || find_stateless(b),
                _ => false,
            }
        }
        assert!(find_stateless(&formula));
    }

    /// Regression for the comparison-list fold: a long comma chain of state
    /// variables parses into one StateLess with every operand in order, and
    /// a plain value comparison still lands in Cmp.
    #[test]
    fn long_state_comparison_chain_parses_in_order() {
        let n = 32;
        let vars: Vec<String> = (0..n).map(|i| format!("?s{i}")).collect();
        let text = format!(
            r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW {{ ?x a sie:Alert }}
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE {{ ?x sie:hasValue ?v }}
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS {} IN seq: {} < {}
            "#,
            vars.join(", "),
            vars[..n - 1].join(", "),
            vars[n - 1],
        );
        let q = parse_starql(&text, &ns()).unwrap();
        let formula = expand(&q.having, &q.aggregates).unwrap();
        let crate::having::HavingFormula::Exists { state_vars, body } = &formula else {
            panic!("expected EXISTS, got {formula:?}")
        };
        assert_eq!(state_vars.len(), n);
        let crate::having::HavingFormula::StateLess { left, right } = body.as_ref() else {
            panic!("expected StateLess, got {body:?}")
        };
        let names: Vec<String> = (0..n - 1).map(|i| format!("s{i}")).collect();
        assert_eq!(left, &names);
        assert_eq!(right, &format!("s{}", n - 1));
    }

    #[test]
    fn bare_frequency_accepted() {
        assert_eq!(parse_lenient_duration("1S").unwrap(), 1_000);
        assert_eq!(parse_lenient_duration("PT2S").unwrap(), 2_000);
    }

    fn skeleton(where_clause: &str) -> String {
        format!(
            r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW {{ ?x a sie:Alert }}
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE {where_clause}
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?x sie:hasValue ?v }}
            "#
        )
    }

    #[test]
    fn where_clause_accepts_sparql_union() {
        let q = parse_starql(
            &skeleton("{ { ?x a sie:TemperatureSensor } UNION { ?x a sie:PressureSensor } }"),
            &ns(),
        )
        .unwrap();
        assert_eq!(q.where_disjuncts.len(), 2);
        assert_eq!(q.where_bgp, q.where_disjuncts[0]);
        assert!(matches!(&q.where_disjuncts[1][0], Atom::Class { class, .. }
            if class.local_name() == "PressureSensor"));
    }

    #[test]
    fn where_clause_accepts_predicate_object_lists() {
        let q = parse_starql(
            &skeleton("{ ?x a sie:Sensor ; sie:inAssembly ?a . }"),
            &ns(),
        )
        .unwrap();
        assert_eq!(q.where_bgp.len(), 2);
        assert_eq!(q.where_disjuncts.len(), 1);
    }

    #[test]
    fn where_clause_rejects_optional_with_explanation() {
        let err = parse_starql(
            &skeleton("{ ?x a sie:Sensor . OPTIONAL { ?x sie:inAssembly ?a } }"),
            &ns(),
        )
        .unwrap_err();
        assert!(err.message.contains("OPTIONAL"), "{}", err.message);
        assert!(err.message.contains("continuous query"), "{}", err.message);
    }

    #[test]
    fn where_clause_accepts_comparison_filter() {
        let q = parse_starql(&skeleton("{ ?x sie:hasValue ?v . FILTER(?v > 5) }"), &ns()).unwrap();
        assert_eq!(q.where_disjuncts.len(), 1);
        assert_eq!(q.where_filters.len(), 1);
        assert_eq!(q.where_filters[0].len(), 1);
    }

    #[test]
    fn where_clause_accepts_connective_filter() {
        // `&&`, `||` and `!` are not STARQL tokens elsewhere, but the WHERE
        // clause lexes through the SPARQL parser, so connective filters
        // parse and attach to their disjunct.
        let q = parse_starql(
            &skeleton("{ ?x sie:hasValue ?v . FILTER(?v > 5 && !(?v = 7)) }"),
            &ns(),
        )
        .unwrap();
        assert_eq!(q.where_filters[0].len(), 1);
    }

    #[test]
    fn where_clause_filter_scopes_to_its_union_branch() {
        let q = parse_starql(
            &skeleton("{ { ?x sie:hasValue ?v . FILTER(?v > 5) } UNION { ?x a sie:Sensor } }"),
            &ns(),
        )
        .unwrap();
        assert_eq!(q.where_disjuncts.len(), 2);
        assert_eq!(
            q.where_filters[0].len(),
            1,
            "first branch carries the filter"
        );
        assert!(q.where_filters[1].is_empty(), "second branch is unfiltered");
    }

    #[test]
    fn where_clause_rejects_untranslatable_filters_with_explanation() {
        let err = parse_starql(
            &skeleton("{ ?x sie:hasModel ?m . FILTER(REGEX(?m, \"^SGT\")) }"),
            &ns(),
        )
        .unwrap_err();
        assert!(err.message.contains("REGEX"), "{}", err.message);
        assert!(err.message.contains("continuous query"), "{}", err.message);
        let err = parse_starql(
            &skeleton("{ ?x sie:hasValue ?v . FILTER(BOUND(?v)) }"),
            &ns(),
        )
        .unwrap_err();
        assert!(err.message.contains("BOUND"), "{}", err.message);
    }

    #[test]
    fn where_clause_syntax_errors_are_positioned() {
        let err = parse_starql(&skeleton("{ ?x a }"), &ns()).unwrap_err();
        assert!(err.message.contains("in WHERE clause"), "{}", err.message);
        assert!(err.message.contains("line"), "{}", err.message);
    }

    #[test]
    fn multi_aggregate_definitions() {
        let text = format!(
            "{FIGURE1}\nCREATE AGGREGATE OTHER:ONE ($a) AS HAVING EXISTS ?m IN seq: GRAPH ?m {{ $a sie:showsFailure }}"
        );
        let q = parse_starql(&text, &ns()).unwrap();
        assert_eq!(q.aggregates.len(), 2);
    }
}
