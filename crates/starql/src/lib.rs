//! STARQL — the stream-temporal ontological query language [paper ref 12].
//!
//! STARQL is challenge C2's answer: "a query language over ontologies that
//! combines streaming and static data and allows for efficient enrichment
//! and unfolding that preserves semantics of ontological queries". A query
//! (paper Figure 1) reads:
//!
//! ```text
//! CREATE STREAM S_out AS
//! CONSTRUCT GRAPH NOW { ?c2 rdf:type :MonInc }
//! FROM STREAM S_Msmt [NOW - "PT10S"^^xsd:duration, NOW] -> "PT1S"^^xsd:duration,
//!      STATIC DATA <http://…/ABoxstatic>,
//!      ONTOLOGY <http://…/TBox>
//! USING PULSE WITH START = "00:10:00CET", FREQUENCY = "1S"
//! WHERE { ?c1 a sie:Assembly . ?c2 a sie:Sensor . ?c1 sie:inAssembly ?c2 . }
//! SEQUENCE BY StdSeq AS seq
//! HAVING MONOTONIC.HAVING(?c2, sie:hasValue)
//! CREATE AGGREGATE MONOTONIC:HAVING ($var, $attr) AS
//! HAVING EXISTS ?k IN seq : GRAPH ?k { $var sie:showsFailure } AND
//! FORALL ?i < ?j IN seq, ?x, ?y :
//! IF ( ?i, ?j < ?k AND GRAPH ?i { $var $attr ?x } AND GRAPH ?j { $var $attr ?y } ) THEN ?x <= ?y
//! ```
//!
//! Modules:
//! * [`ast`]/[`lexer`]/[`parser`] — the surface language,
//! * [`duration`] — `xsd:duration` and wall-clock literals in milliseconds,
//! * [`sequence`] — the `StdSeq` sequencing semantics: window contents
//!   become a sequence of per-timestamp RDF states, checked against
//!   functionality integrity constraints,
//! * [`having`] — the HAVING condition language (state quantifiers, graph
//!   patterns at states, value comparisons) and its evaluator,
//! * [`translate`] — **enrichment** (PerfectRef over the WHERE clause) and
//!   **unfolding** (mapping expansion into SQL(+)), producing the low-level
//!   query fleet the paper counts,
//! * [`engine`] — the continuous evaluation loop: pulse ticks, shared
//!   windows, per-binding sequences, CONSTRUCT output streams.

pub mod ast;
pub mod duration;
pub mod engine;
pub mod having;
pub mod lexer;
pub mod parser;
pub mod sequence;
pub mod translate;

pub use ast::StarQlQuery;
pub use engine::{ContinuousQuery, TickOutput};
pub use having::HavingFormula;
pub use parser::{parse_starql, FIGURE1};
pub use sequence::{IcPolicy, StreamToRdf};
pub use translate::{translate, TranslatedQuery, TranslationContext};
