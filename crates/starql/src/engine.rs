//! Continuous evaluation of translated STARQL queries.
//!
//! Execution stage (iii): at every pulse tick, the engine materializes the
//! closed window (through the shared [`WCache`]), builds the `StdSeq` state
//! sequence, and evaluates the HAVING condition once per static WHERE
//! binding; satisfied bindings instantiate the CONSTRUCT template onto the
//! output stream.

use std::collections::HashMap;
use std::sync::Arc;

use optique_ontology::materialize::materialize;
use optique_rdf::{Term, Triple};
use optique_relational::{Database, Value};
use optique_rewrite::{Atom, QueryTerm};
use optique_stream::{Stream, WCache, WindowSpec};

use crate::having::Env;
use crate::sequence::{build_stdseq, IcPolicy, StreamToRdf};
use crate::translate::TranslatedQuery;

/// A registered continuous query, ready to tick.
pub struct ContinuousQuery {
    /// The translated query.
    pub translated: TranslatedQuery,
    /// The stream-side mapping (tuple → state triples).
    pub stream_to_rdf: StreamToRdf,
    /// Integrity-constraint handling for sequence states.
    pub ic_policy: IcPolicy,
    /// Saturate each state graph with the TBox before HAVING evaluation
    /// (stream-side enrichment).
    pub enrich_states: bool,
    bindings: Vec<HashMap<String, Term>>,
    window: WindowSpec,
    window_start: i64,
}

/// One tick's output and accounting.
#[derive(Clone, Debug)]
pub struct TickOutput {
    /// The tick instant.
    pub tick_ms: i64,
    /// The window that closed at (or before) the tick.
    pub window_id: u64,
    /// CONSTRUCT-template instantiations for satisfied bindings.
    pub triples: Vec<Triple>,
    /// Bindings whose HAVING held.
    pub satisfied: usize,
    /// Bindings evaluated.
    pub bindings_checked: usize,
    /// Tuples in the window.
    pub tuples_in_window: usize,
    /// States in the sequence.
    pub states: usize,
    /// States dropped for integrity violations.
    pub dropped_states: usize,
}

impl ContinuousQuery {
    /// Registers the query against a database: runs the unfolded static SQL
    /// once to obtain the WHERE bindings (the demo's static data is
    /// time-invariant; re-registration refreshes bindings).
    pub fn register(
        translated: TranslatedQuery,
        stream_to_rdf: StreamToRdf,
        db: &Database,
    ) -> Result<Self, String> {
        let window = WindowSpec::new(
            translated.query.stream.range_ms,
            translated.query.stream.slide_ms,
        )
        .map_err(|e| e.to_string())?;
        let window_start = translated
            .query
            .pulse
            .as_ref()
            .map(|p| p.start_ms)
            .unwrap_or(0);

        let mut bindings = Vec::new();
        if let Some(sql) = &translated.static_sql {
            let table = optique_relational::exec::query(&sql.to_string(), db)
                .map_err(|e| format!("static bindings query failed: {e}"))?;
            let names: Vec<String> = table.schema.header();
            // Certain answers are a set: the enriched UCQ's disjuncts often
            // overlap (a subclass disjunct returns a subset of the general
            // one), so deduplicate across the UNION ALL.
            let mut seen = std::collections::BTreeSet::new();
            for row in &table.rows {
                if !seen.insert(row.clone()) {
                    continue;
                }
                let mut env = HashMap::with_capacity(names.len());
                for (name, value) in names.iter().zip(row) {
                    env.insert(name.clone(), value_to_term(value));
                }
                bindings.push(env);
            }
        }
        Ok(ContinuousQuery {
            translated,
            stream_to_rdf,
            ic_policy: IcPolicy::DropViolating,
            enrich_states: true,
            bindings,
            window,
            window_start,
        })
    }

    /// Number of static WHERE bindings.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// The window specification.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Evaluates one pulse tick at `tick_ms` over the stream table in `db`,
    /// sharing window materializations through `wcache`.
    pub fn tick(&self, db: &Database, wcache: &WCache, tick_ms: i64) -> Result<TickOutput, String> {
        let stream_name = &self.translated.query.stream.name;
        let Some(window_id) = self.window.last_closed(self.window_start, tick_ms) else {
            return Ok(TickOutput {
                tick_ms,
                window_id: 0,
                triples: vec![],
                satisfied: 0,
                bindings_checked: 0,
                tuples_in_window: 0,
                states: 0,
                dropped_states: 0,
            });
        };

        let table = db.table(stream_name).map_err(|e| e.to_string())?;
        let schema = table.schema.clone();
        let ts_col = schema
            .index_of(&self.stream_to_rdf.timestamp_col)
            .ok_or_else(|| {
                format!(
                    "stream {stream_name} lacks column {}",
                    self.stream_to_rdf.timestamp_col
                )
            })?;

        let (open, close) = self.window.bounds(self.window_start, window_id);
        let rows: Arc<Vec<Vec<Value>>> = wcache.get_or_build(stream_name, window_id, || {
            let stream = Stream::new(stream_name.clone(), (**table).clone(), ts_col)
                .expect("stream table validated at registration");
            stream.slice(open, close).to_vec()
        });

        let (mut seq, dropped_states) = build_stdseq(
            &rows,
            &schema,
            &self.stream_to_rdf,
            Some(&self.translated.ontology),
            self.ic_policy,
        )
        .map_err(|e| e.to_string())?;

        if self.enrich_states {
            for state in &mut seq.states {
                materialize(&mut state.graph, &self.translated.ontology, 0);
            }
        }

        let mut triples = Vec::new();
        let mut satisfied = 0usize;
        for binding in &self.bindings {
            let mut env = Env::default();
            for (var, term) in binding {
                env.values.insert(var.clone(), term.clone());
            }
            if self.translated.having.eval(&seq, &env)? {
                satisfied += 1;
                instantiate_construct(&self.translated.query.construct, binding, &mut triples)?;
            }
        }

        Ok(TickOutput {
            tick_ms,
            window_id,
            triples,
            satisfied,
            bindings_checked: self.bindings.len(),
            tuples_in_window: rows.len(),
            states: seq.len(),
            dropped_states,
        })
    }
}

/// Static-binding SQL values come back as rendered IRIs or plain literals.
fn value_to_term(value: &Value) -> Term {
    match value {
        Value::Text(s) if s.contains("://") => Term::iri(s.as_ref()),
        Value::Int(i) => Term::Literal(optique_rdf::Literal::integer(*i)),
        Value::Float(f) => Term::Literal(optique_rdf::Literal::double(*f)),
        Value::Bool(b) => Term::Literal(optique_rdf::Literal::boolean(*b)),
        Value::Timestamp(t) => Term::Literal(optique_rdf::Literal::datetime_millis(*t)),
        Value::Text(s) => Term::Literal(optique_rdf::Literal::string(s.as_ref())),
        Value::Null => Term::Literal(optique_rdf::Literal::string("")),
    }
}

fn instantiate_construct(
    template: &[Atom],
    binding: &HashMap<String, Term>,
    out: &mut Vec<Triple>,
) -> Result<(), String> {
    let resolve = |t: &QueryTerm| -> Result<Term, String> {
        match t {
            QueryTerm::Const(c) => Ok(c.clone()),
            QueryTerm::Var(v) => binding
                .get(v)
                .cloned()
                .ok_or_else(|| format!("CONSTRUCT variable ?{v} is unbound")),
        }
    };
    for atom in template {
        match atom {
            Atom::Class { class, arg } => {
                out.push(Triple::class_assertion(resolve(arg)?, class.clone()));
            }
            Atom::Property {
                property,
                subject,
                object,
            } => {
                out.push(Triple::new(
                    resolve(subject)?,
                    property.clone(),
                    resolve(object)?,
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_starql, FIGURE1};
    use crate::translate::{translate, TranslationContext};
    use optique_mapping::{IriTemplate, MappingAssertion, MappingCatalog, TermMap};
    use optique_ontology::{Axiom, BasicConcept, Ontology};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType};

    const SIE: &str = "http://siemens.example/ontology#";

    fn iri(s: &str) -> Iri {
        Iri::new(format!("{SIE}{s}"))
    }

    /// Static DB: 1 assembly, 2 sensors (10 rising-to-failure, 11 falling);
    /// stream: 10s of measurements for both.
    fn deployment() -> (Database, Ontology, MappingCatalog) {
        let mut db = Database::new();
        db.put_table(
            "assemblies",
            table_of(
                "assemblies",
                &[("aid", ColumnType::Int)],
                vec![vec![Value::Int(1)]],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("aid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                ],
            )
            .unwrap(),
        );
        // Stream S_Msmt: sensor 10 rises each second and fails at t=609s;
        // sensor 11 falls.
        let mut rows = Vec::new();
        for i in 0..10i64 {
            let t = 600_000 + i * 1_000;
            rows.push(vec![
                Value::Timestamp(t),
                Value::Int(10),
                Value::Float(70.0 + i as f64),
                if i == 9 {
                    Value::text("failure")
                } else {
                    Value::Null
                },
            ]);
            rows.push(vec![
                Value::Timestamp(t),
                Value::Int(11),
                Value::Float(90.0 - i as f64),
                Value::Null,
            ]);
        }
        db.put_table(
            "S_Msmt",
            table_of(
                "S_Msmt",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("sensor_id", ColumnType::Int),
                    ("value", ColumnType::Float),
                    ("event", ColumnType::Text),
                ],
                rows,
            )
            .unwrap(),
        );

        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::domain(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Assembly")),
        ));
        onto.add_axiom(Axiom::range(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Sensor")),
        ));

        let mut maps = MappingCatalog::new();
        maps.add(
            MappingAssertion::class(
                "assembly",
                iri("Assembly"),
                "SELECT aid FROM assemblies",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
            )
            .with_key(vec!["aid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::class(
                "sensor",
                iri("Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::property(
                "in_assembly",
                iri("inAssembly"),
                "SELECT aid, sid FROM sensors",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["aid".into(), "sid".into()]),
        )
        .unwrap();
        (db, onto, maps)
    }

    fn stream_mapping() -> StreamToRdf {
        StreamToRdf {
            timestamp_col: "ts".into(),
            subject: IriTemplate::parse("http://siemens.example/data/sensor/{sensor_id}").unwrap(),
            value_property: iri("hasValue"),
            value_col: "value".into(),
            value_datatype: Datatype::Double,
            event_col: Some("event".into()),
            event_classes: vec![("failure".into(), iri("showsFailure"))],
        }
    }

    fn registered() -> (ContinuousQuery, Database) {
        let (db, onto, maps) = deployment();
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(FIGURE1, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        (cq, db)
    }

    #[test]
    fn registration_computes_bindings() {
        let (cq, _db) = registered();
        assert_eq!(cq.binding_count(), 2, "two sensors bound via WHERE");
    }

    /// A WHERE FILTER, pushed into the unfolded static SQL, narrows the set
    /// of monitored bindings before any tick runs.
    #[test]
    fn where_filter_narrows_bindings() {
        let (db, onto, mut maps) = deployment();
        maps.add(
            MappingAssertion::property(
                "serial",
                iri("hasSerial"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
                TermMap::column("sid", Datatype::Integer),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM S_out AS
            CONSTRUCT GRAPH NOW { ?c2 a sie:MonInc }
            FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?c1 sie:inAssembly ?c2 . ?c2 sie:hasSerial ?n . FILTER(?n > 10) }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(text, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        assert_eq!(
            cq.binding_count(),
            1,
            "sensors 10 and 11 exist; FILTER(?n > 10) keeps only 11"
        );
    }

    /// The end-to-end Figure 1 behaviour: at the tick after sensor 10's
    /// failure, the monotonic-increase alarm fires for sensor 10 only.
    #[test]
    fn figure1_detects_monotonic_failure() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        // Failure occurs at 609 s; the window closing at 609 s covers
        // (599s, 609s] = the whole ramp.
        let out = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(out.bindings_checked, 2);
        assert_eq!(
            out.satisfied, 1,
            "only the rising sensor with a failure fires"
        );
        assert_eq!(out.triples.len(), 1);
        let t = &out.triples[0];
        assert_eq!(
            t.subject,
            Term::iri("http://siemens.example/data/sensor/10")
        );
        assert_eq!(t.object, Term::Iri(iri("MonInc")));
    }

    #[test]
    fn no_alarm_before_failure() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        // At 605 s the ramp is rising but no failure message exists yet.
        let out = cq.tick(&db, &wcache, 605_000).unwrap();
        assert_eq!(out.satisfied, 0);
        assert!(out.tuples_in_window > 0);
    }

    #[test]
    fn wcache_shared_across_ticks_and_queries() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let _ = cq.tick(&db, &wcache, 609_000).unwrap();
        let misses_after_first = wcache.misses();
        // Second query (same window spec) reuses the window.
        let (cq2, _) = registered();
        let _ = cq2.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(wcache.misses(), misses_after_first);
        assert!(wcache.hits() >= 1);
    }

    #[test]
    fn tick_before_first_window_is_empty() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let out = cq.tick(&db, &wcache, 1_000).unwrap();
        assert_eq!(out.bindings_checked, 0);
        assert!(out.triples.is_empty());
    }

    #[test]
    fn states_count_matches_distinct_timestamps() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let out = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(out.states, 10, "ten distinct timestamps in the window");
        assert_eq!(out.tuples_in_window, 20);
    }
}
