//! Continuous evaluation of translated STARQL queries.
//!
//! Execution stage (iii): at every pulse tick, the engine materializes the
//! closed window (through the shared [`WCache`]), builds the `StdSeq` state
//! sequence, and evaluates the HAVING condition once per static WHERE
//! binding; satisfied bindings instantiate the CONSTRUCT template onto the
//! output stream.
//!
//! **Window materialization has two backends**, mirroring the static
//! pipeline: single-node (slice the stream table locally, the reference
//! semantics) and **distributed** — each tick compiles its window to a
//! [`PlanFragment`] carrying a [`WindowSlice`] time-slice section, shipped
//! through the same [`FragmentExecutor`] the static side uses. Over a
//! federation whose stream tables hash-partition on the stream key, the
//! window fragment *scatters*: every worker slices its shard and the
//! partials concatenate — windows spread across the cluster instead of
//! replicating onto one node. When the static bindings admit it (see
//! `HavingFormula::restriction_safe`), the fragment additionally carries a
//! semi-join on the stream-key column restricted to the bound subjects'
//! raw keys — the stream-static join pushdown — which also lets the
//! gateway's shard routing skip shards that can hold no admissible key.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use optique_ontology::materialize::materialize;
use optique_rdf::{Term, Triple};
use optique_relational::{
    merge_pane_rows, pane_width, AggAcc, ColumnType, Database, PaneProbe, PlanFragment, Schema,
    SemiJoin, Value, WindowSlice,
};
use optique_rewrite::{Atom, QueryTerm};
use optique_sparql::FragmentExecutor;
use optique_stream::{Stream, StreamDiffer, WCache, WindowSpec};
use optique_telemetry::SpanRecord;

use crate::ast::OutputMode;
use crate::having::{AggContext, Env, HavingFormula};
use crate::sequence::{build_stdseq, IcPolicy, StreamToRdf};
use crate::translate::TranslatedQuery;

/// Per-variable cap on stream-key restriction values: binding sets past
/// this ship the window unrestricted (a longer `IN` list costs more than
/// it prunes — the same economics as the static planner's `max_in_list`).
pub const MAX_STREAM_KEYS: usize = 256;

/// A registered continuous query, ready to tick.
pub struct ContinuousQuery {
    /// The translated query.
    pub translated: TranslatedQuery,
    /// The stream-side mapping (tuple → state triples).
    pub stream_to_rdf: StreamToRdf,
    /// Integrity-constraint handling for sequence states.
    pub ic_policy: IcPolicy,
    /// Saturate each state graph with the TBox before HAVING evaluation
    /// (stream-side enrichment).
    pub enrich_states: bool,
    bindings: Vec<HashMap<String, Term>>,
    window: WindowSpec,
    window_start: i64,
    /// Raw stream-key values the static bindings admit (`None` =
    /// restriction not provably sound, or too many keys): distributed
    /// ticks push these into the window fragment as a semi-join.
    stream_keys: Option<Vec<Value>>,
    /// When the HAVING condition is a pure tree of window aggregates over
    /// the stream's value property, distributed ticks skip window
    /// materialization and combine per-shard pane partials instead.
    pane_plan: Option<PanePlan>,
    /// Runtime switch for the pane path (`true` by default); turning it
    /// off forces the full-window rescan — the oracle's reference arm.
    pane_enabled: AtomicBool,
    /// Relation-to-stream differ for ISTREAM/DSTREAM output: tracks the
    /// previous tick's constructed triples.
    differ: Mutex<StreamDiffer<Triple>>,
}

/// The pane-combinability verdict for a registered query: which stream
/// columns the per-shard partial aggregates are keyed and valued on.
#[derive(Clone, Debug)]
struct PanePlan {
    /// Group-by column (the subject-template column).
    key_col: String,
    /// Aggregated value column.
    val_col: String,
    /// Whether any MIN/MAX atom appears — extrema partials must ride along.
    needs_extrema: bool,
}

/// One tick's output and accounting.
#[derive(Clone, Debug, Default)]
pub struct TickOutput {
    /// The tick instant.
    pub tick_ms: i64,
    /// The window that closed at (or before) the tick.
    pub window_id: u64,
    /// CONSTRUCT-template instantiations for satisfied bindings.
    pub triples: Vec<Triple>,
    /// Bindings whose HAVING held.
    pub satisfied: usize,
    /// Bindings evaluated.
    pub bindings_checked: usize,
    /// Tuples in the (possibly key-restricted) window the tick evaluated.
    pub tuples_in_window: usize,
    /// States in the sequence.
    pub states: usize,
    /// States dropped for integrity violations.
    pub dropped_states: usize,
    /// Window fragments shipped to the distributed executor this tick
    /// (0 = single-node, or the window came from the shared cache).
    pub window_fragments: usize,
    /// Stream rows the executor shipped back for this tick's window
    /// (0 on a window-cache hit — sharing, not shipping).
    pub stream_rows_shipped: usize,
    /// Stream-key semi-joins pushed into the window fragment.
    pub semi_joins_pushed: usize,
    /// Scatter executions skipped because stream-key routing proved the
    /// shard held no admissible key.
    pub shards_pruned: usize,
    /// Window fragments that executed sharded over a hash-partitioned
    /// stream (scatter) rather than on a single replica.
    pub partitioned_fragments: usize,
    /// Worker pane-store probes answered from warm incremental state.
    pub pane_hits: u64,
    /// Worker pane-store probes that had to fold panes from scratch (or
    /// fell back to the store-less reference fold).
    pub pane_misses: u64,
    /// Per-tick telemetry spans as flat wire records relative to the tick
    /// epoch: `tick` at index 0, `window_build` (with its `wcache_lookup`
    /// and `scatter` children) and `r2s` nested under it. Graft them into
    /// a coordinator [`Tracer`](optique_telemetry::Tracer) to stitch or
    /// render; empty when the tick closed no window.
    pub spans: Vec<SpanRecord>,
}

impl ContinuousQuery {
    /// Registers the query against a database: runs the unfolded static SQL
    /// once to obtain the WHERE bindings (the demo's static data is
    /// time-invariant; re-registration refreshes bindings).
    pub fn register(
        translated: TranslatedQuery,
        stream_to_rdf: StreamToRdf,
        db: &Database,
    ) -> Result<Self, String> {
        let mut bindings = Vec::new();
        if let Some(sql) = &translated.static_sql {
            let table = optique_relational::exec::query(&sql.to_string(), db)
                .map_err(|e| format!("static bindings query failed: {e}"))?;
            let names: Vec<String> = table.schema.header();
            // Certain answers are a set: the enriched UCQ's disjuncts often
            // overlap (a subclass disjunct returns a subset of the general
            // one), so deduplicate across the UNION ALL.
            let mut seen = std::collections::BTreeSet::new();
            for row in &table.rows {
                if !seen.insert(row.clone()) {
                    continue;
                }
                let mut env = HashMap::with_capacity(names.len());
                for (name, value) in names.iter().zip(row) {
                    env.insert(name.clone(), value_to_term(value));
                }
                bindings.push(env);
            }
        }
        Self::register_with_bindings(translated, stream_to_rdf, db, bindings)
    }

    /// Registers the query with externally-computed WHERE bindings — the
    /// platform's entry point, which answers the static side through the
    /// full OBDA pipeline (per-BGP cache, planner, federated fragments)
    /// instead of the raw unfolded SQL.
    pub fn register_with_bindings(
        translated: TranslatedQuery,
        stream_to_rdf: StreamToRdf,
        db: &Database,
        bindings: Vec<HashMap<String, Term>>,
    ) -> Result<Self, String> {
        let window = WindowSpec::new(
            translated.query.stream.range_ms,
            translated.query.stream.slide_ms,
        )
        .map_err(|e| e.to_string())?;
        let window_start = translated
            .query
            .pulse
            .as_ref()
            .map(|p| p.start_ms)
            .unwrap_or(0);
        let stream_keys = admissible_stream_keys(&translated, &stream_to_rdf, db, &bindings);
        let pane_plan = pane_plan_for(&translated, &stream_to_rdf, db);
        Ok(ContinuousQuery {
            translated,
            stream_to_rdf,
            ic_policy: IcPolicy::DropViolating,
            enrich_states: true,
            bindings,
            window,
            window_start,
            stream_keys,
            pane_plan,
            pane_enabled: AtomicBool::new(true),
            differ: Mutex::new(StreamDiffer::new()),
        })
    }

    /// Number of static WHERE bindings.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// The window specification.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// The raw stream-key values the static bindings admit, when the
    /// HAVING formula is restriction-safe (observability / tests).
    pub fn stream_keys(&self) -> Option<&[Value]> {
        self.stream_keys.as_deref()
    }

    /// First window start (the pulse's START, or 0).
    pub fn window_start(&self) -> i64 {
        self.window_start
    }

    /// The query's relation-to-stream output mode.
    pub fn output_mode(&self) -> OutputMode {
        self.translated.query.output_mode
    }

    /// True when registration proved the HAVING condition answerable from
    /// per-shard pane partials (distributed ticks then skip window
    /// materialization).
    pub fn pane_combinable(&self) -> bool {
        self.pane_plan.is_some()
    }

    /// Enables/disables the pane path at runtime; disabled queries rescan
    /// the full window even when pane-combinable (the differential oracle's
    /// reference arm).
    pub fn set_pane_aggregation(&self, enabled: bool) {
        self.pane_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Evaluates one pulse tick at `tick_ms` over the stream table in `db`,
    /// sharing window materializations through `wcache` — single-node: the
    /// window is sliced locally, the reference semantics.
    pub fn tick(&self, db: &Database, wcache: &WCache, tick_ms: i64) -> Result<TickOutput, String> {
        self.tick_via(db, wcache, tick_ms, None)
    }

    /// [`Self::tick`], with the window materialized through an optional
    /// [`FragmentExecutor`]: the tick compiles its window slice to a
    /// [`PlanFragment`] (window time-slice + stream-key semi-join) and the
    /// executor runs it exactly as it runs static-query fragments — over a
    /// stream-partitioned federation the window scatters across shards.
    /// Output streams are identical across backends (the streaming
    /// equivalence oracle pins this down); only the shipping accounting
    /// differs.
    pub fn tick_via(
        &self,
        db: &Database,
        wcache: &WCache,
        tick_ms: i64,
        executor: Option<&dyn FragmentExecutor>,
    ) -> Result<TickOutput, String> {
        let stream_name = &self.translated.query.stream.name;
        let Some(window_id) = self.window.last_closed(self.window_start, tick_ms) else {
            return Ok(TickOutput {
                tick_ms,
                ..TickOutput::default()
            });
        };

        let table = db.table(stream_name).map_err(|e| e.to_string())?;
        let schema = table.schema.clone();
        let ts_col = schema
            .index_of(&self.stream_to_rdf.timestamp_col)
            .ok_or_else(|| {
                format!(
                    "stream {stream_name} lacks column {}",
                    self.stream_to_rdf.timestamp_col
                )
            })?;

        let (open, close) = self.window.bounds(self.window_start, window_id);

        // Pane-combinable queries skip window materialization entirely on
        // the distributed path: each worker answers from its shard-local
        // incremental pane store and only per-group partial aggregates
        // travel, independent of the window's row count.
        if let (Some(plan), Some(executor)) = (&self.pane_plan, executor) {
            if self.pane_enabled.load(Ordering::Relaxed) {
                return self.tick_panes(db, tick_ms, window_id, open, close, plan, executor);
            }
        }

        let mut window_fragments = 0usize;
        let mut stream_rows_shipped = 0usize;
        let mut semi_joins_pushed = 0usize;
        let mut shards_pruned = 0usize;
        let mut partitioned_fragments = 0usize;
        // Spans assemble at the end under fixed indices — tick 0,
        // window_build 1 — so children recorded here name their parents
        // up front.
        let epoch = Instant::now();
        let now_us = |epoch: &Instant| epoch.elapsed().as_micros() as u64;
        let lookup_span: Option<SpanRecord>;
        let mut scatter_span: Option<SpanRecord> = None;
        let build_start = now_us(&epoch);
        let novelty_epoch = db.novelty_epoch();
        let rows: Arc<Vec<Vec<Value>>> = match executor {
            None => {
                // Unmerged novelty-overlay rows are part of the window too:
                // the base slice is chained with the overlay's in-range rows.
                // Overlaid windows cache under an epoch variant — the plain
                // entry stays the base-only slice other epochs share.
                let build = || {
                    let stream = Stream::new(stream_name.clone(), (**table).clone(), ts_col)
                        .expect("stream table validated at registration");
                    let mut rows = stream.slice(open, close).to_vec();
                    for row in db.novelty_rows(stream_name) {
                        if let Some(ts) = row[ts_col].as_i64() {
                            if ts > open && ts <= close {
                                rows.push(row.clone());
                            }
                        }
                    }
                    rows
                };
                if novelty_epoch == 0 {
                    let mut built_fresh = false;
                    let rows = wcache.get_or_build(stream_name, window_id, || {
                        built_fresh = true;
                        build()
                    });
                    lookup_span = Some(
                        SpanRecord::new("wcache_lookup", build_start, now_us(&epoch) - build_start)
                            .under(1)
                            .attr("outcome", if built_fresh { "miss" } else { "hit" }),
                    );
                    rows
                } else {
                    let variant = format!("e{novelty_epoch}");
                    let hit = wcache.lookup(stream_name, window_id, &variant);
                    lookup_span = Some(
                        SpanRecord::new("wcache_lookup", build_start, now_us(&epoch) - build_start)
                            .under(1)
                            .attr("outcome", if hit.is_some() { "hit" } else { "miss" }),
                    );
                    match hit {
                        Some(hit) => hit,
                        None => wcache.insert(stream_name, window_id, &variant, build()),
                    }
                }
            }
            Some(executor) => {
                // Restricted windows are a *subset* of the full window, so
                // they cache under their own variant; the unrestricted
                // distributed window is the same multiset as the local
                // slice and shares the plain entry. Overlay epochs split
                // the cache the same way the local path does.
                let mut variant = match &self.stream_keys {
                    Some(keys) => format!("⋉{keys:?}"),
                    None => String::new(),
                };
                if novelty_epoch > 0 {
                    variant.push_str(&format!("e{novelty_epoch}"));
                }
                let lookup_start = now_us(&epoch);
                let hit = wcache.lookup(stream_name, window_id, &variant);
                lookup_span = Some(
                    SpanRecord::new("wcache_lookup", lookup_start, now_us(&epoch) - lookup_start)
                        .under(1)
                        .attr("outcome", if hit.is_some() { "hit" } else { "miss" }),
                );
                match hit {
                    Some(hit) => hit,
                    None => {
                        let fragment = self
                            .window_fragment(&schema, stream_name, open, close)
                            .at_epoch(novelty_epoch);
                        window_fragments += 1;
                        semi_joins_pushed += fragment.semi_joins.len();
                        let scatter_start = now_us(&epoch);
                        let round = executor
                            .execute(vec![fragment])
                            .map_err(|e| format!("window fragment round failed: {e}"))?;
                        shards_pruned += round.shards_pruned;
                        partitioned_fragments += round.partitioned_fragments;
                        let built: Vec<Vec<Value>> = round
                            .tables
                            .into_iter()
                            .next()
                            .map(|t| t.rows)
                            .unwrap_or_default();
                        stream_rows_shipped += built.len();
                        scatter_span = Some(
                            SpanRecord::new(
                                "scatter",
                                scatter_start,
                                now_us(&epoch) - scatter_start,
                            )
                            .under(1)
                            .attr("rows", built.len() as u64)
                            .attr("pruned", round.shards_pruned as u64)
                            .attr("partitioned", round.partitioned_fragments as u64),
                        );
                        wcache.insert(stream_name, window_id, &variant, built)
                    }
                }
            }
        };
        let build_end = now_us(&epoch);

        let (mut seq, dropped_states) = build_stdseq(
            &rows,
            &schema,
            &self.stream_to_rdf,
            Some(&self.translated.ontology),
            self.ic_policy,
        )
        .map_err(|e| e.to_string())?;

        if self.enrich_states {
            for state in &mut seq.states {
                materialize(&mut state.graph, &self.translated.ontology, 0);
            }
        }

        // Aggregate atoms evaluate against per-subject accumulators over the
        // whole window — the store-less reference fold, kept bit-identical
        // to what pane combination reconstructs.
        let aggs = if contains_agg(&self.translated.having) {
            let key_idx = schema
                .index_of(self.stream_to_rdf.subject.column())
                .ok_or_else(|| {
                    format!(
                        "stream {stream_name} lacks subject column {}",
                        self.stream_to_rdf.subject.column()
                    )
                })?;
            let val_idx = schema
                .index_of(&self.stream_to_rdf.value_col)
                .ok_or_else(|| {
                    format!(
                        "stream {stream_name} lacks value column {}",
                        self.stream_to_rdf.value_col
                    )
                })?;
            let mut groups: BTreeMap<Value, AggAcc> = BTreeMap::new();
            for row in rows.iter() {
                groups
                    .entry(row[key_idx].clone())
                    .or_default()
                    .observe(&row[val_idx])
                    .map_err(|e| e.to_string())?;
            }
            Some(self.mint_agg_context(&groups))
        } else {
            None
        };

        let mut triples = Vec::new();
        let mut satisfied = 0usize;
        for binding in &self.bindings {
            let mut env = Env::default();
            for (var, term) in binding {
                env.values.insert(var.clone(), term.clone());
            }
            if self
                .translated
                .having
                .eval_with(&seq, &env, aggs.as_ref())?
            {
                satisfied += 1;
                instantiate_construct(&self.translated.query.construct, binding, &mut triples)?;
            }
        }
        let triples = self.apply_output_mode(triples);
        let r2s_end = now_us(&epoch);

        let mut spans = vec![
            SpanRecord::new("tick", 0, r2s_end)
                .attr("window", window_id)
                .attr("tuples", rows.len() as u64)
                .attr("satisfied", satisfied as u64),
            SpanRecord::new("window_build", build_start, build_end - build_start)
                .under(0)
                .attr("rows", rows.len() as u64),
        ];
        spans.extend(lookup_span);
        spans.extend(scatter_span);
        spans.push(
            SpanRecord::new("r2s", build_end, r2s_end - build_end)
                .under(0)
                .attr("states", seq.len() as u64)
                .attr("bindings", self.bindings.len() as u64),
        );

        Ok(TickOutput {
            tick_ms,
            window_id,
            triples,
            satisfied,
            bindings_checked: self.bindings.len(),
            tuples_in_window: rows.len(),
            states: seq.len(),
            dropped_states,
            window_fragments,
            stream_rows_shipped,
            semi_joins_pushed,
            shards_pruned,
            partitioned_fragments,
            pane_hits: 0,
            pane_misses: 0,
            spans,
        })
    }

    /// The pane tick: ships one pane-combine fragment, merges the workers'
    /// per-group partial aggregates, and evaluates the HAVING tree straight
    /// off the combined accumulators — no window rows, no state sequence.
    #[allow(clippy::too_many_arguments)]
    fn tick_panes(
        &self,
        db: &Database,
        tick_ms: i64,
        window_id: u64,
        open: i64,
        close: i64,
        plan: &PanePlan,
        executor: &dyn FragmentExecutor,
    ) -> Result<TickOutput, String> {
        let stream_name = &self.translated.query.stream.name;
        let epoch = Instant::now();
        let now_us = |epoch: &Instant| epoch.elapsed().as_micros() as u64;
        let probe = PaneProbe {
            stream: stream_name.clone(),
            ts_col: self.stream_to_rdf.timestamp_col.clone(),
            key_col: plan.key_col.clone(),
            val_col: plan.val_col.clone(),
            width_ms: pane_width(
                self.translated.query.stream.range_ms,
                self.translated.query.stream.slide_ms,
            ),
            start_ms: self.window_start,
            open_ms: open,
            close_ms: close,
            needs_extrema: plan.needs_extrema,
        };
        let fragment = PlanFragment::new(
            0,
            format!(
                "SELECT {}, {} FROM {stream_name}",
                plan.key_col, plan.val_col
            ),
            1.0,
        )
        .with_pane(probe)
        .at_epoch(db.novelty_epoch());
        let combine_start = now_us(&epoch);
        let round = executor
            .execute(vec![fragment])
            .map_err(|e| format!("pane fragment round failed: {e}"))?;
        let mut groups: BTreeMap<Value, AggAcc> = BTreeMap::new();
        let mut rows_shipped = 0usize;
        for table in &round.tables {
            rows_shipped += table.rows.len();
            merge_pane_rows(&mut groups, &table.rows).map_err(|e| e.to_string())?;
        }
        let tuples_in_window: i64 = groups.values().map(|a| a.count).sum();
        let ctx = self.mint_agg_context(&groups);
        let combine_end = now_us(&epoch);

        let seq = crate::sequence::StateSequence::default();
        let mut triples = Vec::new();
        let mut satisfied = 0usize;
        for binding in &self.bindings {
            let mut env = Env::default();
            for (var, term) in binding {
                env.values.insert(var.clone(), term.clone());
            }
            if self.translated.having.eval_with(&seq, &env, Some(&ctx))? {
                satisfied += 1;
                instantiate_construct(&self.translated.query.construct, binding, &mut triples)?;
            }
        }
        let triples = self.apply_output_mode(triples);
        let r2s_end = now_us(&epoch);

        let spans = vec![
            SpanRecord::new("tick", 0, r2s_end)
                .attr("window", window_id)
                .attr("tuples", tuples_in_window.max(0) as u64)
                .attr("satisfied", satisfied as u64),
            SpanRecord::new("pane_combine", combine_start, combine_end - combine_start)
                .under(0)
                .attr("groups", groups.len() as u64)
                .attr("rows", rows_shipped as u64)
                .attr("pane_hits", round.pane_hits)
                .attr("pane_misses", round.pane_misses),
        ];

        Ok(TickOutput {
            tick_ms,
            window_id,
            triples,
            satisfied,
            bindings_checked: self.bindings.len(),
            tuples_in_window: tuples_in_window.max(0) as usize,
            states: 0,
            dropped_states: 0,
            window_fragments: 1,
            stream_rows_shipped: rows_shipped,
            semi_joins_pushed: 0,
            shards_pruned: round.shards_pruned,
            partitioned_fragments: round.partitioned_fragments,
            pane_hits: round.pane_hits,
            pane_misses: round.pane_misses,
            spans,
        })
    }

    /// Mints the per-subject aggregate context from raw group accumulators:
    /// group keys render through the stream's subject template — the exact
    /// terms `tuple_triples` would mint, so aggregate lookups agree with
    /// graph-pattern matching. Null keys (subjectless rows) and all-null
    /// groups are skipped on every path alike.
    fn mint_agg_context(&self, groups: &BTreeMap<Value, AggAcc>) -> AggContext {
        let mut ctx = AggContext::new();
        for (key, acc) in groups {
            if key.is_null() || acc.count == 0 {
                continue;
            }
            ctx.insert(
                Term::iri(self.stream_to_rdf.subject.render(key)),
                acc.clone(),
            );
        }
        ctx
    }

    /// Applies the query's relation-to-stream operator to one tick's
    /// constructed triples. RSTREAM leaves the differ untouched, so
    /// RSTREAM queries stay stateless across backends.
    fn apply_output_mode(&self, triples: Vec<Triple>) -> Vec<Triple> {
        match self.translated.query.output_mode {
            OutputMode::RStream => triples,
            OutputMode::IStream => {
                let (ins, _) = self.differ.lock().expect("differ poisoned").tick(triples);
                ins
            }
            OutputMode::DStream => {
                let (_, del) = self.differ.lock().expect("differ poisoned").tick(triples);
                del
            }
        }
    }

    /// Compiles one window into its plan fragment: a plain scan of the
    /// stream's columns, the `(open, close]` time-slice riding the wire as
    /// the fragment's window section, and — when the static bindings admit
    /// it — a semi-join restricting the stream-key column to the bound
    /// subjects' raw keys.
    fn window_fragment(
        &self,
        schema: &Schema,
        stream_name: &str,
        open: i64,
        close: i64,
    ) -> PlanFragment {
        let columns = schema.header().join(", ");
        let mut fragment =
            PlanFragment::new(0, format!("SELECT {columns} FROM {stream_name}"), 1.0).with_window(
                WindowSlice {
                    column: self.stream_to_rdf.timestamp_col.clone(),
                    open_ms: open,
                    close_ms: close,
                },
            );
        if let Some(keys) = &self.stream_keys {
            let subject_col = self.stream_to_rdf.subject.column();
            if schema.index_of(subject_col).is_some() {
                fragment = fragment
                    .with_semi_joins(vec![SemiJoin::new(subject_col.to_string(), keys.clone())]);
            }
        }
        fragment
    }
}

/// The raw stream-key values the static bindings admit, or `None` when
/// restricting the shipped window could change tick semantics. Sound
/// exactly when:
///
/// * the HAVING formula is restriction-safe (`restriction_safe`: no
///   negation, guarded quantifiers — dropping all-foreign states is
///   invisible),
/// * every graph-atom subject is a WHERE-bound variable or an IRI
///   constant, and every such subject value **inverts** through the
///   stream's subject template to a raw key of the key column's type
///   (subject IRIs the template cannot mint match no state triple and are
///   skipped; non-IRI subjects disable the restriction — enrichment can
///   in principle derive literal-subject assertions from foreign rows),
/// * the TBox carries no integrity constraints (a foreign row can flip a
///   whole state's `IcPolicy` verdict), and
/// * the key set stays within [`MAX_STREAM_KEYS`].
fn admissible_stream_keys(
    translated: &TranslatedQuery,
    stream_to_rdf: &StreamToRdf,
    db: &Database,
    bindings: &[HashMap<String, Term>],
) -> Option<Vec<Value>> {
    if !translated.having.restriction_safe() {
        return None;
    }
    // Any integrity constraint makes state dropping depend on *all* tuples
    // of the state, foreign ones included.
    if !translated.ontology.disjoint_concepts().is_empty()
        || translated.ontology.functional_roles().next().is_some()
    {
        return None;
    }
    let schema = &db.table(&translated.query.stream.name).ok()?.schema;
    let key_idx = schema.index_of(stream_to_rdf.subject.column())?;
    let key_type = schema.columns()[key_idx].ty;
    // Bool/Any keys cannot be inverted unambiguously (Text("1") and
    // Int(1) render identically) — same refusal as shard routing's.
    if matches!(key_type, ColumnType::Bool | ColumnType::Any) {
        return None;
    }
    let pattern = stream_to_rdf.subject.sql_pattern();
    let (prefix, suffix) = pattern.split_once("{}")?;

    let mut keys: BTreeSet<Value> = BTreeSet::new();
    fn admit(
        keys: &mut BTreeSet<Value>,
        term: &Term,
        prefix: &str,
        suffix: &str,
        key_type: ColumnType,
    ) -> Option<()> {
        match term {
            Term::Iri(iri) => {
                // A subject the template cannot mint is never a state
                // subject: it constrains nothing and adds no key.
                if let Some(key) = invert_stream_key(iri.as_str(), prefix, suffix, key_type) {
                    keys.insert(key);
                }
                Some(())
            }
            // Literal / blank subjects could match enrichment-derived
            // assertions whose provenance includes foreign rows.
            _ => None,
        }
    }
    for subject in translated.having.graph_subjects() {
        match subject {
            QueryTerm::Const(term) => admit(&mut keys, term, prefix, suffix, key_type)?,
            QueryTerm::Var(v) => {
                if !translated.where_answer_vars.iter().any(|w| w == v) {
                    // A HAVING-local subject variable ranges over the whole
                    // window; restricting would hide its witnesses.
                    return None;
                }
                for binding in bindings {
                    admit(&mut keys, binding.get(v)?, prefix, suffix, key_type)?;
                }
            }
        }
        if keys.len() > MAX_STREAM_KEYS {
            return None;
        }
    }
    Some(keys.into_iter().collect())
}

/// True when any [`HavingFormula::Agg`] atom appears anywhere in the
/// formula — such ticks must fold the window into per-subject accumulators.
fn contains_agg(f: &HavingFormula) -> bool {
    match f {
        HavingFormula::Agg { .. } => true,
        HavingFormula::Exists { body, .. }
        | HavingFormula::Forall { body, .. }
        | HavingFormula::Not(body) => contains_agg(body),
        HavingFormula::If { cond, then } => contains_agg(cond) || contains_agg(then),
        HavingFormula::And(a, b) | HavingFormula::Or(a, b) => contains_agg(a) || contains_agg(b),
        HavingFormula::True
        | HavingFormula::StateLess { .. }
        | HavingFormula::Graph { .. }
        | HavingFormula::Cmp { .. } => false,
    }
}

/// Decides, at registration, whether ticks can be answered from per-shard
/// pane partials alone. Sound exactly when:
///
/// * the HAVING condition is a boolean tree (`AND`/`OR`/`NOT`/`TRUE`) of
///   aggregate atoms only — no quantifier, graph pattern, state order, or
///   bare comparison needs the state sequence;
/// * every aggregate reads the stream's mapped value property, so the
///   pane store's one (key, value) accumulator grid answers them all;
/// * every aggregate subject is a WHERE-bound variable or an IRI constant
///   (both render/invert through the subject template), and every
///   threshold is a numeric literal or a WHERE-bound variable;
/// * the subject, timestamp and value columns exist, the value column
///   numeric.
///
/// Anything else declines: the tick falls back to full-window shipping,
/// whose semantics the streaming-equivalence oracle already pins down.
fn pane_plan_for(
    translated: &TranslatedQuery,
    stream_to_rdf: &StreamToRdf,
    db: &Database,
) -> Option<PanePlan> {
    let having = &translated.having;
    if !contains_agg(having) || !pane_combinable_tree(having, translated, stream_to_rdf) {
        return None;
    }
    let schema = &db.table(&translated.query.stream.name).ok()?.schema;
    let key_col = stream_to_rdf.subject.column().to_string();
    schema.index_of(&key_col)?;
    schema.index_of(&stream_to_rdf.timestamp_col)?;
    let val_idx = schema.index_of(&stream_to_rdf.value_col)?;
    if !matches!(
        schema.columns()[val_idx].ty,
        ColumnType::Int | ColumnType::Float
    ) {
        return None;
    }
    Some(PanePlan {
        key_col,
        val_col: stream_to_rdf.value_col.clone(),
        needs_extrema: needs_extrema(having),
    })
}

fn pane_combinable_tree(
    f: &HavingFormula,
    translated: &TranslatedQuery,
    stream_to_rdf: &StreamToRdf,
) -> bool {
    let where_bound = |v: &str| translated.where_answer_vars.iter().any(|w| w == v);
    match f {
        HavingFormula::True => true,
        HavingFormula::And(a, b) | HavingFormula::Or(a, b) => {
            pane_combinable_tree(a, translated, stream_to_rdf)
                && pane_combinable_tree(b, translated, stream_to_rdf)
        }
        HavingFormula::Not(a) => pane_combinable_tree(a, translated, stream_to_rdf),
        HavingFormula::Agg {
            subject,
            property,
            threshold,
            ..
        } => {
            property == &stream_to_rdf.value_property
                && match subject {
                    QueryTerm::Var(v) => where_bound(v),
                    QueryTerm::Const(Term::Iri(_)) => true,
                    QueryTerm::Const(_) => false,
                }
                && match threshold {
                    QueryTerm::Const(Term::Literal(l)) => l.as_f64().is_some(),
                    QueryTerm::Const(_) => false,
                    QueryTerm::Var(v) => where_bound(v),
                }
        }
        _ => false,
    }
}

fn needs_extrema(f: &HavingFormula) -> bool {
    use crate::having::AggFunc;
    match f {
        HavingFormula::Agg { func, .. } => matches!(func, AggFunc::Min | AggFunc::Max),
        HavingFormula::Exists { body, .. }
        | HavingFormula::Forall { body, .. }
        | HavingFormula::Not(body) => needs_extrema(body),
        HavingFormula::If { cond, then } => needs_extrema(cond) || needs_extrema(then),
        HavingFormula::And(a, b) | HavingFormula::Or(a, b) => needs_extrema(a) || needs_extrema(b),
        _ => false,
    }
}

/// Maps a subject IRI back to the raw key value of the declared column
/// type, or `None` when the template cannot have minted it — the same
/// inversion discipline shard routing applies to `iri_template` columns.
fn invert_stream_key(iri: &str, prefix: &str, suffix: &str, key_type: ColumnType) -> Option<Value> {
    let middle = iri.strip_prefix(prefix)?.strip_suffix(suffix)?;
    match key_type {
        ColumnType::Int => middle.parse().ok().map(Value::Int),
        ColumnType::Float => middle.parse().ok().map(Value::Float),
        // `IriTemplate::render` writes timestamps through Display (`@{t}`).
        ColumnType::Timestamp => middle
            .strip_prefix('@')
            .and_then(|t| t.parse().ok())
            .map(Value::Timestamp),
        ColumnType::Text => Some(Value::text(middle)),
        ColumnType::Bool | ColumnType::Any => None,
    }
}

/// Static-binding SQL values come back as rendered IRIs or plain literals.
fn value_to_term(value: &Value) -> Term {
    match value {
        Value::Text(s) if s.contains("://") => Term::iri(s.as_ref()),
        Value::Int(i) => Term::Literal(optique_rdf::Literal::integer(*i)),
        Value::Float(f) => Term::Literal(optique_rdf::Literal::double(*f)),
        Value::Bool(b) => Term::Literal(optique_rdf::Literal::boolean(*b)),
        Value::Timestamp(t) => Term::Literal(optique_rdf::Literal::datetime_millis(*t)),
        Value::Text(s) => Term::Literal(optique_rdf::Literal::string(s.as_ref())),
        Value::Null => Term::Literal(optique_rdf::Literal::string("")),
    }
}

fn instantiate_construct(
    template: &[Atom],
    binding: &HashMap<String, Term>,
    out: &mut Vec<Triple>,
) -> Result<(), String> {
    let resolve = |t: &QueryTerm| -> Result<Term, String> {
        match t {
            QueryTerm::Const(c) => Ok(c.clone()),
            QueryTerm::Var(v) => binding
                .get(v)
                .cloned()
                .ok_or_else(|| format!("CONSTRUCT variable ?{v} is unbound")),
        }
    };
    for atom in template {
        match atom {
            Atom::Class { class, arg } => {
                out.push(Triple::class_assertion(resolve(arg)?, class.clone()));
            }
            Atom::Property {
                property,
                subject,
                object,
            } => {
                out.push(Triple::new(
                    resolve(subject)?,
                    property.clone(),
                    resolve(object)?,
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_starql, FIGURE1};
    use crate::translate::{translate, TranslationContext};
    use optique_mapping::{IriTemplate, MappingAssertion, MappingCatalog, TermMap};
    use optique_ontology::{Axiom, BasicConcept, Ontology};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType};

    const SIE: &str = "http://siemens.example/ontology#";

    fn iri(s: &str) -> Iri {
        Iri::new(format!("{SIE}{s}"))
    }

    /// Static DB: 1 assembly, 2 sensors (10 rising-to-failure, 11 falling);
    /// stream: 10s of measurements for both.
    fn deployment() -> (Database, Ontology, MappingCatalog) {
        let mut db = Database::new();
        db.put_table(
            "assemblies",
            table_of(
                "assemblies",
                &[("aid", ColumnType::Int)],
                vec![vec![Value::Int(1)]],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("aid", ColumnType::Int)],
                vec![
                    vec![Value::Int(10), Value::Int(1)],
                    vec![Value::Int(11), Value::Int(1)],
                ],
            )
            .unwrap(),
        );
        // Stream S_Msmt: sensor 10 rises each second and fails at t=609s;
        // sensor 11 falls.
        let mut rows = Vec::new();
        for i in 0..10i64 {
            let t = 600_000 + i * 1_000;
            rows.push(vec![
                Value::Timestamp(t),
                Value::Int(10),
                Value::Float(70.0 + i as f64),
                if i == 9 {
                    Value::text("failure")
                } else {
                    Value::Null
                },
            ]);
            rows.push(vec![
                Value::Timestamp(t),
                Value::Int(11),
                Value::Float(90.0 - i as f64),
                Value::Null,
            ]);
        }
        db.put_table(
            "S_Msmt",
            table_of(
                "S_Msmt",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("sensor_id", ColumnType::Int),
                    ("value", ColumnType::Float),
                    ("event", ColumnType::Text),
                ],
                rows,
            )
            .unwrap(),
        );

        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::domain(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Assembly")),
        ));
        onto.add_axiom(Axiom::range(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Sensor")),
        ));

        let mut maps = MappingCatalog::new();
        maps.add(
            MappingAssertion::class(
                "assembly",
                iri("Assembly"),
                "SELECT aid FROM assemblies",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
            )
            .with_key(vec!["aid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::class(
                "sensor",
                iri("Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::property(
                "in_assembly",
                iri("inAssembly"),
                "SELECT aid, sid FROM sensors",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["aid".into(), "sid".into()]),
        )
        .unwrap();
        (db, onto, maps)
    }

    fn stream_mapping() -> StreamToRdf {
        StreamToRdf {
            timestamp_col: "ts".into(),
            subject: IriTemplate::parse("http://siemens.example/data/sensor/{sensor_id}").unwrap(),
            value_property: iri("hasValue"),
            value_col: "value".into(),
            value_datatype: Datatype::Double,
            event_col: Some("event".into()),
            event_classes: vec![("failure".into(), iri("showsFailure"))],
        }
    }

    fn registered() -> (ContinuousQuery, Database) {
        let (db, onto, maps) = deployment();
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(FIGURE1, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        (cq, db)
    }

    #[test]
    fn registration_computes_bindings() {
        let (cq, _db) = registered();
        assert_eq!(cq.binding_count(), 2, "two sensors bound via WHERE");
    }

    /// Figure 1's MONOTONIC formula is restriction-safe and all its graph
    /// subjects are WHERE-bound: registration inverts the two sensor IRIs
    /// to raw keys for window-fragment pushdown.
    #[test]
    fn stream_keys_invert_bound_subjects() {
        let (cq, _db) = registered();
        assert_eq!(
            cq.stream_keys(),
            Some(&[Value::Int(10), Value::Int(11)][..]),
            "both monitored sensors admit"
        );
    }

    /// Any integrity constraint disables window restriction: a foreign
    /// tuple can flip a whole state's IC verdict.
    #[test]
    fn stream_keys_disabled_under_constraints() {
        use optique_ontology::Role;
        let (db, mut onto, maps) = deployment();
        onto.add_axiom(Axiom::Functional(Role::named(iri("hasValue"))));
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(FIGURE1, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        assert_eq!(cq.stream_keys(), None);
    }

    /// A loopback fragment executor: runs every window fragment on the
    /// local database after a full wire round trip — exactly what a
    /// worker pool does, minus the threads.
    struct Loopback {
        db: Database,
    }

    impl optique_sparql::FragmentExecutor for Loopback {
        fn execute(
            &self,
            fragments: Vec<PlanFragment>,
        ) -> Result<optique_sparql::FragmentRound, String> {
            let tables = fragments
                .into_iter()
                .map(|f| {
                    let decoded = PlanFragment::decode(&f.encode()).map_err(|e| e.to_string())?;
                    decoded.execute(&self.db).map_err(|e| e.to_string())
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(optique_sparql::FragmentRound {
                tables,
                ..Default::default()
            })
        }
    }

    /// Ticks through the fragment pipeline produce the same output stream
    /// as local slicing — including the restricted-window path.
    #[test]
    fn fragment_ticks_match_local_ticks() {
        let (cq, db) = registered();
        assert!(cq.stream_keys().is_some(), "restriction engages");
        let loopback = Loopback { db: db.clone() };
        for tick_ms in [1_000, 604_000, 605_000, 609_000, 700_000] {
            let local = cq.tick(&db, &WCache::new(), tick_ms).unwrap();
            let shipped = cq
                .tick_via(&db, &WCache::new(), tick_ms, Some(&loopback))
                .unwrap();
            assert_eq!(local.window_id, shipped.window_id);
            assert_eq!(local.satisfied, shipped.satisfied, "tick {tick_ms}");
            assert_eq!(local.triples, shipped.triples, "tick {tick_ms}");
            assert_eq!(local.states, shipped.states);
            if shipped.window_id > 0 || shipped.tuples_in_window > 0 {
                assert_eq!(shipped.window_fragments, 1, "window shipped as a fragment");
                assert_eq!(
                    shipped.semi_joins_pushed, 1,
                    "stream-key restriction rode along"
                );
            }
        }
    }

    /// The shared window cache keeps restricted and full windows apart,
    /// and a second distributed tick reuses the shipped window.
    #[test]
    fn distributed_windows_cache_by_variant() {
        let (cq, db) = registered();
        let loopback = Loopback { db: db.clone() };
        let wcache = WCache::new();
        let first = cq.tick_via(&db, &wcache, 609_000, Some(&loopback)).unwrap();
        assert!(first.stream_rows_shipped > 0);
        let second = cq.tick_via(&db, &wcache, 609_000, Some(&loopback)).unwrap();
        assert_eq!(second.window_fragments, 0, "cache hit ships nothing");
        assert_eq!(second.stream_rows_shipped, 0);
        assert_eq!(first.triples, second.triples);
        // A local tick of the same window builds the *full* variant —
        // the restricted entry must not answer it.
        let local = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(local.tuples_in_window, 20, "full window, not the subset");
    }

    /// A WHERE FILTER, pushed into the unfolded static SQL, narrows the set
    /// of monitored bindings before any tick runs.
    #[test]
    fn where_filter_narrows_bindings() {
        let (db, onto, mut maps) = deployment();
        maps.add(
            MappingAssertion::property(
                "serial",
                iri("hasSerial"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
                TermMap::column("sid", Datatype::Integer),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM S_out AS
            CONSTRUCT GRAPH NOW { ?c2 a sie:MonInc }
            FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?c1 sie:inAssembly ?c2 . ?c2 sie:hasSerial ?n . FILTER(?n > 10) }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(text, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        assert_eq!(
            cq.binding_count(),
            1,
            "sensors 10 and 11 exist; FILTER(?n > 10) keeps only 11"
        );
    }

    /// The end-to-end Figure 1 behaviour: at the tick after sensor 10's
    /// failure, the monotonic-increase alarm fires for sensor 10 only.
    #[test]
    fn figure1_detects_monotonic_failure() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        // Failure occurs at 609 s; the window closing at 609 s covers
        // (599s, 609s] = the whole ramp.
        let out = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(out.bindings_checked, 2);
        assert_eq!(
            out.satisfied, 1,
            "only the rising sensor with a failure fires"
        );
        assert_eq!(out.triples.len(), 1);
        let t = &out.triples[0];
        assert_eq!(
            t.subject,
            Term::iri("http://siemens.example/data/sensor/10")
        );
        assert_eq!(t.object, Term::Iri(iri("MonInc")));
    }

    #[test]
    fn no_alarm_before_failure() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        // At 605 s the ramp is rising but no failure message exists yet.
        let out = cq.tick(&db, &wcache, 605_000).unwrap();
        assert_eq!(out.satisfied, 0);
        assert!(out.tuples_in_window > 0);
    }

    #[test]
    fn wcache_shared_across_ticks_and_queries() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let _ = cq.tick(&db, &wcache, 609_000).unwrap();
        let misses_after_first = wcache.misses();
        // Second query (same window spec) reuses the window.
        let (cq2, _) = registered();
        let _ = cq2.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(wcache.misses(), misses_after_first);
        assert!(wcache.hits() >= 1);
    }

    #[test]
    fn tick_before_first_window_is_empty() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let out = cq.tick(&db, &wcache, 1_000).unwrap();
        assert_eq!(out.bindings_checked, 0);
        assert!(out.triples.is_empty());
    }

    /// Registers a query over the shared deployment from explicit STARQL
    /// text (the Figure 1 static side, custom CONSTRUCT/HAVING).
    fn registered_text(text: &str) -> (ContinuousQuery, Database) {
        let (db, onto, maps) = deployment();
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(text, &ns).unwrap();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        let translated = translate(&q, &ctx).unwrap();
        let cq = ContinuousQuery::register(translated, stream_mapping(), &db).unwrap();
        (cq, db)
    }

    fn agg_query(output_mode: &str, having: &str) -> String {
        format!(
            r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM S_out AS {output_mode}
            CONSTRUCT GRAPH NOW {{ ?c2 a sie:HighLoad }}
            FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE {{ ?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2. }}
            SEQUENCE BY StdSeq AS seq
            HAVING {having}
            "#
        )
    }

    /// A pure aggregate HAVING tree is proven pane-combinable at
    /// registration; mixing in a graph pattern declines the analysis.
    #[test]
    fn pane_analysis_accepts_pure_aggregate_trees() {
        let (cq, _) = registered_text(&agg_query("", "AVG(?c2, sie:hasValue) >= 80"));
        assert!(cq.pane_combinable());
        let (cq, _) = registered_text(&agg_query(
            "",
            "SUM(?c2, sie:hasValue) >= 100 AND NOT COUNT(?c2, sie:hasValue) > 99",
        ));
        assert!(cq.pane_combinable());
        // A graph pattern needs the state sequence: declined.
        let (cq, _) = registered_text(&agg_query(
            "",
            "SUM(?c2, sie:hasValue) >= 100 AND EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:showsFailure }",
        ));
        assert!(!cq.pane_combinable());
        // An aggregate over a property other than the mapped value
        // property has no pane grid: declined.
        let (cq, _) = registered_text(&agg_query("", "SUM(?c2, sie:hasTemperature) >= 100"));
        assert!(!cq.pane_combinable());
    }

    /// Pane-combined distributed ticks produce exactly the local reference
    /// output, and disabling the pane path at runtime falls back to
    /// full-window shipping with the same result.
    #[test]
    fn pane_ticks_match_local_ticks() {
        // Sensor 10 averages 74.5 over the ramp, sensor 11 averages 85.5:
        // threshold 80 fires for sensor 11 only.
        let (cq, db) = registered_text(&agg_query("", "AVG(?c2, sie:hasValue) >= 80"));
        assert!(cq.pane_combinable());
        let loopback = Loopback { db: db.clone() };
        for tick_ms in [1_000, 604_000, 609_000, 700_000] {
            let local = cq.tick(&db, &WCache::new(), tick_ms).unwrap();
            let paned = cq
                .tick_via(&db, &WCache::new(), tick_ms, Some(&loopback))
                .unwrap();
            assert_eq!(local.window_id, paned.window_id);
            assert_eq!(local.triples, paned.triples, "tick {tick_ms}");
            assert_eq!(local.satisfied, paned.satisfied);
            assert_eq!(local.tuples_in_window, paned.tuples_in_window);
            cq.set_pane_aggregation(false);
            let rescan = cq
                .tick_via(&db, &WCache::new(), tick_ms, Some(&loopback))
                .unwrap();
            cq.set_pane_aggregation(true);
            assert_eq!(local.triples, rescan.triples, "rescan tick {tick_ms}");
        }
        let alarm = cq.tick(&db, &WCache::new(), 609_000).unwrap();
        assert_eq!(alarm.satisfied, 1);
        assert_eq!(
            alarm.triples[0].subject,
            Term::iri("http://siemens.example/data/sensor/11")
        );
    }

    /// A declined-analysis query (aggregate AND graph pattern) still ticks
    /// identically through the full-window fragment fallback.
    #[test]
    fn declined_analysis_falls_back_to_window_shipping() {
        let (cq, db) = registered_text(&agg_query(
            "",
            "SUM(?c2, sie:hasValue) >= 100 AND EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:showsFailure }",
        ));
        assert!(!cq.pane_combinable());
        let loopback = Loopback { db: db.clone() };
        for tick_ms in [604_000, 609_000, 700_000] {
            let local = cq.tick(&db, &WCache::new(), tick_ms).unwrap();
            let shipped = cq
                .tick_via(&db, &WCache::new(), tick_ms, Some(&loopback))
                .unwrap();
            assert_eq!(local.triples, shipped.triples, "tick {tick_ms}");
            assert_eq!(shipped.pane_hits + shipped.pane_misses, 0, "no pane probe");
        }
        // Only the failing-and-heavy sensor 10 fires at 609 s.
        let out = cq.tick(&db, &WCache::new(), 609_000).unwrap();
        assert_eq!(out.satisfied, 1);
        assert_eq!(
            out.triples[0].subject,
            Term::iri("http://siemens.example/data/sensor/10")
        );
    }

    /// ISTREAM emits an alarm only on the tick where it first appears;
    /// steady-state re-confirmations are empty deltas.
    #[test]
    fn istream_emits_only_new_alarms() {
        let (cq, db) = registered_text(&agg_query("ISTREAM", "AVG(?c2, sie:hasValue) >= 80"));
        assert_eq!(cq.output_mode(), OutputMode::IStream);
        let wcache = WCache::new();
        let first = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(first.triples.len(), 1, "first appearance streams out");
        assert_eq!(first.satisfied, 1, "satisfaction accounting is pre-differ");
        let second = cq.tick(&db, &wcache, 610_000).unwrap();
        assert_eq!(second.satisfied, 1, "alarm still holds");
        assert!(second.triples.is_empty(), "unchanged relation, empty delta");
    }

    /// DSTREAM emits an alarm only when it disappears.
    #[test]
    fn dstream_emits_dropped_alarms() {
        let (cq, db) = registered_text(&agg_query("DSTREAM", "AVG(?c2, sie:hasValue) >= 80"));
        let wcache = WCache::new();
        let present = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(present.satisfied, 1);
        assert!(present.triples.is_empty(), "nothing dropped yet");
        // The window (690s, 700s] is empty: the alarm disappears.
        let gone = cq.tick(&db, &wcache, 700_000).unwrap();
        assert_eq!(gone.satisfied, 0);
        assert_eq!(gone.triples.len(), 1, "the dropped alarm streams out");
        assert_eq!(
            gone.triples[0].subject,
            Term::iri("http://siemens.example/data/sensor/11")
        );
    }

    #[test]
    fn states_count_matches_distinct_timestamps() {
        let (cq, db) = registered();
        let wcache = WCache::new();
        let out = cq.tick(&db, &wcache, 609_000).unwrap();
        assert_eq!(out.states, 10, "ten distinct timestamps in the window");
        assert_eq!(out.tuples_in_window, 20);
    }
}
