//! `StdSeq` sequencing semantics: window contents → a sequence of RDF
//! states.
//!
//! STARQL "extends snapshot semantics for window operators [1] with
//! sequencing semantics that can handle integrity constraints such as
//! functionality assertions". `StdSeq` (the *standard sequence*) groups the
//! window's tuples by timestamp; each group becomes one **state** — a small
//! RDF graph produced by the stream-to-RDF mapping — and states are ordered
//! by time. Functionality constraints from the ontology are checked per
//! state: a sensor reporting two different values at one instant violates
//! `funct(hasValue)`.

use std::collections::BTreeMap;

use optique_ontology::materialize::{check_constraints, Violation};
use optique_ontology::Ontology;
use optique_rdf::{Datatype, Graph, Iri, Term, Triple};
use optique_relational::{Schema, Value};

use optique_mapping::IriTemplate;

/// How one stream tuple becomes RDF triples inside a state.
///
/// This is the stream-side mapping of the deployment: the measurement
/// stream's columns are mapped to a subject IRI (via a template over the
/// sensor-id column), a value property, and optionally an event column whose
/// values denote class memberships (e.g. `"failure"` ↦ `sie:showsFailure`).
#[derive(Clone, Debug)]
pub struct StreamToRdf {
    /// Name of the timestamp column.
    pub timestamp_col: String,
    /// Template minting the subject IRI from the sensor-id column.
    pub subject: IriTemplate,
    /// The value property (e.g. `sie:hasValue`).
    pub value_property: Iri,
    /// Name of the value column.
    pub value_col: String,
    /// Datatype of emitted value literals.
    pub value_datatype: Datatype,
    /// Optional event column: `(column name, value → class)` pairs.
    pub event_col: Option<String>,
    /// Event lexical value → class IRI.
    pub event_classes: Vec<(String, Iri)>,
}

impl StreamToRdf {
    /// Emits the triples of one tuple (may be empty if the value is NULL and
    /// no event fires).
    pub fn tuple_triples(&self, row: &[Value], schema: &Schema) -> Vec<Triple> {
        let mut out = Vec::new();
        let Some(subj_idx) = schema.index_of(self.subject.column()) else {
            return out;
        };
        let subj_val = &row[subj_idx];
        if subj_val.is_null() {
            return out;
        }
        let subject = Term::iri(self.subject.render(subj_val));
        if let Some(value_idx) = schema.index_of(&self.value_col) {
            if let Some(lit) =
                optique_mapping::virtualize::value_to_literal(&row[value_idx], self.value_datatype)
            {
                out.push(Triple::new(
                    subject.clone(),
                    self.value_property.clone(),
                    Term::Literal(lit),
                ));
            }
        }
        if let Some(event_col) = &self.event_col {
            if let Some(event_idx) = schema.index_of(event_col) {
                if let Some(event) = row[event_idx].as_str() {
                    for (lexical, class) in &self.event_classes {
                        if lexical == event {
                            out.push(Triple::class_assertion(subject.clone(), class.clone()));
                        }
                    }
                }
            }
        }
        out
    }
}

/// One state: an instant and the RDF graph of the tuples at that instant.
#[derive(Clone, Debug)]
pub struct State {
    /// The state's timestamp.
    pub timestamp: i64,
    /// The state's ABox.
    pub graph: Graph,
}

/// A time-ordered sequence of states (the denotation of `SEQUENCE BY StdSeq`
/// for one window).
#[derive(Clone, Debug, Default)]
pub struct StateSequence {
    /// States in ascending timestamp order.
    pub states: Vec<State>,
}

impl StateSequence {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the window produced no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// What to do with states violating integrity constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IcPolicy {
    /// Violations abort the window's evaluation (strict certain-answer mode).
    Strict,
    /// Violating states are dropped; evaluation continues (the demo's
    /// pragmatic mode for dirty sensor data).
    DropViolating,
}

/// Errors from sequence construction.
#[derive(Debug, Clone)]
pub enum SequenceError {
    /// A state violated constraints under [`IcPolicy::Strict`].
    IntegrityViolation {
        /// Timestamp of the violating state.
        timestamp: i64,
        /// The violations found.
        violations: Vec<Violation>,
    },
}

impl std::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequenceError::IntegrityViolation {
                timestamp,
                violations,
            } => write!(
                f,
                "state at {timestamp} violates {} integrity constraint(s)",
                violations.len()
            ),
        }
    }
}

impl std::error::Error for SequenceError {}

/// Builds the standard sequence from window rows.
///
/// Rows are grouped by the timestamp column; each group's triples (via
/// `mapping`) form the state graph. When `ontology` is given, each state is
/// checked against its functionality/disjointness constraints under
/// `policy`.
pub fn build_stdseq(
    rows: &[Vec<Value>],
    schema: &Schema,
    mapping: &StreamToRdf,
    ontology: Option<&Ontology>,
    policy: IcPolicy,
) -> Result<(StateSequence, usize), SequenceError> {
    let Some(ts_idx) = schema.index_of(&mapping.timestamp_col) else {
        return Ok((StateSequence::default(), 0));
    };
    let mut by_time: BTreeMap<i64, Vec<&Vec<Value>>> = BTreeMap::new();
    for row in rows {
        if let Some(ts) = row[ts_idx].as_i64() {
            by_time.entry(ts).or_default().push(row);
        }
    }
    let mut states = Vec::with_capacity(by_time.len());
    let mut dropped = 0usize;
    for (timestamp, group) in by_time {
        let mut graph = Graph::new();
        for row in group {
            graph.extend(mapping.tuple_triples(row, schema));
        }
        if let Some(onto) = ontology {
            let violations = check_constraints(&graph, onto);
            if !violations.is_empty() {
                match policy {
                    IcPolicy::Strict => {
                        return Err(SequenceError::IntegrityViolation {
                            timestamp,
                            violations,
                        })
                    }
                    IcPolicy::DropViolating => {
                        dropped += 1;
                        continue;
                    }
                }
            }
        }
        states.push(State { timestamp, graph });
    }
    Ok((StateSequence { states }, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_ontology::{Axiom, Role};
    use optique_relational::{Column, ColumnType};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn schema() -> Schema {
        Schema::qualified(
            "S_Msmt",
            vec![
                Column::new("ts", ColumnType::Timestamp),
                Column::new("sensor_id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
                Column::new("event", ColumnType::Text),
            ],
        )
    }

    fn mapping() -> StreamToRdf {
        StreamToRdf {
            timestamp_col: "ts".into(),
            subject: IriTemplate::parse("http://x/sensor/{sensor_id}").unwrap(),
            value_property: iri("hasValue"),
            value_col: "value".into(),
            value_datatype: Datatype::Double,
            event_col: Some("event".into()),
            event_classes: vec![("failure".into(), iri("showsFailure"))],
        }
    }

    fn row(ts: i64, sensor: i64, value: f64, event: Option<&str>) -> Vec<Value> {
        vec![
            Value::Timestamp(ts),
            Value::Int(sensor),
            Value::Float(value),
            event.map(Value::text).unwrap_or(Value::Null),
        ]
    }

    #[test]
    fn states_group_by_timestamp() {
        let rows = vec![
            row(1000, 1, 70.0, None),
            row(1000, 2, 60.0, None),
            row(2000, 1, 75.0, None),
        ];
        let (seq, dropped) =
            build_stdseq(&rows, &schema(), &mapping(), None, IcPolicy::Strict).unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(dropped, 0);
        assert_eq!(seq.states[0].timestamp, 1000);
        assert_eq!(
            seq.states[0].graph.len(),
            2,
            "two sensors' values at t=1000"
        );
    }

    #[test]
    fn event_column_emits_class_assertion() {
        let rows = vec![row(1000, 1, 99.0, Some("failure"))];
        let (seq, _) = build_stdseq(&rows, &schema(), &mapping(), None, IcPolicy::Strict).unwrap();
        let g = &seq.states[0].graph;
        assert_eq!(g.len(), 2, "value triple + failure class assertion");
        assert_eq!(g.instances_of(&iri("showsFailure")).len(), 1);
    }

    #[test]
    fn functionality_violation_strict_errors() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::Functional(Role::named(iri("hasValue"))));
        // Same sensor, same instant, two values.
        let rows = vec![row(1000, 1, 70.0, None), row(1000, 1, 71.0, None)];
        let err =
            build_stdseq(&rows, &schema(), &mapping(), Some(&onto), IcPolicy::Strict).unwrap_err();
        assert!(matches!(
            err,
            SequenceError::IntegrityViolation {
                timestamp: 1000,
                ..
            }
        ));
    }

    #[test]
    fn functionality_violation_drop_policy_skips_state() {
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::Functional(Role::named(iri("hasValue"))));
        let rows = vec![
            row(1000, 1, 70.0, None),
            row(1000, 1, 71.0, None),
            row(2000, 1, 75.0, None),
        ];
        let (seq, dropped) = build_stdseq(
            &rows,
            &schema(),
            &mapping(),
            Some(&onto),
            IcPolicy::DropViolating,
        )
        .unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.states[0].timestamp, 2000);
    }

    #[test]
    fn null_values_emit_no_value_triple() {
        let rows = vec![vec![
            Value::Timestamp(1000),
            Value::Int(1),
            Value::Null,
            Value::Null,
        ]];
        let (seq, _) = build_stdseq(&rows, &schema(), &mapping(), None, IcPolicy::Strict).unwrap();
        assert_eq!(seq.len(), 1);
        assert!(seq.states[0].graph.is_empty());
    }

    #[test]
    fn empty_window_empty_sequence() {
        let (seq, _) = build_stdseq(&[], &schema(), &mapping(), None, IcPolicy::Strict).unwrap();
        assert!(seq.is_empty());
    }
}
