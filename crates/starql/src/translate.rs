//! STARQL → SQL(+) translation: enrichment + unfolding.
//!
//! This is the STARQL2SQL(+) translator of the paper: the WHERE clause (a
//! conjunctive query over the ontology) is **enriched** by PerfectRef and
//! **unfolded** through the mapping catalog into one SQL statement over the
//! static sources; the stream side becomes a `timeslidingwindow` SQL(+)
//! query evaluated per pulse tick. The translator also reports the
//! *fleet* — the set of low-level data queries the single STARQL query
//! replaces — which is the paper's headline conciseness argument (§1: a
//! fleet of hundreds of queries, up to 80 % of diagnostic time).

use std::collections::{BTreeSet, HashMap};

use optique_mapping::{unfold_ucq, MappingCatalog, UnfoldSettings, UnfoldStats};
use optique_ontology::Ontology;
use optique_relational::parser::{Projection, SelectStatement};
use optique_relational::Expr;
use optique_rewrite::{
    rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings, RewriteStats, UnionQuery,
};
use optique_sparql::{expression_to_sql, split_union_chain, Expression};

use crate::ast::StarQlQuery;
use crate::having::{expand, HavingFormula};

/// Everything translation needs from the deployment.
pub struct TranslationContext<'a> {
    /// The TBox.
    pub ontology: &'a Ontology,
    /// The mapping catalog over the static sources.
    pub mappings: &'a MappingCatalog,
    /// Enrichment settings.
    pub rewrite_settings: RewriteSettings,
    /// Unfolding settings.
    pub unfold_settings: UnfoldSettings,
}

/// Translation failure.
#[derive(Debug, Clone)]
pub struct TranslateError(pub String);

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TranslateError {}

/// The translated query: ready for continuous execution and for fleet-size
/// accounting.
#[derive(Clone, Debug)]
pub struct TranslatedQuery {
    /// The source query.
    pub query: StarQlQuery,
    /// The macro-expanded HAVING formula.
    pub having: HavingFormula,
    /// WHERE answer variables (those shared with CONSTRUCT/HAVING).
    pub where_answer_vars: Vec<String>,
    /// The enriched WHERE clause (union of conjunctive queries).
    pub enriched_where: UnionQuery,
    /// The unfolded static-side SQL (`None` when some WHERE term has no
    /// mapping — the query can then never produce bindings).
    pub static_sql: Option<SelectStatement>,
    /// The low-level query fleet this one STARQL query stands for.
    pub fleet: Vec<String>,
    /// Enrichment statistics.
    pub rewrite_stats: RewriteStats,
    /// Unfolding statistics.
    pub unfold_stats: UnfoldStats,
    /// A copy of the TBox for state-level reasoning at execution time.
    pub ontology: Ontology,
}

impl TranslatedQuery {
    /// The SQL(+) text materializing stream windows `[first, last]` of the
    /// query's window spec over stream table `stream` with timestamp column
    /// index `ts_col`, window grid anchored at `start`.
    pub fn window_sql(&self, ts_col: usize, start: i64, first: u64, last: u64) -> String {
        format!(
            "SELECT * FROM timeslidingwindow('{}', {}, {}, {}, {}, {}, {}) AS w",
            self.query.stream.name,
            ts_col,
            self.query.stream.range_ms,
            self.query.stream.slide_ms,
            start,
            first,
            last
        )
    }

    /// Number of low-level queries the fleet contains.
    pub fn fleet_size(&self) -> usize {
        self.fleet.len()
    }
}

/// Runs enrichment and unfolding for a parsed STARQL query.
pub fn translate(
    query: &StarQlQuery,
    ctx: &TranslationContext<'_>,
) -> Result<TranslatedQuery, TranslateError> {
    // Expand aggregate macros first: HAVING decides the answer variables.
    let having = expand(&query.having, &query.aggregates).map_err(TranslateError)?;

    // Answer variables: WHERE variables (across all UNION disjuncts) used
    // by CONSTRUCT or HAVING.
    let disjuncts: &[Vec<Atom>] = if query.where_disjuncts.is_empty() {
        std::slice::from_ref(&query.where_bgp)
    } else {
        &query.where_disjuncts
    };
    let mut where_vars: BTreeSet<String> = BTreeSet::new();
    for d in disjuncts {
        where_vars.extend(atom_vars(d));
    }
    let mut used: BTreeSet<String> = atom_vars(&query.construct);
    collect_having_vars(&having, &mut used);
    let where_answer_vars: Vec<String> = where_vars
        .iter()
        .filter(|v| used.contains(*v))
        .cloned()
        .collect();
    if where_answer_vars.is_empty() {
        return Err(TranslateError(
            "no WHERE variable is used by CONSTRUCT or HAVING — the query is degenerate".into(),
        ));
    }
    // Continuous-query bindings are total: every answer variable must bind
    // in every UNION branch (the engine has no notion of a partially bound
    // sensor). Reject asymmetric branches with a pointed message instead of
    // letting unfolding fail on a missing projection.
    for (i, disjunct) in disjuncts.iter().enumerate() {
        let branch_vars = atom_vars(disjunct);
        if let Some(missing) = where_answer_vars.iter().find(|v| !branch_vars.contains(*v)) {
            return Err(TranslateError(format!(
                "variable ?{missing} is used by CONSTRUCT or HAVING but not bound in WHERE \
                 UNION branch {} — every branch must bind every used variable",
                i + 1
            )));
        }
    }

    // Per-disjunct FILTERs (parallel to `disjuncts`; pad for hand-built
    // queries that did not fill the field).
    let empty_filters: Vec<Expression> = Vec::new();
    let filters_of = |i: usize| -> &[Expression] {
        query
            .where_filters
            .get(i)
            .map(Vec::as_slice)
            .unwrap_or(&empty_filters)
    };
    // A filter constrains its own branch, so its variables must be bound
    // there (they need not be answer variables — pushdown projects them
    // internally and drops them again).
    for (i, disjunct) in disjuncts.iter().enumerate() {
        let branch_vars = atom_vars(disjunct);
        for filter in filters_of(i) {
            if let Some(v) = filter
                .variables()
                .into_iter()
                .find(|v| !branch_vars.contains(v))
            {
                return Err(TranslateError(format!(
                    "FILTER variable ?{v} is not bound in its WHERE branch {}",
                    i + 1
                )));
            }
        }
    }

    // Stages (i) + (ii) per source disjunct: enrichment (PerfectRef) on the
    // disjunct's own CQ, unfolding of the enriched UCQ, then FILTER pushdown
    // into each emitted SQL branch's WHERE clause. Disjuncts sharing a
    // filter set deduplicate up to variable renaming, exactly as before.
    let mut enriched_where = UnionQuery {
        disjuncts: Vec::new(),
    };
    let mut rewrite_stats = RewriteStats {
        generated: 0,
        retained: 0,
        iterations: 0,
        elapsed: std::time::Duration::ZERO,
    };
    let mut unfold_stats = UnfoldStats::default();
    let mut seen_keys: BTreeSet<String> = BTreeSet::new();
    let mut statements: Vec<SelectStatement> = Vec::new();
    for (i, disjunct) in disjuncts.iter().enumerate() {
        let filters = filters_of(i);
        // Filter variables ride along as internal answer variables so each
        // unfolded branch exposes a SQL expression for them.
        let mut ext_vars = where_answer_vars.clone();
        for filter in filters {
            for v in filter.variables() {
                if !ext_vars.contains(&v) {
                    ext_vars.push(v);
                }
            }
        }
        let where_cq = ConjunctiveQuery::new(ext_vars, disjunct.clone());
        let (ucq, stats) = rewrite(&where_cq, ctx.ontology, &ctx.rewrite_settings)
            .map_err(|e| TranslateError(e.to_string()))?;
        rewrite_stats.generated += stats.generated;
        rewrite_stats.retained += stats.retained;
        rewrite_stats.iterations += stats.iterations;
        rewrite_stats.elapsed += stats.elapsed;

        let filter_key = format!("{filters:?}");
        let mut branch_ucq = UnionQuery {
            disjuncts: Vec::new(),
        };
        for cq in ucq.disjuncts {
            if seen_keys.insert(format!("{filter_key}|{}", cq.canonical_key())) {
                branch_ucq.disjuncts.push(cq.clone());
                enriched_where.disjuncts.push(cq);
            }
        }
        if branch_ucq.disjuncts.is_empty() {
            continue;
        }

        let (sql, stats) =
            unfold_ucq(&branch_ucq, ctx.mappings, &ctx.unfold_settings).map_err(TranslateError)?;
        unfold_stats.combinations += stats.combinations;
        unfold_stats.emitted += stats.emitted;
        unfold_stats.pruned += stats.pruned;
        unfold_stats.self_joins_eliminated += stats.self_joins_eliminated;
        let Some(chain) = sql else { continue };
        for mut statement in split_union_chain(chain) {
            if !filters.is_empty() {
                push_filters(&mut statement, filters, &where_answer_vars)
                    .map_err(TranslateError)?;
            }
            statements.push(statement);
        }
    }
    // The fleet: each unfolded disjunct is one low-level static query; each
    // stream-attribute mapping adds one windowed stream query. Rendered
    // from the per-disjunct statements before they are chained.
    let mut fleet: Vec<String> = statements.iter().map(|s| s.to_string()).collect();
    let static_sql = chain_statements(statements);
    for property in having_properties(&having) {
        let stream_assertions = ctx.mappings.for_property(&property);
        let n = stream_assertions.len().max(1);
        for i in 0..n {
            fleet.push(format!(
                "SELECT * FROM timeslidingwindow('{}', <ts>, {}, {}, <start>, <w>, <w>) AS w{i} -- attribute {}",
                query.stream.name,
                query.stream.range_ms,
                query.stream.slide_ms,
                property
            ));
        }
    }

    Ok(TranslatedQuery {
        query: query.clone(),
        having,
        where_answer_vars,
        enriched_where,
        static_sql,
        fleet,
        rewrite_stats,
        unfold_stats,
        ontology: ctx.ontology.clone(),
    })
}

/// Pushes a branch's FILTERs into one unfolded SQL statement: each filter
/// translates over the statement's projection expressions
/// (`optique_sparql::expression_to_sql`) and lands in the `WHERE` clause;
/// the internal filter-variable projections are then dropped so every UNION
/// branch keeps the common answer signature.
fn push_filters(
    statement: &mut SelectStatement,
    filters: &[Expression],
    answer_vars: &[String],
) -> Result<(), String> {
    let by_var: HashMap<String, Expr> = statement
        .projections
        .iter()
        .filter_map(|p| match p {
            Projection::Expr {
                expr,
                alias: Some(alias),
            } => Some((alias.clone(), expr.clone())),
            _ => None,
        })
        .collect();
    let lookup = |v: &str| by_var.get(v).cloned();
    let mut conds: Vec<Expr> = statement.where_clause.take().into_iter().collect();
    for filter in filters {
        conds.push(expression_to_sql(filter, &lookup)?);
    }
    statement.where_clause = Expr::and_all(conds);
    statement.projections.retain(|p| {
        matches!(p, Projection::Expr { alias: Some(alias), .. }
            if answer_vars.iter().any(|v| v == alias))
    });
    Ok(())
}

/// Chains unfolded disjunct statements back into one `UNION ALL` statement.
/// Built back-to-front so each statement is linked exactly once (O(n), not
/// O(n²) tail re-walks).
fn chain_statements(statements: Vec<SelectStatement>) -> Option<SelectStatement> {
    let mut chain: Option<SelectStatement> = None;
    for mut statement in statements.into_iter().rev() {
        debug_assert!(
            statement.union_all.is_none(),
            "split_union_chain yields single statements"
        );
        statement.union_all = chain.take().map(Box::new);
        chain = Some(statement);
    }
    chain
}

fn atom_vars(atoms: &[Atom]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for atom in atoms {
        for term in atom.terms() {
            if let QueryTerm::Var(v) = term {
                out.insert(v.clone());
            }
        }
    }
    out
}

fn collect_having_vars(f: &HavingFormula, out: &mut BTreeSet<String>) {
    match f {
        HavingFormula::True | HavingFormula::StateLess { .. } => {}
        HavingFormula::Exists { body, .. } | HavingFormula::Forall { body, .. } => {
            collect_having_vars(body, out)
        }
        HavingFormula::If { cond, then } => {
            collect_having_vars(cond, out);
            collect_having_vars(then, out);
        }
        HavingFormula::And(a, b) | HavingFormula::Or(a, b) => {
            collect_having_vars(a, out);
            collect_having_vars(b, out);
        }
        HavingFormula::Not(a) => collect_having_vars(a, out),
        HavingFormula::Graph { atoms, .. } => {
            out.extend(atom_vars(atoms));
        }
        HavingFormula::Cmp { left, right, .. } => {
            for t in [left, right] {
                if let QueryTerm::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        HavingFormula::Agg {
            subject, threshold, ..
        } => {
            for t in [subject, threshold] {
                if let QueryTerm::Var(v) = t {
                    out.insert(v.clone());
                }
            }
        }
    }
}

/// Properties mentioned in HAVING graph patterns (the stream attributes).
fn having_properties(f: &HavingFormula) -> BTreeSet<optique_rdf::Iri> {
    let mut out = BTreeSet::new();
    fn walk(f: &HavingFormula, out: &mut BTreeSet<optique_rdf::Iri>) {
        match f {
            HavingFormula::Graph { atoms, .. } => {
                for atom in atoms {
                    if let Atom::Property { property, .. } = atom {
                        out.insert(property.clone());
                    }
                }
            }
            HavingFormula::Exists { body, .. } | HavingFormula::Forall { body, .. } => {
                walk(body, out)
            }
            HavingFormula::If { cond, then } => {
                walk(cond, out);
                walk(then, out);
            }
            HavingFormula::And(a, b) | HavingFormula::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            HavingFormula::Not(a) => walk(a, out),
            HavingFormula::Agg { property, .. } => {
                out.insert(property.clone());
            }
            _ => {}
        }
    }
    walk(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_starql, FIGURE1};
    use optique_mapping::{MappingAssertion, TermMap};
    use optique_ontology::{Axiom, BasicConcept};
    use optique_rdf::{Datatype, Iri, Namespaces};

    const SIE: &str = "http://siemens.example/ontology#";

    fn iri(s: &str) -> Iri {
        Iri::new(format!("{SIE}{s}"))
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("TemperatureSensor")),
            BasicConcept::atomic(iri("Sensor")),
        ));
        o.add_axiom(Axiom::range(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Sensor")),
        ));
        o.add_axiom(Axiom::domain(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Assembly")),
        ));
        o
    }

    fn mappings() -> MappingCatalog {
        let mut c = MappingCatalog::new();
        c.add(
            MappingAssertion::class(
                "assembly",
                iri("Assembly"),
                "SELECT aid FROM assemblies",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
            )
            .with_key(vec!["aid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "sensor",
                iri("Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::class(
                "temp_sensor",
                iri("TemperatureSensor"),
                "SELECT sid FROM sensors WHERE kind = 'temperature'",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        c.add(
            MappingAssertion::property(
                "in_assembly",
                iri("inAssembly"),
                "SELECT aid, sid FROM sensors",
                TermMap::template("http://siemens.example/data/assembly/{aid}"),
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
            )
            .with_key(vec!["aid".into(), "sid".into()]),
        )
        .unwrap();
        c
    }

    fn translate_figure1() -> TranslatedQuery {
        let ns = Namespaces::with_w3c_defaults();
        let q = parse_starql(FIGURE1, &ns).unwrap();
        let onto = ontology();
        let maps = mappings();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        translate(&q, &ctx).unwrap()
    }

    #[test]
    fn answer_vars_are_the_shared_ones() {
        let t = translate_figure1();
        assert_eq!(t.where_answer_vars, vec!["c2".to_string()]);
    }

    #[test]
    fn enrichment_expands_where() {
        let t = translate_figure1();
        // Sensor(x) rewrites via TemperatureSensor ⊑ Sensor and the
        // domain/range axioms; reduction then collapses the union to the
        // most general disjunct {inAssembly(c1, c2)} — several candidates
        // are generated, subsumption keeps the minimal set.
        assert!(
            t.rewrite_stats.generated >= 3,
            "generated {}",
            t.rewrite_stats.generated
        );
        assert!(!t.enriched_where.is_empty());
        assert!(t.rewrite_stats.retained <= t.rewrite_stats.generated);
        // The surviving disjunct must still reach the data through the
        // role atom (that is what makes all sensor variants reachable).
        let has_role = t.enriched_where.disjuncts.iter().any(|cq| {
            cq.atoms.iter().any(|a| {
                matches!(a, Atom::Property { property, .. }
                if property.local_name() == "inAssembly")
            })
        });
        assert!(has_role);
    }

    #[test]
    fn static_sql_is_executable_union() {
        let t = translate_figure1();
        let sql = t.static_sql.expect("mapped terms");
        // Must re-parse cleanly.
        optique_relational::parse_select(&sql.to_string()).unwrap();
    }

    #[test]
    fn fleet_counts_static_and_stream_queries() {
        let t = translate_figure1();
        assert!(t.fleet_size() >= 2, "fleet: {:#?}", t.fleet);
        assert!(t.fleet.iter().any(|q| q.contains("timeslidingwindow")));
        assert!(t.fleet.iter().any(|q| q.starts_with("SELECT DISTINCT")));
    }

    #[test]
    fn window_sql_shape() {
        let t = translate_figure1();
        let sql = t.window_sql(0, 600_000, 5, 7);
        assert!(sql.contains("timeslidingwindow('S_Msmt', 0, 10000, 1000, 600000, 5, 7)"));
    }

    #[test]
    fn union_where_unions_enrichments() {
        let ns = Namespaces::with_w3c_defaults();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { ?c2 a sie:Alert }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { { ?c2 a sie:TemperatureSensor } UNION { ?c1 sie:inAssembly ?c2 } }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let q = parse_starql(text, &ns).unwrap();
        assert_eq!(q.where_disjuncts.len(), 2);
        let onto = ontology();
        let maps = mappings();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let t = translate(&q, &ctx).unwrap();
        // Both branches reach the data: the temperature-sensor class and the
        // role atom each contribute at least one disjunct.
        assert!(
            t.enriched_where.len() >= 2,
            "enriched: {}",
            t.enriched_where
        );
        let sql = t.static_sql.expect("both branches are mapped").to_string();
        assert!(sql.contains("UNION ALL"), "{sql}");
    }

    fn mappings_with_serial() -> MappingCatalog {
        let mut maps = mappings();
        maps.add(
            MappingAssertion::property(
                "serial",
                iri("hasSerial"),
                "SELECT sid FROM sensors",
                TermMap::template("http://siemens.example/data/sensor/{sid}"),
                TermMap::column("sid", Datatype::Integer),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps
    }

    #[test]
    fn filter_pushes_into_static_sql_where_clause() {
        let ns = Namespaces::with_w3c_defaults();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { ?c2 a sie:Alert }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?c1 sie:inAssembly ?c2 . ?c2 sie:hasSerial ?n . FILTER(?n > 10) }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let q = parse_starql(text, &ns).unwrap();
        assert_eq!(q.where_filters[0].len(), 1);
        let onto = ontology();
        let maps = mappings_with_serial();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let t = translate(&q, &ctx).unwrap();
        // The filter variable rides along internally but is not an answer
        // variable.
        assert_eq!(t.where_answer_vars, vec!["c2".to_string()]);
        let sql = t.static_sql.expect("mapped terms").to_string();
        // The comparison landed in the SQL WHERE clause…
        assert!(sql.contains("> 10"), "{sql}");
        // …and the filter variable's projection was dropped again.
        assert!(!sql.contains(" AS n"), "{sql}");
        // The filtered statement still re-parses cleanly.
        optique_relational::parse_select(&sql).unwrap();
    }

    #[test]
    fn filter_on_unbound_variable_rejected() {
        let ns = Namespaces::with_w3c_defaults();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { ?c2 a sie:Alert }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?c1 sie:inAssembly ?c2 . FILTER(?nope > 10) }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let q = parse_starql(text, &ns).unwrap();
        let onto = ontology();
        let maps = mappings();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let err = translate(&q, &ctx).unwrap_err();
        assert!(err.0.contains("?nope"), "{}", err.0);
    }

    #[test]
    fn asymmetric_union_branch_rejected_with_explanation() {
        let ns = Namespaces::with_w3c_defaults();
        // ?c1 is used by CONSTRUCT but only bound in the second branch.
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { ?c1 a sie:Alert }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { { ?c2 a sie:TemperatureSensor } UNION { ?c1 sie:inAssembly ?c2 } }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:hasValue ?v }
        "#;
        let q = parse_starql(text, &ns).unwrap();
        let onto = ontology();
        let maps = mappings();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let err = translate(&q, &ctx).unwrap_err();
        assert!(err.0.contains("?c1"), "{}", err.0);
        assert!(err.0.contains("UNION branch 1"), "{}", err.0);
    }

    #[test]
    fn degenerate_query_rejected() {
        let ns = Namespaces::with_w3c_defaults();
        let text = r#"
            PREFIX sie: <http://siemens.example/ontology#>
            CREATE STREAM s AS
            CONSTRUCT GRAPH NOW { sie:x a sie:Alert }
            FROM STREAM S [NOW-"PT1S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration
            WHERE { ?a a sie:Assembly }
            SEQUENCE BY StdSeq AS seq
            HAVING EXISTS ?k IN seq: GRAPH ?k { sie:x sie:hasValue ?v }
        "#;
        let q = parse_starql(text, &ns).unwrap();
        let onto = ontology();
        let maps = mappings();
        let ctx = TranslationContext {
            ontology: &onto,
            mappings: &maps,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        assert!(translate(&q, &ctx).is_err());
    }
}
