//! `xsd:duration` and wall-clock literals, in milliseconds.

/// Parses an ISO-8601 duration of the `PnDTnHnMnS` family into milliseconds.
/// Supports the units STARQL windows use: days, hours, minutes, seconds
/// (with fractional seconds). Examples: `PT10S`, `PT1M`, `PT0.5S`, `P1D`,
/// `P1DT2H30M`.
pub fn parse_duration_ms(text: &str) -> Result<i64, String> {
    let rest = text
        .strip_prefix('P')
        .ok_or_else(|| format!("duration {text:?} must start with 'P'"))?;
    let (date_part, time_part) = match rest.split_once('T') {
        Some((d, t)) => (d, t),
        None => (rest, ""),
    };
    let mut total_ms: i64 = 0;
    let mut parse_components = |part: &str, units: &[(char, i64)]| -> Result<(), String> {
        let mut num = String::new();
        for c in part.chars() {
            if c.is_ascii_digit() || c == '.' {
                num.push(c);
            } else {
                let (_, factor) = units
                    .iter()
                    .find(|(u, _)| *u == c)
                    .ok_or_else(|| format!("unexpected unit {c:?} in duration {text:?}"))?;
                let value: f64 = num
                    .parse()
                    .map_err(|_| format!("bad number {num:?} in duration {text:?}"))?;
                total_ms += (value * *factor as f64).round() as i64;
                num.clear();
            }
        }
        if !num.is_empty() {
            return Err(format!("trailing digits without unit in duration {text:?}"));
        }
        Ok(())
    };
    parse_components(date_part, &[('D', 86_400_000)])?;
    parse_components(time_part, &[('H', 3_600_000), ('M', 60_000), ('S', 1_000)])?;
    if total_ms == 0 && date_part.is_empty() && time_part.is_empty() {
        return Err(format!("empty duration {text:?}"));
    }
    Ok(total_ms)
}

/// Parses a wall-clock literal `HH:MM:SS` (with an optional trailing
/// timezone tag like `CET`, which is recorded but ignored — the simulated
/// cluster runs on a single logical clock) into milliseconds since midnight.
pub fn parse_clock_ms(text: &str) -> Result<i64, String> {
    let digits_end = text
        .find(|c: char| !(c.is_ascii_digit() || c == ':'))
        .unwrap_or(text.len());
    let clock = &text[..digits_end];
    let parts: Vec<&str> = clock.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("clock literal {text:?} must be HH:MM:SS"));
    }
    let h: i64 = parts[0]
        .parse()
        .map_err(|_| format!("bad hours in {text:?}"))?;
    let m: i64 = parts[1]
        .parse()
        .map_err(|_| format!("bad minutes in {text:?}"))?;
    let s: i64 = parts[2]
        .parse()
        .map_err(|_| format!("bad seconds in {text:?}"))?;
    if !(0..24).contains(&h) || !(0..60).contains(&m) || !(0..60).contains(&s) {
        return Err(format!("clock literal {text:?} out of range"));
    }
    Ok(((h * 60 + m) * 60 + s) * 1_000)
}

/// Renders milliseconds as a compact ISO duration (for AST display).
pub fn format_duration_ms(ms: i64) -> String {
    if ms % 1_000 != 0 {
        return format!("PT{}.{:03}S", ms / 1_000, ms % 1_000);
    }
    let s = ms / 1_000;
    if s % 3_600 == 0 && s >= 3_600 {
        format!("PT{}H", s / 3_600)
    } else if s % 60 == 0 && s >= 60 {
        format!("PT{}M", s / 60)
    } else {
        format!("PT{s}S")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_durations() {
        assert_eq!(parse_duration_ms("PT10S").unwrap(), 10_000);
        assert_eq!(parse_duration_ms("PT1S").unwrap(), 1_000);
        assert_eq!(parse_duration_ms("PT1M").unwrap(), 60_000);
        assert_eq!(parse_duration_ms("PT2H").unwrap(), 7_200_000);
        assert_eq!(parse_duration_ms("P1D").unwrap(), 86_400_000);
    }

    #[test]
    fn compound_durations() {
        assert_eq!(
            parse_duration_ms("P1DT2H30M").unwrap(),
            86_400_000 + 9_000_000
        );
        assert_eq!(parse_duration_ms("PT1M30S").unwrap(), 90_000);
    }

    #[test]
    fn fractional_seconds() {
        assert_eq!(parse_duration_ms("PT0.5S").unwrap(), 500);
        assert_eq!(parse_duration_ms("PT1.25S").unwrap(), 1_250);
    }

    #[test]
    fn bad_durations() {
        assert!(parse_duration_ms("10S").is_err());
        assert!(parse_duration_ms("PT10").is_err());
        assert!(parse_duration_ms("PT10X").is_err());
    }

    #[test]
    fn clock_literals() {
        assert_eq!(parse_clock_ms("00:10:00CET").unwrap(), 600_000);
        assert_eq!(parse_clock_ms("01:00:00").unwrap(), 3_600_000);
        assert_eq!(parse_clock_ms("23:59:59UTC").unwrap(), 86_399_000);
    }

    #[test]
    fn bad_clock_literals() {
        assert!(parse_clock_ms("25:00:00").is_err());
        assert!(parse_clock_ms("12:00").is_err());
        assert!(parse_clock_ms("aa:bb:cc").is_err());
    }

    #[test]
    fn format_roundtrip() {
        for ms in [1_000, 10_000, 60_000, 3_600_000, 500, 90_000] {
            let text = format_duration_ms(ms);
            assert_eq!(parse_duration_ms(&text).unwrap(), ms, "through {text}");
        }
    }
}
