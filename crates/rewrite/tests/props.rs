//! Property test: PerfectRef rewriting is sound and complete w.r.t. the
//! materialization oracle on generated hierarchy TBoxes and ABoxes.

use optique_ontology::materialize::materialize;
use optique_ontology::{Axiom, BasicConcept, Ontology};
use optique_rdf::{Graph, Iri, Term, Triple};
use optique_rewrite::{rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings};
use proptest::prelude::*;

fn class(i: usize) -> Iri {
    Iri::new(format!("http://x/C{i}"))
}

fn prop_iri(i: usize) -> Iri {
    Iri::new(format!("http://x/p{i}"))
}

fn individual(i: usize) -> Term {
    Term::iri(format!("http://x/ind/{i}"))
}

/// An acyclic TBox: subclass edges only from higher to lower ids, plus
/// domain/range axioms — the existential-free fragment where a depth-0
/// chase is complete, making the oracle exact.
fn arb_tbox() -> impl Strategy<Value = Ontology> {
    (
        proptest::collection::vec((0usize..6, 0usize..6), 0..8),
        proptest::collection::vec((0usize..3, 0usize..6, 0usize..6), 0..4),
    )
        .prop_map(|(sub_edges, dr)| {
            let mut o = Ontology::new();
            for (a, b) in sub_edges {
                if a != b {
                    // Orient edges to avoid cycles (harmless either way, but
                    // keeps taxonomies realistic).
                    let (sub, sup) = (a.max(b), a.min(b));
                    o.add_axiom(Axiom::subclass(
                        BasicConcept::Atomic(class(sub)),
                        BasicConcept::Atomic(class(sup)),
                    ));
                }
            }
            for (p, d, r) in dr {
                o.add_axiom(Axiom::domain(prop_iri(p), BasicConcept::Atomic(class(d))));
                o.add_axiom(Axiom::range(prop_iri(p), BasicConcept::Atomic(class(r))));
            }
            o
        })
}

fn arb_abox() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec((0usize..8, 0usize..6), 0..15),
        proptest::collection::vec((0usize..8, 0usize..3, 0usize..8), 0..15),
    )
        .prop_map(|(memberships, edges)| {
            let mut g = Graph::new();
            for (ind, c) in memberships {
                g.insert(Triple::class_assertion(individual(ind), class(c)));
            }
            for (s, p, o) in edges {
                g.insert(Triple::new(individual(s), prop_iri(p), individual(o)));
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// evaluate(rewrite(q, T), A) == evaluate(q, materialize(A, T)).
    #[test]
    fn rewriting_agrees_with_materialization(
        tbox in arb_tbox(),
        abox in arb_abox(),
        queried in 0usize..6,
    ) {
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(class(queried), QueryTerm::var("x"))],
        );
        let (ucq, _) = rewrite(&q, &tbox, &RewriteSettings::default()).unwrap();
        let via_rewriting = ucq.evaluate(&abox);

        let mut saturated = abox.clone();
        materialize(&mut saturated, &tbox, 0);
        let via_oracle = q.evaluate(&saturated);

        prop_assert_eq!(via_rewriting, via_oracle);
    }

    /// Same agreement for a join query over a property atom.
    #[test]
    fn join_query_agrees_with_materialization(
        tbox in arb_tbox(),
        abox in arb_abox(),
        queried_class in 0usize..6,
        queried_prop in 0usize..3,
    ) {
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "y".into()],
            vec![
                Atom::class(class(queried_class), QueryTerm::var("x")),
                Atom::property(prop_iri(queried_prop), QueryTerm::var("x"), QueryTerm::var("y")),
            ],
        );
        let (ucq, _) = rewrite(&q, &tbox, &RewriteSettings::default()).unwrap();
        let via_rewriting = ucq.evaluate(&abox);

        let mut saturated = abox.clone();
        materialize(&mut saturated, &tbox, 0);
        let via_oracle = q.evaluate(&saturated);

        prop_assert_eq!(via_rewriting, via_oracle);
    }
}
