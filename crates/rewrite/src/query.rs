//! Conjunctive queries over ontology vocabulary.
//!
//! Queries here are the *ontological* half of STARQL: the WHERE clause and
//! the graph patterns inside HAVING are basic graph patterns, i.e.
//! conjunctive queries whose predicates are ontology classes and properties.
//! Role atoms are normalised to named properties (an inverse-role atom
//! `P⁻(x, y)` is stored as `P(y, x)`), which keeps unification and SQL
//! unfolding simple.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use optique_rdf::{Graph, Iri, Term, TriplePattern};

/// A term inside a query atom: a variable or an RDF constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum QueryTerm {
    /// A named variable (no leading `?` in the stored name).
    Var(String),
    /// A constant RDF term.
    Const(Term),
}

impl QueryTerm {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Self {
        QueryTerm::Var(name.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            QueryTerm::Var(v) => Some(v),
            QueryTerm::Const(_) => None,
        }
    }
}

impl fmt::Display for QueryTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryTerm::Var(v) => write!(f, "?{v}"),
            QueryTerm::Const(t) => write!(f, "{t}"),
        }
    }
}

/// A query atom: class membership or a (named) property between two terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Atom {
    /// `C(arg)` — `arg rdf:type C`.
    Class {
        /// The class IRI.
        class: Iri,
        /// The single argument.
        arg: QueryTerm,
    },
    /// `P(subject, object)` — `subject P object`.
    Property {
        /// The (always named) property IRI.
        property: Iri,
        /// Subject position.
        subject: QueryTerm,
        /// Object position.
        object: QueryTerm,
    },
}

impl Atom {
    /// Class-membership atom.
    pub fn class(class: impl Into<Iri>, arg: QueryTerm) -> Self {
        Atom::Class {
            class: class.into(),
            arg,
        }
    }

    /// Property atom.
    pub fn property(property: impl Into<Iri>, subject: QueryTerm, object: QueryTerm) -> Self {
        Atom::Property {
            property: property.into(),
            subject,
            object,
        }
    }

    /// The terms of the atom, in positional order.
    pub fn terms(&self) -> Vec<&QueryTerm> {
        match self {
            Atom::Class { arg, .. } => vec![arg],
            Atom::Property {
                subject, object, ..
            } => vec![subject, object],
        }
    }

    fn map_terms(&self, f: &mut impl FnMut(&QueryTerm) -> QueryTerm) -> Atom {
        match self {
            Atom::Class { class, arg } => Atom::Class {
                class: class.clone(),
                arg: f(arg),
            },
            Atom::Property {
                property,
                subject,
                object,
            } => Atom::Property {
                property: property.clone(),
                subject: f(subject),
                object: f(object),
            },
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Class { class, arg } => write!(f, "{class}({arg})"),
            Atom::Property {
                property,
                subject,
                object,
            } => {
                write!(f, "{property}({subject}, {object})")
            }
        }
    }
}

/// A conjunctive query: `q(answer_vars) ← atom₁ ∧ … ∧ atomₙ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    /// Distinguished (answer) variables, in output order.
    pub answer_vars: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a query; answer variables not occurring in the body are
    /// permitted (they simply never bind).
    pub fn new(answer_vars: Vec<String>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { answer_vars, atoms }
    }

    /// Occurrence count of every variable in the body.
    pub fn var_occurrences(&self) -> HashMap<&str, usize> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for atom in &self.atoms {
            for term in atom.terms() {
                if let Some(v) = term.as_var() {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// A term is *bound* when it is a constant, a distinguished variable, or
    /// a variable shared between atom positions — the PerfectRef
    /// applicability condition.
    pub fn is_bound(&self, term: &QueryTerm) -> bool {
        match term {
            QueryTerm::Const(_) => true,
            QueryTerm::Var(v) => {
                self.answer_vars.iter().any(|a| a == v)
                    || self.var_occurrences().get(v.as_str()).copied().unwrap_or(0) > 1
            }
        }
    }

    /// Applies a variable substitution to the whole body, dropping duplicate
    /// atoms that the substitution creates.
    pub fn substitute(&self, subst: &HashMap<String, QueryTerm>) -> ConjunctiveQuery {
        let mut f = |t: &QueryTerm| match t {
            QueryTerm::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
            QueryTerm::Const(_) => t.clone(),
        };
        let mut seen = BTreeSet::new();
        let atoms = self
            .atoms
            .iter()
            .map(|a| a.map_terms(&mut f))
            .filter(|a| seen.insert(a.clone()))
            .collect();
        ConjunctiveQuery {
            answer_vars: self.answer_vars.clone(),
            atoms,
        }
    }

    /// A canonical string key: variables renamed by first occurrence over
    /// sorted atoms, so α-equivalent queries share a key. Used to deduplicate
    /// the rewriting frontier.
    pub fn canonical_key(&self) -> String {
        let mut atoms = self.atoms.clone();
        atoms.sort();
        let mut renaming: BTreeMap<String, String> = BTreeMap::new();
        for v in &self.answer_vars {
            renaming.insert(v.clone(), v.clone());
        }
        let mut next = 0usize;
        let mut out = String::new();
        for atom in &atoms {
            let rendered = atom.map_terms(&mut |t| match t {
                QueryTerm::Var(v) => {
                    let name = renaming.entry(v.clone()).or_insert_with(|| {
                        next += 1;
                        format!("_e{next}")
                    });
                    QueryTerm::Var(name.clone())
                }
                QueryTerm::Const(_) => t.clone(),
            });
            out.push_str(&rendered.to_string());
            out.push(';');
        }
        // Re-sort after renaming so names don't leak ordering differences.
        let mut parts: Vec<&str> = out.split_terminator(';').collect();
        parts.sort_unstable();
        format!("{}|{}", self.answer_vars.join(","), parts.join(";"))
    }

    /// Evaluates the query over an RDF graph by backtracking join, returning
    /// distinct answer tuples (one [`Term`] per answer variable).
    ///
    /// This is the "ABox" evaluation path used for STATIC DATA graphs and as
    /// the rewriting test oracle; bulk relational evaluation goes through
    /// unfolding instead.
    pub fn evaluate(&self, graph: &Graph) -> BTreeSet<Vec<Term>> {
        let mut results = BTreeSet::new();
        let mut binding: HashMap<String, Term> = HashMap::new();
        self.eval_rec(graph, 0, &mut binding, &mut results);
        results
    }

    fn eval_rec(
        &self,
        graph: &Graph,
        idx: usize,
        binding: &mut HashMap<String, Term>,
        results: &mut BTreeSet<Vec<Term>>,
    ) {
        if idx == self.atoms.len() {
            let tuple: Vec<Term> = self
                .answer_vars
                .iter()
                .map(|v| {
                    binding
                        .get(v)
                        .cloned()
                        .unwrap_or_else(|| Term::Literal(optique_rdf::Literal::string("")))
                })
                .collect();
            results.insert(tuple);
            return;
        }
        let atom = &self.atoms[idx];
        let (pattern, positions) = self.atom_pattern(atom, binding);
        for triple in graph.matching(&pattern) {
            let mut newly_bound: Vec<String> = Vec::new();
            let mut ok = true;
            for (var, value) in positions.iter().zip(triple_terms(&triple, atom)) {
                let Some(var) = var else { continue };
                match binding.get(var) {
                    Some(existing) if existing != &value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        binding.insert(var.clone(), value);
                        newly_bound.push(var.clone());
                    }
                }
            }
            if ok {
                self.eval_rec(graph, idx + 1, binding, results);
            }
            for var in newly_bound {
                binding.remove(&var);
            }
        }
    }

    /// Builds the triple pattern for an atom under the current bindings and
    /// reports which variable (if any) each matched position binds.
    fn atom_pattern(
        &self,
        atom: &Atom,
        binding: &HashMap<String, Term>,
    ) -> (TriplePattern, Vec<Option<String>>) {
        let resolve = |t: &QueryTerm| -> (Option<Term>, Option<String>) {
            match t {
                QueryTerm::Const(c) => (Some(c.clone()), None),
                QueryTerm::Var(v) => match binding.get(v) {
                    Some(val) => (Some(val.clone()), None),
                    None => (None, Some(v.clone())),
                },
            }
        };
        match atom {
            Atom::Class { class, arg } => {
                let (bound, var) = resolve(arg);
                let mut pattern = TriplePattern::any()
                    .with_predicate(Iri::new(optique_rdf::vocab::rdf::TYPE))
                    .with_object(Term::Iri(class.clone()));
                if let Some(subject) = bound {
                    pattern = pattern.with_subject(subject);
                }
                (pattern, vec![var])
            }
            Atom::Property {
                property,
                subject,
                object,
            } => {
                let (s_bound, s_var) = resolve(subject);
                let (o_bound, o_var) = resolve(object);
                let mut pattern = TriplePattern::any().with_predicate(property.clone());
                if let Some(s) = s_bound {
                    pattern = pattern.with_subject(s);
                }
                if let Some(o) = o_bound {
                    pattern = pattern.with_object(o);
                }
                (pattern, vec![s_var, o_var])
            }
        }
    }
}

fn triple_terms(triple: &optique_rdf::Triple, atom: &Atom) -> Vec<Term> {
    match atom {
        Atom::Class { .. } => vec![triple.subject.clone()],
        Atom::Property { .. } => vec![triple.subject.clone(), triple.object.clone()],
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{v}")?;
        }
        write!(f, ") ← ")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries — the output shape of enrichment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionQuery {
    /// Disjuncts sharing the same answer signature.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Wraps a single CQ.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionQuery {
            disjuncts: vec![cq],
        }
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True when there are no disjuncts.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Evaluates all disjuncts over a graph and unions the answers.
    pub fn evaluate(&self, graph: &Graph) -> BTreeSet<Vec<Term>> {
        let mut out = BTreeSet::new();
        for cq in &self.disjuncts {
            out.extend(cq.evaluate(graph));
        }
        out
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cq) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f, " ∪")?;
            }
            write!(f, "{cq}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_rdf::{Literal, Triple};

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("Sensor"),
        ));
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s2"),
            iri("Sensor"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s1"),
            iri("inAssembly"),
            Term::iri("http://x/a1"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s2"),
            iri("inAssembly"),
            Term::iri("http://x/a2"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s1"),
            iri("hasValue"),
            Term::Literal(Literal::double(91.0)),
        ));
        g
    }

    #[test]
    fn single_atom_evaluation() {
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Sensor"), QueryTerm::var("x"))],
        );
        assert_eq!(q.evaluate(&graph()).len(), 2);
    }

    #[test]
    fn join_evaluation() {
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "a".into()],
            vec![
                Atom::class(iri("Sensor"), QueryTerm::var("x")),
                Atom::property(iri("inAssembly"), QueryTerm::var("x"), QueryTerm::var("a")),
            ],
        );
        let ans = q.evaluate(&graph());
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![Term::iri("http://x/s1"), Term::iri("http://x/a1")]));
    }

    #[test]
    fn constant_filters() {
        let q = ConjunctiveQuery::new(
            vec!["a".into()],
            vec![Atom::property(
                iri("inAssembly"),
                QueryTerm::Const(Term::iri("http://x/s1")),
                QueryTerm::var("a"),
            )],
        );
        let ans = q.evaluate(&graph());
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn shared_var_must_agree() {
        // x must both be a Sensor and have a value: only s1 qualifies.
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                Atom::class(iri("Sensor"), QueryTerm::var("x")),
                Atom::property(iri("hasValue"), QueryTerm::var("x"), QueryTerm::var("v")),
            ],
        );
        assert_eq!(q.evaluate(&graph()).len(), 1);
    }

    #[test]
    fn boundness() {
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("inAssembly"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        assert!(q.is_bound(&QueryTerm::var("x")), "answer var is bound");
        assert!(
            !q.is_bound(&QueryTerm::var("y")),
            "single-occurrence existential is unbound"
        );
        assert!(q.is_bound(&QueryTerm::Const(Term::iri("http://x/c"))));
    }

    #[test]
    fn substitution_dedups_atoms() {
        let q = ConjunctiveQuery::new(
            vec![],
            vec![
                Atom::class(iri("A"), QueryTerm::var("x")),
                Atom::class(iri("A"), QueryTerm::var("y")),
            ],
        );
        let mut s = HashMap::new();
        s.insert("y".to_string(), QueryTerm::var("x"));
        assert_eq!(q.substitute(&s).atoms.len(), 1);
    }

    #[test]
    fn canonical_key_alpha_invariant() {
        let q1 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let q2 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("z"),
            )],
        );
        assert_eq!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_shapes() {
        let q1 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let q2 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("x"),
            )],
        );
        assert_ne!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn union_evaluation_unions() {
        let q1 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Sensor"), QueryTerm::var("x"))],
        );
        let q2 = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("hasValue"),
                QueryTerm::var("x"),
                QueryTerm::var("v"),
            )],
        );
        let u = UnionQuery {
            disjuncts: vec![q1, q2],
        };
        assert_eq!(
            u.evaluate(&graph()).len(),
            2,
            "s1 appears once despite matching twice"
        );
    }
}
