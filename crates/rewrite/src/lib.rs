//! Query **enrichment** for Optique: PerfectRef-style rewriting of
//! conjunctive queries with respect to an OWL 2 QL TBox.
//!
//! Enrichment is stage (i) of OBSSDI query evaluation: "the ontological query
//! is automatically reformulated with the help of axioms in another
//! ontological query in order to access as much of relevant data as
//! possible". For OWL 2 QL that reformulation is the classical *PerfectRef*
//! algorithm: the output is a union of conjunctive queries (UCQ) whose
//! answers over the raw data coincide with the certain answers of the
//! original query over data + ontology. The paper's complexity claim —
//! enrichment is polynomial in ontology size — is exercised directly by the
//! `enrichment_scaling` bench.
//!
//! * [`query`] — the conjunctive-query model over ontology vocabulary, with
//!   canonicalization and direct evaluation over RDF graphs (the test
//!   oracle's other half),
//! * [`perfectref`] — the rewriter plus subsumption-based redundancy
//!   elimination.

pub mod perfectref;
pub mod query;

pub use perfectref::{rewrite, RewriteSettings, RewriteStats};
pub use query::{Atom, ConjunctiveQuery, QueryTerm, UnionQuery};
