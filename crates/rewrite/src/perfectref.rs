//! PerfectRef-style rewriting (Calvanese et al., the Ontop/Mastro lineage the
//! paper cites as the static-OBDA baseline) plus redundancy elimination.
//!
//! The algorithm alternates two steps until a fixpoint:
//!
//! 1. **Atom rewriting** — for every query in the frontier, every atom, and
//!    every applicable TBox inclusion, replace the atom by the axiom's
//!    left-hand side.
//! 2. **Reduction** — unify pairs of unifiable atoms; unification can turn a
//!    bound variable unbound, enabling further atom rewritings.
//!
//! The result is a UCQ equivalent (w.r.t. certain answers) to the input over
//! any data source. Subsumption-based pruning keeps the union small: a
//! disjunct is dropped when a homomorphism from another disjunct into it
//! fixes the answer variables.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::time::Instant;

use optique_ontology::{BasicConcept, Ontology, Role};

use crate::query::{Atom, ConjunctiveQuery, QueryTerm, UnionQuery};

/// Rewriter knobs; the defaults match the paper's configuration.
#[derive(Clone, Copy, Debug)]
pub struct RewriteSettings {
    /// Apply subsumption-based redundancy elimination to the output UCQ.
    /// Disabling it is the ablation in the `enrichment_scaling` bench.
    pub eliminate_subsumed: bool,
    /// Safety valve on the number of produced disjuncts. The theoretical
    /// bound is polynomial in the TBox for a fixed query, but adversarial
    /// inputs in tests deserve a crisp error instead of an OOM.
    pub max_disjuncts: usize,
}

impl Default for RewriteSettings {
    fn default() -> Self {
        RewriteSettings {
            eliminate_subsumed: true,
            max_disjuncts: 100_000,
        }
    }
}

/// Observability record for one enrichment run (feeds the E4 bench tables).
#[derive(Clone, Debug)]
pub struct RewriteStats {
    /// Disjuncts produced before redundancy elimination.
    pub generated: usize,
    /// Disjuncts surviving redundancy elimination.
    pub retained: usize,
    /// Fixpoint iterations of the rewrite/reduce loop.
    pub iterations: usize,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
}

/// Errors from rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The disjunct budget in [`RewriteSettings::max_disjuncts`] was hit.
    TooManyDisjuncts(usize),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::TooManyDisjuncts(n) => {
                write!(f, "rewriting exceeded the disjunct budget of {n}")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Rewrites `query` with respect to `ontology`, returning the enriched UCQ
/// and run statistics.
pub fn rewrite(
    query: &ConjunctiveQuery,
    ontology: &Ontology,
    settings: &RewriteSettings,
) -> Result<(UnionQuery, RewriteStats), RewriteError> {
    let start = Instant::now();
    let mut seen: HashSet<String> = HashSet::new();
    let mut output: Vec<ConjunctiveQuery> = Vec::new();
    let mut frontier: VecDeque<ConjunctiveQuery> = VecDeque::new();
    let mut fresh_counter = 0usize;
    let mut iterations = 0usize;

    seen.insert(query.canonical_key());
    output.push(query.clone());
    frontier.push_back(query.clone());

    while let Some(current) = frontier.pop_front() {
        iterations += 1;
        let mut candidates: Vec<ConjunctiveQuery> = Vec::new();

        // Step (a): atom rewriting by applicable inclusion axioms.
        for (idx, atom) in current.atoms.iter().enumerate() {
            for replacement in applicable_rewritings(atom, &current, ontology, &mut fresh_counter) {
                let mut atoms = current.atoms.clone();
                atoms[idx] = replacement;
                candidates.push(dedup_atoms(ConjunctiveQuery {
                    answer_vars: current.answer_vars.clone(),
                    atoms,
                }));
            }
        }

        // Step (b): reduction — unify pairs of atoms.
        for i in 0..current.atoms.len() {
            for j in (i + 1)..current.atoms.len() {
                if let Some(subst) = unify(&current.atoms[i], &current.atoms[j], &current) {
                    candidates.push(current.substitute(&subst));
                }
            }
        }

        for cand in candidates {
            let key = cand.canonical_key();
            if seen.insert(key) {
                if output.len() >= settings.max_disjuncts {
                    return Err(RewriteError::TooManyDisjuncts(settings.max_disjuncts));
                }
                output.push(cand.clone());
                frontier.push_back(cand);
            }
        }
    }

    let generated = output.len();
    let retained_queries = if settings.eliminate_subsumed {
        eliminate_subsumed(output)
    } else {
        output
    };
    let stats = RewriteStats {
        generated,
        retained: retained_queries.len(),
        iterations,
        elapsed: start.elapsed(),
    };
    Ok((
        UnionQuery {
            disjuncts: retained_queries,
        },
        stats,
    ))
}

fn dedup_atoms(mut cq: ConjunctiveQuery) -> ConjunctiveQuery {
    let mut seen = HashSet::new();
    cq.atoms.retain(|a| seen.insert(a.clone()));
    cq
}

/// All single-atom rewritings licensed by the TBox for `atom` within `cq`.
fn applicable_rewritings(
    atom: &Atom,
    cq: &ConjunctiveQuery,
    ontology: &Ontology,
    fresh: &mut usize,
) -> Vec<Atom> {
    let mut out = Vec::new();
    match atom {
        Atom::Class { class, arg } => {
            let target = BasicConcept::Atomic(class.clone());
            for sub in ontology.direct_sub_concepts(&target) {
                out.push(concept_to_atom(sub, arg.clone(), fresh));
            }
        }
        Atom::Property {
            property,
            subject,
            object,
        } => {
            // Role inclusions apply unconditionally.
            let named = Role::Named(property.clone());
            for sub in ontology.direct_sub_roles(&named) {
                out.push(match sub {
                    Role::Named(p) => Atom::property(p.clone(), subject.clone(), object.clone()),
                    Role::Inverse(p) => Atom::property(p.clone(), object.clone(), subject.clone()),
                });
            }
            // Concept inclusions into ∃P apply when the object is unbound…
            if !cq.is_bound(object) {
                let target = BasicConcept::Exists(named.clone());
                for sub in ontology.direct_sub_concepts(&target) {
                    out.push(concept_to_atom(sub, subject.clone(), fresh));
                }
            }
            // …and into ∃P⁻ when the subject is unbound.
            if !cq.is_bound(subject) {
                let target = BasicConcept::Exists(named.inverse());
                for sub in ontology.direct_sub_concepts(&target) {
                    out.push(concept_to_atom(sub, object.clone(), fresh));
                }
            }
        }
    }
    out
}

/// Materialises a basic concept as an atom about `arg`, minting a fresh
/// non-shared variable for the existential partner position.
fn concept_to_atom(concept: &BasicConcept, arg: QueryTerm, fresh: &mut usize) -> Atom {
    match concept {
        BasicConcept::Atomic(class) => Atom::class(class.clone(), arg),
        BasicConcept::Exists(Role::Named(p)) => {
            *fresh += 1;
            Atom::property(p.clone(), arg, QueryTerm::var(format!("_u{fresh}")))
        }
        BasicConcept::Exists(Role::Inverse(p)) => {
            *fresh += 1;
            Atom::property(p.clone(), QueryTerm::var(format!("_u{fresh}")), arg)
        }
    }
}

/// Most-general unifier of two atoms within `cq`, as a variable substitution.
/// Constants are rigid; distinguished variables may only be unified with
/// terms, never renamed away (we orient every pair so the kept side is the
/// distinguished or constant one).
fn unify(a: &Atom, b: &Atom, cq: &ConjunctiveQuery) -> Option<HashMap<String, QueryTerm>> {
    let pairs: Vec<(QueryTerm, QueryTerm)> = match (a, b) {
        (Atom::Class { class: c1, arg: x1 }, Atom::Class { class: c2, arg: x2 }) => {
            if c1 != c2 {
                return None;
            }
            vec![(x1.clone(), x2.clone())]
        }
        (
            Atom::Property {
                property: p1,
                subject: s1,
                object: o1,
            },
            Atom::Property {
                property: p2,
                subject: s2,
                object: o2,
            },
        ) => {
            if p1 != p2 {
                return None;
            }
            vec![(s1.clone(), s2.clone()), (o1.clone(), o2.clone())]
        }
        _ => return None,
    };

    let mut subst: HashMap<String, QueryTerm> = HashMap::new();
    let resolve = |t: &QueryTerm, subst: &HashMap<String, QueryTerm>| -> QueryTerm {
        let mut cur = t.clone();
        while let QueryTerm::Var(v) = &cur {
            match subst.get(v) {
                Some(next) if next != &cur => cur = next.clone(),
                _ => break,
            }
        }
        cur
    };
    for (l, r) in pairs {
        let l = resolve(&l, &subst);
        let r = resolve(&r, &subst);
        if l == r {
            continue;
        }
        let is_answer = |t: &QueryTerm| {
            t.as_var()
                .is_some_and(|v| cq.answer_vars.iter().any(|a| a == v))
        };
        match (&l, &r) {
            (QueryTerm::Const(_), QueryTerm::Const(_)) => return None,
            (QueryTerm::Var(v), _) if !is_answer(&l) => {
                subst.insert(v.clone(), r);
            }
            (_, QueryTerm::Var(v)) if !is_answer(&r) => {
                subst.insert(v.clone(), l);
            }
            // Both remaining positions are answer variables (or an answer
            // variable against a constant). Substituting would remove an
            // answer variable from the body, making it unbound in the
            // reduced query — unsound. Skip this reduction; the original
            // disjunct already covers these answers.
            _ => return None,
        }
    }
    if subst.is_empty() {
        None
    } else {
        Some(subst)
    }
}

/// Drops disjuncts subsumed by a more general disjunct: `q` subsumes `q'`
/// when a homomorphism maps `q`'s atoms into `q'`'s fixing answer variables.
fn eliminate_subsumed(queries: Vec<ConjunctiveQuery>) -> Vec<ConjunctiveQuery> {
    let mut keep: Vec<bool> = vec![true; queries.len()];
    for i in 0..queries.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..queries.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Prefer keeping the smaller query; on ties keep the earlier one.
            let (small, large, large_idx) = if queries[i].atoms.len() <= queries[j].atoms.len() {
                (&queries[i], &queries[j], j)
            } else {
                (&queries[j], &queries[i], i)
            };
            if large_idx == i && !keep[j] {
                continue;
            }
            if subsumes(small, large) {
                keep[large_idx] = false;
                if large_idx == i {
                    break;
                }
            }
        }
    }
    queries
        .into_iter()
        .zip(keep)
        .filter_map(|(q, k)| k.then_some(q))
        .collect()
}

/// Homomorphism check: does `general` map into `specific` fixing answer vars?
fn subsumes(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    if general.answer_vars != specific.answer_vars {
        return false;
    }
    let mut mapping: BTreeMap<String, QueryTerm> = BTreeMap::new();
    for v in &general.answer_vars {
        mapping.insert(v.clone(), QueryTerm::var(v.clone()));
    }
    hom_search(general, specific, 0, &mut mapping)
}

fn hom_search(
    general: &ConjunctiveQuery,
    specific: &ConjunctiveQuery,
    idx: usize,
    mapping: &mut BTreeMap<String, QueryTerm>,
) -> bool {
    if idx == general.atoms.len() {
        return true;
    }
    let atom = &general.atoms[idx];
    for target in &specific.atoms {
        let pairs: Vec<(&QueryTerm, &QueryTerm)> = match (atom, target) {
            (Atom::Class { class: c1, arg: a1 }, Atom::Class { class: c2, arg: a2 })
                if c1 == c2 =>
            {
                vec![(a1, a2)]
            }
            (
                Atom::Property {
                    property: p1,
                    subject: s1,
                    object: o1,
                },
                Atom::Property {
                    property: p2,
                    subject: s2,
                    object: o2,
                },
            ) if p1 == p2 => vec![(s1, s2), (o1, o2)],
            _ => continue,
        };
        let mut added: Vec<String> = Vec::new();
        let mut ok = true;
        for (from, to) in pairs {
            match from {
                QueryTerm::Const(_) => {
                    if from != to {
                        ok = false;
                        break;
                    }
                }
                QueryTerm::Var(v) => match mapping.get(v) {
                    Some(existing) if existing != to => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        mapping.insert(v.clone(), to.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        if ok && hom_search(general, specific, idx + 1, mapping) {
            return true;
        }
        for v in added {
            mapping.remove(&v);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use optique_ontology::Axiom;
    use optique_rdf::Iri;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn atomic(s: &str) -> BasicConcept {
        BasicConcept::atomic(iri(s))
    }

    fn settings() -> RewriteSettings {
        RewriteSettings::default()
    }

    #[test]
    fn class_hierarchy_expands() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("TempSensor"), atomic("Sensor")));
        o.add_axiom(Axiom::subclass(atomic("PressureSensor"), atomic("Sensor")));
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Sensor"), QueryTerm::var("x"))],
        );
        let (ucq, stats) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 3, "original + two subclasses");
        assert_eq!(stats.retained, 3);
    }

    #[test]
    fn domain_axiom_rewrites_class_to_role() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::domain(iri("inAssembly"), atomic("Sensor")));
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Sensor"), QueryTerm::var("x"))],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 2);
        let has_role = ucq.disjuncts.iter().any(|cq| {
            cq.atoms.iter().any(
                |a| matches!(a, Atom::Property { property, .. } if property == &iri("inAssembly")),
            )
        });
        assert!(has_role);
    }

    #[test]
    fn mandatory_participation_rewrites_role_to_class() {
        // A ⊑ ∃p: query p(x, y) with y unbound rewrites to A(x).
        let mut o = Ontology::new();
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert!(ucq.disjuncts.iter().any(|cq| cq
            .atoms
            .contains(&Atom::class(iri("A"), QueryTerm::var("x")))));
    }

    #[test]
    fn bound_object_blocks_concept_rewriting() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        // y is distinguished, so p(x, y) may NOT be rewritten to A(x).
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "y".into()],
            vec![Atom::property(
                iri("p"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 1, "no rewriting applicable");
    }

    #[test]
    fn role_hierarchy_expands() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subrole(
            Role::named(iri("partOf")),
            Role::named(iri("locatedIn")),
        ));
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "y".into()],
            vec![Atom::property(
                iri("locatedIn"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 2);
    }

    #[test]
    fn inverse_role_inclusion_swaps_positions() {
        let mut o = Ontology::new();
        for ax in Axiom::inverse_properties(iri("hasPart"), iri("partOf")) {
            o.add_axiom(ax);
        }
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "y".into()],
            vec![Atom::property(
                iri("hasPart"),
                QueryTerm::var("x"),
                QueryTerm::var("y"),
            )],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert!(ucq
            .disjuncts
            .iter()
            .any(|cq| cq.atoms.contains(&Atom::property(
                iri("partOf"),
                QueryTerm::var("y"),
                QueryTerm::var("x")
            ))));
    }

    #[test]
    fn reduction_enables_further_rewriting() {
        // Classic PerfectRef example: q(x) ← p(x,y) ∧ p(z,y) — reduce unifies
        // the two atoms (making y unbound), then A ⊑ ∃p applies.
        let mut o = Ontology::new();
        o.add_axiom(Axiom::SubClass {
            sub: atomic("A"),
            sup: BasicConcept::exists(iri("p")),
        });
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                Atom::property(iri("p"), QueryTerm::var("x"), QueryTerm::var("y")),
                Atom::property(iri("p"), QueryTerm::var("z"), QueryTerm::var("y")),
            ],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert!(ucq.disjuncts.iter().any(|cq| cq
            .atoms
            .contains(&Atom::class(iri("A"), QueryTerm::var("x")))));
    }

    #[test]
    fn subsumption_elimination_prunes() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("B"), atomic("A")));
        // q(x) ← A(x) ∧ B(x): rewriting A→B yields q(x) ← B(x), which
        // subsumes the original (hom B(x)→B(x)).
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                Atom::class(iri("A"), QueryTerm::var("x")),
                Atom::class(iri("B"), QueryTerm::var("x")),
            ],
        );
        let (with, _) = rewrite(&q, &o, &settings()).unwrap();
        let (without, _) = rewrite(
            &q,
            &o,
            &RewriteSettings {
                eliminate_subsumed: false,
                ..settings()
            },
        )
        .unwrap();
        assert!(with.len() < without.len());
        assert!(with.disjuncts.iter().any(|cq| cq.atoms.len() == 1));
    }

    #[test]
    fn transitive_hierarchy_fully_expands() {
        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("C"), atomic("B")));
        o.add_axiom(Axiom::subclass(atomic("B"), atomic("A")));
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("A"), QueryTerm::var("x"))],
        );
        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 3);
    }

    #[test]
    fn empty_tbox_is_identity() {
        let o = Ontology::new();
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("A"), QueryTerm::var("x"))],
        );
        let (ucq, stats) = rewrite(&q, &o, &settings()).unwrap();
        assert_eq!(ucq.len(), 1);
        assert_eq!(stats.generated, 1);
    }

    #[test]
    fn disjunct_budget_enforced() {
        let mut o = Ontology::new();
        for i in 0..50 {
            o.add_axiom(Axiom::subclass(atomic(&format!("S{i}")), atomic("A")));
        }
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("A"), QueryTerm::var("x"))],
        );
        let err = rewrite(
            &q,
            &o,
            &RewriteSettings {
                max_disjuncts: 10,
                ..settings()
            },
        )
        .unwrap_err();
        assert_eq!(err, RewriteError::TooManyDisjuncts(10));
    }

    /// End-to-end soundness/completeness vs the materialization oracle.
    #[test]
    fn rewriting_agrees_with_materialization() {
        use optique_ontology::materialize::materialize;
        use optique_rdf::{Graph, Term, Triple};

        let mut o = Ontology::new();
        o.add_axiom(Axiom::subclass(atomic("TempSensor"), atomic("Sensor")));
        o.add_axiom(Axiom::domain(iri("inAssembly"), atomic("Sensor")));
        o.add_axiom(Axiom::range(iri("inAssembly"), atomic("Assembly")));
        o.add_axiom(Axiom::subrole(
            Role::named(iri("partOf")),
            Role::named(iri("locatedIn")),
        ));

        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s1"),
            iri("TempSensor"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s2"),
            iri("inAssembly"),
            Term::iri("http://x/a1"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/a1"),
            iri("partOf"),
            Term::iri("http://x/t1"),
        ));

        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![Atom::class(iri("Sensor"), QueryTerm::var("x"))],
        );

        let (ucq, _) = rewrite(&q, &o, &settings()).unwrap();
        let rewritten_answers = ucq.evaluate(&g);

        let mut mat = g.clone();
        materialize(&mut mat, &o, 2);
        let oracle_answers = q.evaluate(&mat);

        assert_eq!(rewritten_answers, oracle_answers);
        assert_eq!(rewritten_answers.len(), 2, "s1 via subclass, s2 via domain");
    }
}
