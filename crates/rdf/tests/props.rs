//! Property tests: serialization round-trips and index-consistency of the
//! triple store.

use optique_rdf::{ntriples, Graph, Iri, Literal, Term, Triple, TriplePattern};
use proptest::prelude::*;

fn arb_iri() -> impl Strategy<Value = Iri> {
    "[a-z]{1,8}(/[a-z0-9]{1,6}){0,2}".prop_map(|s| Iri::new(format!("http://x/{s}")))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>().prop_map(Literal::integer),
        // Finite doubles only: NaN breaks round-trip equality by design.
        (-1e15f64..1e15f64).prop_map(Literal::double),
        any::<bool>().prop_map(Literal::boolean),
        "[ -~]{0,24}".prop_map(Literal::string),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri().prop_map(Term::Iri),
        (0u64..50).prop_map(Term::BNode),
        arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![
            arb_iri().prop_map(Term::Iri),
            (0u64..50).prop_map(Term::BNode)
        ],
        arb_iri(),
        arb_term(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

proptest! {
    /// write_graph ∘ parse_graph is the identity on graphs.
    #[test]
    fn ntriples_roundtrip(triples in proptest::collection::vec(arb_triple(), 0..40)) {
        let graph: Graph = triples.into_iter().collect();
        let text = ntriples::write_graph(&graph);
        let back = ntriples::parse_graph(&text).expect("own output parses");
        prop_assert_eq!(back.len(), graph.len());
        for t in graph.iter() {
            prop_assert!(back.contains(&t), "missing {}", t);
        }
    }

    /// Every pattern answer equals a linear scan with the same bindings.
    #[test]
    fn pattern_matching_agrees_with_scan(
        triples in proptest::collection::vec(arb_triple(), 1..40),
        pick in any::<proptest::sample::Index>(),
        mask in 0u8..8,
    ) {
        let graph: Graph = triples.clone().into_iter().collect();
        let probe = &triples[pick.index(triples.len())];
        let mut pattern = TriplePattern::any();
        if mask & 1 != 0 { pattern.subject = Some(probe.subject.clone()); }
        if mask & 2 != 0 { pattern.predicate = Some(probe.predicate.clone()); }
        if mask & 4 != 0 { pattern.object = Some(probe.object.clone()); }

        let mut expected: Vec<Triple> = graph
            .iter()
            .filter(|t| {
                pattern.subject.as_ref().is_none_or(|s| &t.subject == s)
                    && pattern.predicate.as_ref().is_none_or(|p| &t.predicate == p)
                    && pattern.object.as_ref().is_none_or(|o| &t.object == o)
            })
            .collect();
        let mut got = graph.matching(&pattern);
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Insertion is idempotent and order-independent.
    #[test]
    fn insertion_order_irrelevant(triples in proptest::collection::vec(arb_triple(), 0..30)) {
        let forward: Graph = triples.clone().into_iter().collect();
        let mut reversed_triples = triples;
        reversed_triples.reverse();
        let reverse: Graph = reversed_triples.into_iter().collect();
        prop_assert_eq!(forward.len(), reverse.len());
        for t in forward.iter() {
            prop_assert!(reverse.contains(&t));
        }
    }
}
