//! Prefix management and CURIE expansion.

use std::collections::HashMap;

use crate::term::Iri;

/// A prefix table mapping short names (`sie`, `rdf`, …) to namespace IRIs.
///
/// STARQL queries and bootstrapped mappings use compact CURIEs such as
/// `sie:Sensor`; this table expands them to full IRIs and renders full IRIs
/// back to their compact form for display.
#[derive(Clone, Debug, Default)]
pub struct Namespaces {
    prefixes: HashMap<String, String>,
}

impl Namespaces {
    /// An empty prefix table.
    pub fn new() -> Self {
        Namespaces::default()
    }

    /// A table pre-loaded with the W3C prefixes (`rdf`, `rdfs`, `owl`, `xsd`).
    pub fn with_w3c_defaults() -> Self {
        let mut ns = Namespaces::new();
        ns.bind("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
        ns.bind("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
        ns.bind("owl", "http://www.w3.org/2002/07/owl#");
        ns.bind("xsd", "http://www.w3.org/2001/XMLSchema#");
        ns
    }

    /// Binds `prefix` to `namespace`, replacing any previous binding.
    pub fn bind(&mut self, prefix: impl Into<String>, namespace: impl Into<String>) {
        self.prefixes.insert(prefix.into(), namespace.into());
    }

    /// Looks up the namespace bound to `prefix`.
    pub fn namespace(&self, prefix: &str) -> Option<&str> {
        self.prefixes.get(prefix).map(String::as_str)
    }

    /// Expands a CURIE (`sie:Sensor`) to a full IRI. Returns `None` when the
    /// prefix is unbound or the input has no colon.
    pub fn expand(&self, curie: &str) -> Option<Iri> {
        let (prefix, local) = curie.split_once(':')?;
        let ns = self.prefixes.get(prefix)?;
        Some(Iri::new(format!("{ns}{local}")))
    }

    /// Renders an IRI compactly when some bound namespace prefixes it;
    /// otherwise returns the bracketed full form.
    pub fn compact(&self, iri: &Iri) -> String {
        for (prefix, ns) in &self.prefixes {
            if let Some(local) = iri.as_str().strip_prefix(ns.as_str()) {
                if !local.is_empty() && !local.contains(['/', '#']) {
                    return format!("{prefix}:{local}");
                }
            }
        }
        iri.to_string()
    }

    /// Iterates over `(prefix, namespace)` bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.prefixes.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_bound_prefix() {
        let mut ns = Namespaces::new();
        ns.bind("sie", "http://siemens.example/ontology#");
        let iri = ns.expand("sie:Sensor").unwrap();
        assert_eq!(iri.as_str(), "http://siemens.example/ontology#Sensor");
    }

    #[test]
    fn expand_unbound_prefix_fails() {
        let ns = Namespaces::new();
        assert!(ns.expand("sie:Sensor").is_none());
        assert!(ns.expand("nocolon").is_none());
    }

    #[test]
    fn compact_roundtrip() {
        let mut ns = Namespaces::with_w3c_defaults();
        ns.bind("sie", "http://siemens.example/ontology#");
        let iri = ns.expand("sie:Turbine").unwrap();
        assert_eq!(ns.compact(&iri), "sie:Turbine");
    }

    #[test]
    fn compact_falls_back_to_full_form() {
        let ns = Namespaces::new();
        let iri = Iri::new("http://elsewhere/x");
        assert_eq!(ns.compact(&iri), "<http://elsewhere/x>");
    }

    #[test]
    fn w3c_defaults_present() {
        let ns = Namespaces::with_w3c_defaults();
        assert_eq!(
            ns.expand("rdf:type").unwrap().as_str(),
            crate::vocab::rdf::TYPE
        );
        assert!(ns.namespace("owl").is_some());
    }
}
