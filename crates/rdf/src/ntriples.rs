//! Line-oriented N-Triples-style serialization.
//!
//! Used for debugging, golden tests and the dashboard's raw answer view. The
//! parser accepts the subset that [`write_graph`] emits (IRIs, blank nodes,
//! string/typed literals) — enough for graph round-trips within this
//! workspace, not a general-purpose N-Triples implementation.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::term::{Datatype, Iri, Literal, Term};
use crate::triple::Triple;

/// Serializes a graph, one triple per line, in deterministic SPO-index order.
pub fn write_graph(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.iter() {
        let _ = writeln!(out, "{triple}");
    }
    out
}

/// Errors raised while parsing the serialized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the output of [`write_graph`] back into a [`Graph`].
pub fn parse_graph(text: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
        graph.insert(triple);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<Triple, String> {
    let body = line
        .strip_suffix('.')
        .ok_or_else(|| "missing terminating '.'".to_string())?
        .trim_end();
    let (subject, rest) = parse_term(body)?;
    let (pred_term, rest) = parse_term(rest)?;
    let Term::Iri(predicate) = pred_term else {
        return Err("predicate must be an IRI".into());
    };
    let (object, rest) = parse_term(rest)?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing content: {rest:?}"));
    }
    if !subject.is_resource() {
        return Err("subject must be an IRI or blank node".into());
    }
    Ok(Triple {
        subject,
        predicate,
        object,
    })
}

fn parse_term(input: &str) -> Result<(Term, &str), String> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('<') {
        let end = rest.find('>').ok_or("unterminated IRI")?;
        let iri = &rest[..end];
        return Ok((Term::Iri(Iri::new(iri)), &rest[end + 1..]));
    }
    if let Some(rest) = input.strip_prefix("_:b") {
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let id: u64 = rest[..end]
            .parse()
            .map_err(|_| "bad blank node id".to_string())?;
        return Ok((Term::BNode(id), &rest[end..]));
    }
    if let Some(rest) = input.strip_prefix('"') {
        let end = find_unescaped_quote(rest).ok_or("unterminated literal")?;
        let lexical = rest[..end].replace("\\\"", "\"").replace("\\\\", "\\");
        let after = &rest[end + 1..];
        if let Some(dt_rest) = after.strip_prefix("^^<") {
            let dt_end = dt_rest.find('>').ok_or("unterminated datatype IRI")?;
            let datatype = datatype_from_iri(&dt_rest[..dt_end])?;
            return Ok((
                Term::Literal(Literal::typed(lexical, datatype)),
                &dt_rest[dt_end + 1..],
            ));
        }
        return Ok((Term::Literal(Literal::string(lexical)), after));
    }
    Err(format!("cannot parse term at: {input:?}"))
}

fn find_unescaped_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn datatype_from_iri(iri: &str) -> Result<Datatype, String> {
    use crate::vocab::xsd;
    match iri {
        xsd::STRING => Ok(Datatype::String),
        xsd::INTEGER => Ok(Datatype::Integer),
        xsd::DOUBLE => Ok(Datatype::Double),
        xsd::BOOLEAN => Ok(Datatype::Boolean),
        xsd::DATE_TIME => Ok(Datatype::DateTime),
        xsd::DURATION => Ok(Datatype::Duration),
        other => Err(format!("unsupported datatype {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(
            Term::iri("http://x/s1"),
            Iri::new("http://x/Sensor"),
        ));
        g.insert(Triple::new(
            Term::iri("http://x/s1"),
            Iri::new("http://x/hasValue"),
            Term::Literal(Literal::double(81.25)),
        ));
        g.insert(Triple::new(
            Term::BNode(7),
            Iri::new("http://x/label"),
            Term::Literal(Literal::string("main \"hot\" sensor")),
        ));
        g
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let text = write_graph(&g);
        let back = parse_graph(&text).unwrap();
        assert_eq!(back.len(), g.len());
        for t in g.iter() {
            assert!(back.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = parse_graph("# comment\n\n<http://x/a> <http://x/p> <http://x/b> .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_graph("<http://x/a> <http://x/p> <http://x/b> .\ngarbage\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_literal_subject() {
        let err = parse_graph("\"lit\" <http://x/p> <http://x/b> .").unwrap_err();
        assert!(err.message.contains("subject"));
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse_graph("<http://x/a> <http://x/p> <http://x/b>").unwrap_err();
        assert!(err.message.contains("terminating"));
    }

    #[test]
    fn typed_literal_parses() {
        let g = parse_graph(
            "<http://x/a> <http://x/v> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
        )
        .unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().as_i64(), Some(5));
    }
}
