//! RDF data-model substrate for the Optique OBSSDI stack.
//!
//! Optique's semantic layer speaks RDF: ontologies are sets of axioms over IRIs,
//! mappings populate *virtual* RDF graphs from relational data, and STARQL
//! `CONSTRUCT` clauses emit RDF triples on the output stream. This crate
//! provides the minimal-but-faithful core the rest of the stack builds on:
//!
//! * [`Iri`], [`Literal`], [`Term`] — the term model with cheap (`Arc`-backed)
//!   clones and typed literal accessors,
//! * [`Triple`] and [`Graph`] — an interned, triple-indexed in-memory graph
//!   with SPO/POS/OSP orderings for pattern matching,
//! * [`vocab`] — the RDF/RDFS/OWL/XSD vocabulary constants used by the
//!   ontology and bootstrapping layers,
//! * [`Namespaces`] — prefix management and CURIE expansion,
//! * [`ntriples`] — a line-oriented serialization for debugging and tests.

pub mod graph;
pub mod namespace;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod vocab;

pub use graph::{Graph, TriplePattern};
pub use namespace::Namespaces;
pub use term::{Datatype, Iri, Literal, Term};
pub use triple::Triple;
