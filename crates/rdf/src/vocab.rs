//! W3C vocabulary constants used across the Optique stack.

/// The RDF core vocabulary.
pub mod rdf {
    /// `rdf:type` — class membership.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdf:Property`.
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
}

/// The RDFS vocabulary fragment relevant to OWL 2 QL bootstrapping.
pub mod rdfs {
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:subPropertyOf`.
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    /// `rdfs:label`.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    /// `rdfs:comment`.
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
}

/// The OWL 2 vocabulary fragment used by the DL-Lite_R ontology model.
pub mod owl {
    /// `owl:Class`.
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    /// `owl:ObjectProperty`.
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    /// `owl:DatatypeProperty`.
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    /// `owl:inverseOf`.
    pub const INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
    /// `owl:disjointWith`.
    pub const DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
    /// `owl:FunctionalProperty`.
    pub const FUNCTIONAL_PROPERTY: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
    /// `owl:Thing`, the top class.
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    /// `owl:Nothing`, the bottom class.
    pub const NOTHING: &str = "http://www.w3.org/2002/07/owl#Nothing";
}

/// XSD datatype IRIs.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// `xsd:duration`.
    pub const DURATION: &str = "http://www.w3.org/2001/XMLSchema#duration";
}

#[cfg(test)]
mod tests {
    use crate::Iri;

    #[test]
    fn vocab_iris_parse() {
        for s in [
            super::rdf::TYPE,
            super::rdfs::SUB_CLASS_OF,
            super::owl::INVERSE_OF,
            super::xsd::DATE_TIME,
        ] {
            let iri = Iri::new(s);
            assert!(!iri.local_name().is_empty());
        }
    }

    #[test]
    fn local_names_match_expectation() {
        assert_eq!(Iri::new(super::rdf::TYPE).local_name(), "type");
        assert_eq!(Iri::new(super::owl::THING).local_name(), "Thing");
    }
}
