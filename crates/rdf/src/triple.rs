//! RDF triples.

use std::fmt;

use crate::term::{Iri, Term};

/// An RDF triple `(subject, predicate, object)`.
///
/// Subjects are restricted to resources (IRIs or blank nodes) by the
/// [`Triple::new`] constructor; predicates are always IRIs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// Subject resource.
    pub subject: Term,
    /// Predicate IRI.
    pub predicate: Iri,
    /// Object term (resource or literal).
    pub object: Term,
}

impl Triple {
    /// Builds a triple, checking the RDF constraint that subjects are
    /// resources. Panics on literal subjects — the construction sites in this
    /// workspace are all code-generated, so a malformed subject is a logic
    /// bug, not input error.
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        let subject = subject.into();
        assert!(
            subject.is_resource(),
            "triple subject must be an IRI or blank node, got {subject}"
        );
        Triple {
            subject,
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Convenience constructor for `s rdf:type C` membership triples.
    pub fn class_assertion(subject: impl Into<Term>, class: impl Into<Iri>) -> Self {
        Triple::new(
            subject,
            Iri::new(crate::vocab::rdf::TYPE),
            Term::Iri(class.into()),
        )
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn builds_and_displays() {
        let t = Triple::new(
            Term::iri("http://x/s1"),
            Iri::new("http://x/hasValue"),
            Term::Literal(Literal::double(81.5)),
        );
        let s = t.to_string();
        assert!(s.starts_with("<http://x/s1> <http://x/hasValue>"));
        assert!(s.ends_with(" ."));
    }

    #[test]
    fn class_assertion_uses_rdf_type() {
        let t = Triple::class_assertion(Term::iri("http://x/s1"), Iri::new("http://x/Sensor"));
        assert_eq!(t.predicate.as_str(), crate::vocab::rdf::TYPE);
    }

    #[test]
    #[should_panic(expected = "subject must be an IRI or blank node")]
    fn literal_subject_rejected() {
        let _ = Triple::new(
            Term::Literal(Literal::integer(1)),
            Iri::new("http://x/p"),
            Term::iri("http://x/o"),
        );
    }
}
