//! An interned, triple-indexed in-memory RDF graph.
//!
//! The graph interns every distinct [`Term`] once and stores triples as
//! `(u32, u32, u32)` id tuples in three `BTreeSet` orderings (SPO, POS, OSP).
//! Any triple pattern with at least one bound position is answered by a range
//! scan over the ordering whose prefix is bound, so lookups are logarithmic
//! in graph size; a fully unbound pattern degrades to a full SPO scan.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::term::{Iri, Term};
use crate::triple::Triple;

type Id = u32;

/// A triple pattern: each position is either a bound term or a wildcard.
#[derive(Clone, Debug, Default)]
pub struct TriplePattern {
    /// Bound subject, or `None` for a wildcard.
    pub subject: Option<Term>,
    /// Bound predicate, or `None` for a wildcard.
    pub predicate: Option<Iri>,
    /// Bound object, or `None` for a wildcard.
    pub object: Option<Term>,
}

impl TriplePattern {
    /// The all-wildcard pattern matching every triple.
    pub fn any() -> Self {
        TriplePattern::default()
    }

    /// Pattern builder: bind the subject.
    pub fn with_subject(mut self, s: Term) -> Self {
        self.subject = Some(s);
        self
    }

    /// Pattern builder: bind the predicate.
    pub fn with_predicate(mut self, p: Iri) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Pattern builder: bind the object.
    pub fn with_object(mut self, o: Term) -> Self {
        self.object = Some(o);
        self
    }
}

/// An in-memory RDF graph with SPO/POS/OSP indexes.
#[derive(Clone, Default)]
pub struct Graph {
    terms: Vec<Term>,
    ids: HashMap<Term, Id>,
    spo: BTreeSet<(Id, Id, Id)>,
    pos: BTreeSet<(Id, Id, Id)>,
    osp: BTreeSet<(Id, Id, Id)>,
    next_bnode: u64,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples stored.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Number of distinct terms interned (useful for memory accounting).
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Mints a blank node that is fresh for this graph.
    pub fn fresh_bnode(&mut self) -> Term {
        let id = self.next_bnode;
        self.next_bnode += 1;
        Term::BNode(id)
    }

    fn intern(&mut self, term: &Term) -> Id {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = Id::try_from(self.terms.len()).expect("more than u32::MAX distinct terms");
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    fn lookup(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.intern(&triple.subject);
        let p = self.intern(&Term::Iri(triple.predicate.clone()));
        let o = self.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.lookup(&triple.subject),
            self.lookup(&Term::Iri(triple.predicate.clone())),
            self.lookup(&triple.object),
        ) else {
            return false;
        };
        self.spo.contains(&(s, p, o))
    }

    fn term(&self, id: Id) -> &Term {
        &self.terms[id as usize]
    }

    fn rebuild(&self, (s, p, o): (Id, Id, Id)) -> Triple {
        let Term::Iri(predicate) = self.term(p).clone() else {
            unreachable!("predicate position always interns an IRI");
        };
        Triple {
            subject: self.term(s).clone(),
            predicate,
            object: self.term(o).clone(),
        }
    }

    /// Iterates over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&ids| self.rebuild(ids))
    }

    /// Answers a triple pattern, choosing the best index for its bound prefix.
    pub fn matching(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let s = pattern.subject.as_ref().map(|t| self.lookup(t));
        let p = pattern
            .predicate
            .as_ref()
            .map(|i| self.lookup(&Term::Iri(i.clone())));
        let o = pattern.object.as_ref().map(|t| self.lookup(t));
        // A bound term absent from the graph can never match.
        for slot in [&s, &p, &o] {
            if matches!(slot, Some(None)) {
                return Vec::new();
            }
        }
        let s = s.flatten();
        let p = p.flatten();
        let o = o.flatten();

        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![self.rebuild((s, p, o))]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .range2(&self.spo, s, p)
                .map(|&ids| self.rebuild(ids))
                .collect(),
            (Some(s), None, None) => self
                .range1(&self.spo, s)
                .map(|&ids| self.rebuild(ids))
                .collect(),
            (None, Some(p), Some(o)) => self
                .range2(&self.pos, p, o)
                .map(|&(p, o, s)| self.rebuild((s, p, o)))
                .collect(),
            (None, Some(p), None) => self
                .range1(&self.pos, p)
                .map(|&(p, o, s)| self.rebuild((s, p, o)))
                .collect(),
            (None, None, Some(o)) => self
                .range1(&self.osp, o)
                .map(|&(o, s, p)| self.rebuild((s, p, o)))
                .collect(),
            (Some(s), None, Some(o)) => self
                .range2(&self.osp, o, s)
                .map(|&(o, s, p)| self.rebuild((s, p, o)))
                .collect(),
            (None, None, None) => self.iter().collect(),
        }
    }

    fn range1<'a>(
        &'a self,
        index: &'a BTreeSet<(Id, Id, Id)>,
        a: Id,
    ) -> impl Iterator<Item = &'a (Id, Id, Id)> {
        index.range((
            Bound::Included((a, 0, 0)),
            Bound::Included((a, Id::MAX, Id::MAX)),
        ))
    }

    fn range2<'a>(
        &'a self,
        index: &'a BTreeSet<(Id, Id, Id)>,
        a: Id,
        b: Id,
    ) -> impl Iterator<Item = &'a (Id, Id, Id)> {
        index.range((Bound::Included((a, b, 0)), Bound::Included((a, b, Id::MAX))))
    }

    /// All subjects appearing with `rdf:type == class`.
    pub fn instances_of(&self, class: &Iri) -> Vec<Term> {
        self.matching(
            &TriplePattern::any()
                .with_predicate(Iri::new(crate::vocab::rdf::TYPE))
                .with_object(Term::Iri(class.clone())),
        )
        .into_iter()
        .map(|t| t.subject)
        .collect()
    }

    /// Bulk-extends the graph from an iterator of triples.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.insert(t);
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Graph({} triples, {} terms)",
            self.len(),
            self.term_count()
        )
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<T: IntoIterator<Item = Triple>>(iter: T) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://x/{s}"))
    }

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::class_assertion(Term::Iri(iri("s1")), iri("Sensor")));
        g.insert(Triple::class_assertion(Term::Iri(iri("s2")), iri("Sensor")));
        g.insert(Triple::class_assertion(
            Term::Iri(iri("t1")),
            iri("Turbine"),
        ));
        g.insert(Triple::new(
            Term::Iri(iri("s1")),
            iri("inAssembly"),
            Term::Iri(iri("a1")),
        ));
        g.insert(Triple::new(
            Term::Iri(iri("s1")),
            iri("hasValue"),
            Term::Literal(Literal::double(90.0)),
        ));
        g.insert(Triple::new(
            Term::Iri(iri("s2")),
            iri("hasValue"),
            Term::Literal(Literal::double(70.0)),
        ));
        g
    }

    #[test]
    fn insert_is_idempotent() {
        let mut g = sample_graph();
        let n = g.len();
        assert!(!g.insert(Triple::class_assertion(Term::Iri(iri("s1")), iri("Sensor"))));
        assert_eq!(g.len(), n);
    }

    #[test]
    fn contains_finds_inserted() {
        let g = sample_graph();
        assert!(g.contains(&Triple::class_assertion(
            Term::Iri(iri("s1")),
            iri("Sensor")
        )));
        assert!(!g.contains(&Triple::class_assertion(
            Term::Iri(iri("s1")),
            iri("Turbine")
        )));
    }

    #[test]
    fn pattern_by_subject() {
        let g = sample_graph();
        let out = g.matching(&TriplePattern::any().with_subject(Term::Iri(iri("s1"))));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn pattern_by_predicate() {
        let g = sample_graph();
        let out = g.matching(&TriplePattern::any().with_predicate(iri("hasValue")));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pattern_by_object() {
        let g = sample_graph();
        let out = g.matching(&TriplePattern::any().with_object(Term::Iri(iri("Sensor"))));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pattern_subject_object() {
        let g = sample_graph();
        let out = g.matching(
            &TriplePattern::any()
                .with_subject(Term::Iri(iri("s1")))
                .with_object(Term::Iri(iri("a1"))),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].predicate, iri("inAssembly"));
    }

    #[test]
    fn pattern_with_unknown_term_matches_nothing() {
        let g = sample_graph();
        let out = g.matching(&TriplePattern::any().with_subject(Term::Iri(iri("nope"))));
        assert!(out.is_empty());
    }

    #[test]
    fn full_scan_returns_everything() {
        let g = sample_graph();
        assert_eq!(g.matching(&TriplePattern::any()).len(), g.len());
    }

    #[test]
    fn instances_of_class() {
        let g = sample_graph();
        let sensors = g.instances_of(&iri("Sensor"));
        assert_eq!(sensors.len(), 2);
    }

    #[test]
    fn fresh_bnodes_are_distinct() {
        let mut g = Graph::new();
        let a = g.fresh_bnode();
        let b = g.fresh_bnode();
        assert_ne!(a, b);
    }

    #[test]
    fn from_iterator_collects() {
        let g: Graph = sample_graph().iter().collect();
        assert_eq!(g.len(), sample_graph().len());
    }
}
