//! RDF terms: IRIs, blank nodes and typed literals.

use std::fmt;
use std::sync::Arc;

/// An Internationalized Resource Identifier.
///
/// Backed by an `Arc<str>` so that clones are reference-count bumps; IRIs are
/// copied pervasively through rewriting and unfolding, so cheap clones matter.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates an IRI from any string-like value. No syntactic validation is
    /// performed beyond rejecting the empty string, mirroring the lenient
    /// behaviour of most RDF toolkits on already-trusted vocabularies.
    pub fn new(value: impl AsRef<str>) -> Self {
        let v = value.as_ref();
        assert!(!v.is_empty(), "IRI must not be empty");
        Iri(Arc::from(v))
    }

    /// Wraps an already-shared string without copying (refcount bump only).
    /// Result rendering decodes dictionary-interned text through this, so
    /// lifting a SQL row back into RDF terms allocates nothing per cell.
    pub fn from_shared(value: Arc<str>) -> Self {
        assert!(!value.is_empty(), "IRI must not be empty");
        Iri(value)
    }

    /// The full textual form of the IRI.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The fragment or final path segment — the "local name" used when
    /// rendering compact forms (e.g. `Sensor` for `…/siemens#Sensor`).
    pub fn local_name(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) if idx + 1 < s.len() => &s[idx + 1..],
            _ => s,
        }
    }

    /// The namespace part: everything up to and including the last `#` or `/`.
    pub fn namespace(&self) -> &str {
        let s = self.as_str();
        match s.rfind(['#', '/']) {
            Some(idx) if idx + 1 < s.len() => &s[..=idx],
            _ => "",
        }
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(value: &str) -> Self {
        Iri::new(value)
    }
}

impl From<String> for Iri {
    fn from(value: String) -> Self {
        Iri::new(value)
    }
}

/// The XSD datatypes the Optique stack manipulates.
///
/// The relational layer produces exactly these shapes (see
/// `optique-relational`'s value model), so a closed enum is both faster and
/// more honest than carrying arbitrary datatype IRIs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Datatype {
    /// `xsd:string`
    String,
    /// `xsd:integer`
    Integer,
    /// `xsd:double`
    Double,
    /// `xsd:boolean`
    Boolean,
    /// `xsd:dateTime`, lexical form is an ISO-8601 instant
    DateTime,
    /// `xsd:duration`, e.g. `PT10S`
    Duration,
}

impl Datatype {
    /// The canonical XSD IRI for this datatype.
    pub fn iri(self) -> Iri {
        let s = match self {
            Datatype::String => crate::vocab::xsd::STRING,
            Datatype::Integer => crate::vocab::xsd::INTEGER,
            Datatype::Double => crate::vocab::xsd::DOUBLE,
            Datatype::Boolean => crate::vocab::xsd::BOOLEAN,
            Datatype::DateTime => crate::vocab::xsd::DATE_TIME,
            Datatype::Duration => crate::vocab::xsd::DURATION,
        };
        Iri::new(s)
    }
}

/// A typed RDF literal: a lexical form plus one of the supported datatypes.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    datatype: Datatype,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(value: impl AsRef<str>) -> Self {
        Literal {
            lexical: Arc::from(value.as_ref()),
            datatype: Datatype::String,
        }
    }

    /// A plain `xsd:string` literal over an already-shared lexical form
    /// (refcount bump, no copy) — see [`Iri::from_shared`].
    pub fn string_shared(value: Arc<str>) -> Self {
        Literal {
            lexical: value,
            datatype: Datatype::String,
        }
    }

    /// An `xsd:integer` literal in canonical form.
    pub fn integer(value: i64) -> Self {
        Literal {
            lexical: Arc::from(value.to_string().as_str()),
            datatype: Datatype::Integer,
        }
    }

    /// An `xsd:double` literal. NaN is permitted (lexical `NaN`).
    pub fn double(value: f64) -> Self {
        Literal {
            lexical: Arc::from(value.to_string().as_str()),
            datatype: Datatype::Double,
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal {
            lexical: Arc::from(if value { "true" } else { "false" }),
            datatype: Datatype::Boolean,
        }
    }

    /// An `xsd:dateTime` literal from a millisecond Unix timestamp. The
    /// lexical form keeps the raw milliseconds readable (the stream layer
    /// works in integer milliseconds throughout).
    pub fn datetime_millis(millis: i64) -> Self {
        Literal {
            lexical: Arc::from(millis.to_string().as_str()),
            datatype: Datatype::DateTime,
        }
    }

    /// An `xsd:duration` literal from a lexical form such as `PT10S`.
    pub fn duration(lexical: impl AsRef<str>) -> Self {
        Literal {
            lexical: Arc::from(lexical.as_ref()),
            datatype: Datatype::Duration,
        }
    }

    /// A literal with an explicit datatype and lexical form.
    pub fn typed(lexical: impl AsRef<str>, datatype: Datatype) -> Self {
        Literal {
            lexical: Arc::from(lexical.as_ref()),
            datatype,
        }
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype tag.
    pub fn datatype(&self) -> Datatype {
        self.datatype
    }

    /// Numeric view of the literal, when its datatype admits one.
    pub fn as_f64(&self) -> Option<f64> {
        match self.datatype {
            Datatype::Integer | Datatype::Double | Datatype::DateTime => {
                self.lexical.parse::<f64>().ok()
            }
            _ => None,
        }
    }

    /// Integer view of the literal, when its datatype admits one.
    pub fn as_i64(&self) -> Option<i64> {
        match self.datatype {
            Datatype::Integer | Datatype::DateTime => self.lexical.parse::<i64>().ok(),
            _ => None,
        }
    }

    /// Boolean view of the literal.
    pub fn as_bool(&self) -> Option<bool> {
        match (self.datatype, self.lexical()) {
            (Datatype::Boolean, "true" | "1") => Some(true),
            (Datatype::Boolean, "false" | "0") => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let escaped = self.lexical.replace('\\', "\\\\").replace('"', "\\\"");
        match self.datatype {
            Datatype::String => write!(f, "\"{escaped}\""),
            other => write!(f, "\"{escaped}\"^^<{}>", other.iri().as_str()),
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An RDF term: IRI, blank node, or literal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A named resource.
    Iri(Iri),
    /// An anonymous node, identified only within one graph.
    BNode(u64),
    /// A typed literal value.
    Literal(Literal),
}

impl Term {
    /// Shorthand constructor for an IRI term.
    pub fn iri(value: impl AsRef<str>) -> Self {
        Term::Iri(Iri::new(value))
    }

    /// Returns the IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// Returns the literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// True when the term may appear in subject position of an RDF triple.
    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Iri(_) | Term::BNode(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => fmt::Display::fmt(iri, f),
            Term::BNode(id) => write!(f, "_:b{id}"),
            Term::Literal(lit) => fmt::Display::fmt(lit, f),
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_name_after_hash() {
        let iri = Iri::new("http://siemens.example/ontology#Turbine");
        assert_eq!(iri.local_name(), "Turbine");
        assert_eq!(iri.namespace(), "http://siemens.example/ontology#");
    }

    #[test]
    fn iri_local_name_after_slash() {
        let iri = Iri::new("http://siemens.example/data/turbine/42");
        assert_eq!(iri.local_name(), "42");
    }

    #[test]
    fn iri_without_separator_is_its_own_local_name() {
        let iri = Iri::new("urn-like-token");
        assert_eq!(iri.local_name(), "urn-like-token");
        assert_eq!(iri.namespace(), "");
    }

    #[test]
    #[should_panic(expected = "IRI must not be empty")]
    fn empty_iri_rejected() {
        let _ = Iri::new("");
    }

    #[test]
    fn literal_integer_roundtrip() {
        let lit = Literal::integer(-17);
        assert_eq!(lit.as_i64(), Some(-17));
        assert_eq!(lit.as_f64(), Some(-17.0));
        assert_eq!(lit.datatype(), Datatype::Integer);
    }

    #[test]
    fn literal_double_roundtrip() {
        let lit = Literal::double(3.5);
        assert_eq!(lit.as_f64(), Some(3.5));
        assert_eq!(lit.as_i64(), None);
    }

    #[test]
    fn literal_boolean_views() {
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::boolean(false).as_bool(), Some(false));
        assert_eq!(Literal::string("true").as_bool(), None);
    }

    #[test]
    fn literal_string_has_no_numeric_view() {
        assert_eq!(Literal::string("12").as_f64(), None);
    }

    #[test]
    fn datetime_millis_numeric_view() {
        let lit = Literal::datetime_millis(1_000);
        assert_eq!(lit.as_i64(), Some(1_000));
        assert_eq!(lit.datatype(), Datatype::DateTime);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/A").to_string(), "<http://x/A>");
        assert_eq!(Term::BNode(3).to_string(), "_:b3");
        assert_eq!(Literal::string("hi").to_string(), "\"hi\"");
        assert!(Literal::integer(5)
            .to_string()
            .contains("^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }

    #[test]
    fn term_accessors() {
        let t = Term::iri("http://x/A");
        assert!(t.as_iri().is_some());
        assert!(t.as_literal().is_none());
        assert!(t.is_resource());
        let l = Term::Literal(Literal::integer(1));
        assert!(!l.is_resource());
        assert!(l.as_literal().is_some());
    }
}
