//! E5: unfolding time vs mapping-catalog size — the paper claims linear
//! time in |mappings| × |query|. Includes the self-join-elimination
//! ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_mapping::{unfold_cq, MappingAssertion, MappingCatalog, TermMap, UnfoldSettings};
use optique_rdf::Iri;
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};

/// `n` class mappings spread over `n` distinct classes plus one queried
/// class with exactly 4 mappings (the per-atom fan-out stays constant, so
/// runtime growth isolates catalog-size effects: index lookups stay O(1)).
fn catalog(n: usize) -> MappingCatalog {
    let mut c = MappingCatalog::new();
    for i in 0..n {
        c.add(
            MappingAssertion::class(
                format!("m{i}"),
                Iri::new(format!("http://x/C{i}")),
                format!("SELECT id FROM t{i}"),
                TermMap::template("http://x/obj/{id}"),
            )
            .with_key(vec!["id".into()]),
        )
        .unwrap();
    }
    for j in 0..4 {
        c.add(
            MappingAssertion::class(
                format!("q{j}"),
                Iri::new("http://x/Queried"),
                format!("SELECT id FROM source{j}"),
                TermMap::template("http://x/obj/{id}"),
            )
            .with_key(vec!["id".into()]),
        )
        .unwrap();
    }
    c
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into()],
        vec![
            Atom::class(Iri::new("http://x/Queried"), QueryTerm::var("x")),
            Atom::class(Iri::new("http://x/Queried"), QueryTerm::var("x")),
        ],
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfolding");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [10usize, 100, 1000, 10_000] {
        let cat = catalog(n);
        let q = query();
        group.bench_with_input(BenchmarkId::new("self_join_elim", n), &n, |b, _| {
            b.iter(|| unfold_cq(&q, &cat, &UnfoldSettings::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("no_elimination", n), &n, |b, _| {
            let s = UnfoldSettings {
                eliminate_self_joins: false,
                ..Default::default()
            };
            b.iter(|| unfold_cq(&q, &cat, &s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
