//! F2: scheduler placement cost and balance for large operator batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_exastream::scheduler::{OperatorTask, Scheduler};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (workers, tasks) in [(8usize, 128usize), (32, 1_024), (128, 4_096)] {
        let batch: Vec<OperatorTask> = (0..tasks as u64)
            .map(|id| OperatorTask::continuous(id, 1.0 + (id % 7) as f64))
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("{workers}w"), tasks),
            &tasks,
            |b, _| {
                b.iter(|| {
                    let mut s = Scheduler::new(workers);
                    let placement = s.place_batch(&batch);
                    assert!(placement.imbalance() < 1.5);
                    placement
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
