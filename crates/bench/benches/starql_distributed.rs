//! Distributed STARQL ticks: windows compiled to plan fragments and
//! scattered over a stream-partitioned federation, vs single-node window
//! slicing — 1/4 workers × small/large windows.
//!
//! Beyond wall-clock, the setup asserts the structural claim the bench
//! group exists for: the stream side **scatters rather than replicates** —
//! a distributed tick ships each window row exactly once in total (each
//! worker contributes its shard's slice), never once per worker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique::OptiquePlatform;
use optique_mapping::{IriTemplate, MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::{Axiom, BasicConcept, Ontology};
use optique_rdf::{Datatype, Iri, Namespaces};
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_starql::StreamToRdf;

const SIE: &str = "http://siemens.example/ontology#";
const DATA: &str = "http://siemens.example/data/";
const SENSORS: i64 = 64;

fn iri(s: &str) -> Iri {
    Iri::new(format!("{SIE}{s}"))
}

/// 64 sensors reporting each second over 60 s of stream time.
fn platform() -> OptiquePlatform {
    let mut db = Database::new();
    db.put_table(
        "sensors",
        table_of(
            "sensors",
            &[("sid", ColumnType::Int), ("aid", ColumnType::Int)],
            (0..SENSORS)
                .map(|s| vec![Value::Int(s), Value::Int(s % 8)])
                .collect(),
        )
        .unwrap(),
    );
    let mut rows = Vec::new();
    for i in 0..60i64 {
        let ts = 600_000 + i * 1_000;
        for sensor in 0..SENSORS {
            rows.push(vec![
                Value::Timestamp(ts),
                Value::Int(sensor),
                Value::Float(60.0 + ((i + sensor) % 30) as f64),
                Value::Null,
            ]);
        }
    }
    db.put_table(
        "S_Msmt",
        table_of(
            "S_Msmt",
            &[
                ("ts", ColumnType::Timestamp),
                ("sensor_id", ColumnType::Int),
                ("value", ColumnType::Float),
                ("event", ColumnType::Text),
            ],
            rows,
        )
        .unwrap(),
    );

    let mut onto = Ontology::new();
    onto.add_axiom(Axiom::domain(
        iri("inAssembly"),
        BasicConcept::atomic(iri("Assembly")),
    ));
    onto.add_axiom(Axiom::range(
        iri("inAssembly"),
        BasicConcept::atomic(iri("Sensor")),
    ));

    let mut maps = MappingCatalog::new();
    maps.add(
        MappingAssertion::property(
            "in_assembly",
            iri("inAssembly"),
            "SELECT aid, sid FROM sensors",
            TermMap::template(&format!("{DATA}assembly/{{aid}}")),
            TermMap::template(&format!("{DATA}sensor/{{sid}}")),
        )
        .with_key(vec!["aid".into(), "sid".into()]),
    )
    .unwrap();

    let stream_to_rdf = StreamToRdf {
        timestamp_col: "ts".into(),
        subject: IriTemplate::parse(&format!("{DATA}sensor/{{sensor_id}}")).unwrap(),
        value_property: iri("hasValue"),
        value_col: "value".into(),
        value_datatype: Datatype::Double,
        event_col: Some("event".into()),
        event_classes: vec![("failure".into(), iri("showsFailure"))],
    };
    OptiquePlatform::deploy(
        db,
        onto,
        Namespaces::with_w3c_defaults(),
        maps,
        stream_to_rdf,
    )
}

fn query(range_s: i64) -> String {
    format!(
        "PREFIX sie: <{SIE}>\nPREFIX : <{SIE}>\nCREATE STREAM S_out AS\n\
         CONSTRUCT GRAPH NOW {{ ?c2 a :Active }}\n\
         FROM STREAM S_Msmt [NOW-\"PT{range_s}S\"^^xsd:duration, NOW]->\"PT1S\"^^xsd:duration\n\
         USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"PT1S\"\n\
         WHERE {{ ?c1 sie:inAssembly ?c2 }}\n\
         SEQUENCE BY StdSeq AS seq\n\
         HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?v }} AND ?v >= 75"
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("starql_distributed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // Tick instants cycle through the stream so window-cache hits do not
    // trivialize the measurement.
    let instants: Vec<i64> = (0..16).map(|i| 610_000 + i * 1_000).collect();

    for range_s in [2i64, 20] {
        let text = query(range_s);

        // Single-node reference.
        let single = platform();
        single.register_starql(&text).expect("registers");
        // One alignment tick, then assert the structural claims once.
        let reference = single.tick_all(615_000).expect("ticks")[0].1.clone();
        assert!(reference.tuples_in_window > 0);
        group.bench_with_input(
            BenchmarkId::new("single-node", format!("{range_s}s")),
            &range_s,
            |b, _| {
                b.iter(|| {
                    let mut satisfied = 0usize;
                    for &t in &instants {
                        satisfied += single.tick_all(t).expect("ticks")[0].1.satisfied;
                    }
                    satisfied
                })
            },
        );

        for workers in [1usize, 4] {
            let distributed = platform();
            distributed
                .register_starql_distributed(&text, workers)
                .expect("registers");
            let tick = distributed.tick_all(615_000).expect("ticks")[0].1.clone();
            // Scatter, not replicate: the gathered window is one copy of
            // the rows, never `workers` copies.
            assert_eq!(
                tick.stream_rows_shipped, reference.tuples_in_window,
                "a scattered window ships each row exactly once at {workers} workers"
            );
            if workers > 1 {
                assert_eq!(
                    tick.partitioned_fragments, 1,
                    "the stream must hash-partition so the window scatters: {tick:?}"
                );
            }
            assert_eq!(tick.satisfied, reference.satisfied);
            group.bench_with_input(
                BenchmarkId::new(format!("distributed/{workers}w"), format!("{range_s}s")),
                &range_s,
                |b, _| {
                    b.iter(|| {
                        let mut satisfied = 0usize;
                        for &t in &instants {
                            satisfied += distributed.tick_all(t).expect("ticks")[0].1.satisfied;
                        }
                        satisfied
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
