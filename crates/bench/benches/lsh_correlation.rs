//! E9: LSH correlation search vs exhaustive exact Pearson over growing
//! sensor counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_lsh::CorrelationIndex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn index_of(n_sensors: usize, dim: usize) -> CorrelationIndex {
    let mut rng = StdRng::seed_from_u64(99);
    let mut index = CorrelationIndex::new(dim, 16, 8, 5);
    // Three correlated families among noise.
    for fam in 0..3u64 {
        let base: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
        for k in 0..3u64 {
            let noisy: Vec<f64> = base
                .iter()
                .map(|x| x + rng.random_range(-0.1..=0.1))
                .collect();
            index.insert(1_000 + fam * 10 + k, &noisy);
        }
    }
    for id in 0..n_sensors as u64 {
        let series: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
        index.insert(id, &series);
    }
    index
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_correlation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for sensors in [100usize, 500, 2_000] {
        let index = index_of(sensors, 64);
        group.bench_with_input(
            BenchmarkId::new("exact_all_pairs", sensors),
            &sensors,
            |b, _| b.iter(|| index.exact_pairs_above(0.9)),
        );
        group.bench_with_input(BenchmarkId::new("lsh_banded", sensors), &sensors, |b, _| {
            b.iter(|| index.correlated_pairs(0.8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
