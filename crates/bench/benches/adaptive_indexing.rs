//! E7: adaptive main-memory indexing of cached stream batches — repeated
//! point probes against a window batch, with the stats-driven indexer vs
//! always-scan vs always-index, plus the operator-fusion ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_exastream::adaptive::AdaptiveIndexer;
use optique_exastream::udf::Pipeline;
use optique_relational::index::HashIndex;
use optique_relational::Value;

fn batch(rows: usize) -> Vec<Vec<Value>> {
    (0..rows as i64)
        .map(|i| vec![Value::Int(i % 500), Value::Float(i as f64)])
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_indexing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for rows in [1_000usize, 10_000, 100_000] {
        let data = batch(rows);
        let probes: Vec<Value> = (0..64i64).map(|i| Value::Int(i * 7 % 500)).collect();

        group.bench_with_input(BenchmarkId::new("always_scan", rows), &rows, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &probes {
                    hits += data
                        .iter()
                        .filter(|row| row[0].sql_eq(p) == Some(true))
                        .count();
                }
                hits
            })
        });

        group.bench_with_input(BenchmarkId::new("adaptive", rows), &rows, |b, _| {
            b.iter(|| {
                let idx = AdaptiveIndexer::new(3, 64);
                let key = ("w".to_string(), 0usize);
                let mut hits = 0usize;
                for p in &probes {
                    hits += idx.probe(&key, &data, p).len();
                }
                hits
            })
        });

        group.bench_with_input(BenchmarkId::new("always_index", rows), &rows, |b, _| {
            b.iter(|| {
                let idx = HashIndex::build(&data, 0);
                let mut hits = 0usize;
                for p in &probes {
                    hits += idx.lookup(p).len();
                }
                hits
            })
        });
    }

    // Operator fusion ablation (stands in for JIT trace compilation).
    for rows in [10_000usize, 100_000] {
        let data = batch(rows);
        let build = || {
            Pipeline::new()
                .filter(|r| r[0].as_i64().unwrap() % 3 == 0)
                .map(|mut r| {
                    let v = r[1].as_f64().unwrap();
                    r[1] = Value::Float(v * 1.8 + 32.0);
                    r
                })
                .filter(|r| r[1].as_f64().unwrap() > 50.0)
        };
        group.bench_with_input(BenchmarkId::new("fused", rows), &rows, |b, _| {
            let p = build();
            b.iter(|| p.run_fused(data.clone()))
        });
        group.bench_with_input(BenchmarkId::new("materialized", rows), &rows, |b, _| {
            let p = build();
            b.iter(|| p.run_materialized(data.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
