//! E2: aggregate throughput under concurrent registered diagnostic tasks
//! (paper: >1,000 / up to 1,024 concurrent tasks in real time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::gateway::Gateway;
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

fn cluster() -> Arc<Cluster> {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(&mut db, &FleetConfig::small()).unwrap();
    optique_siemens::streamgen::build_stream(&mut db, &StreamConfig::small(sensors)).unwrap();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let shards = hash_partition(&stream, 1, workers);
    Arc::new(Cluster::provision(workers, |id| {
        let mut wdb = Database::new();
        wdb.put_table("S_Msmt", shards[id].clone());
        wdb
    }))
}

fn bench(c: &mut Criterion) {
    let cluster = cluster();
    let mut group = c.benchmark_group("concurrent_tasks");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for queries in [1usize, 4, 16, 64, 256, 1024] {
        group.throughput(Throughput::Elements(queries as u64));
        let gateway = Gateway::new(Arc::clone(&cluster));
        for i in 0..queries {
            gateway
                .register(
                    format!(
                        "SELECT COUNT(*) AS n, MAX(value) AS mx FROM S_Msmt WHERE sensor_id % 16 = {}",
                        i % 16
                    ),
                    1.0,
                )
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(queries), &queries, |b, _| {
            b.iter(|| {
                let results = gateway.run_all();
                assert!(results.iter().all(|(_, r)| r.is_ok()));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
