//! E1: throughput scaling with worker-node count (paper: 1 → 128 nodes,
//! up to 10M tuples/sec). Expect near-linear speedup until the host's
//! physical cores saturate, then a plateau — the shape, not the testbed's
//! absolute numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use std::time::Duration;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

const QUERY: &str =
    "SELECT sensor_id, COUNT(*) AS n, MAX(value) AS mx FROM S_Msmt GROUP BY sensor_id";

fn source() -> (Database, usize) {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(
        &mut db,
        &FleetConfig {
            turbines: 40,
            assemblies_per_turbine: 4,
            sensors_per_assembly: 4,
            seed: 5,
        },
    )
    .unwrap();
    let config = StreamConfig {
        sensor_ids: sensors,
        start_ms: 0,
        duration_ms: 60_000,
        period_ms: 1_000,
        seed: 5,
        ramp_failures: 2,
        correlated_pairs: 1,
        hot_bursts: 1,
    };
    optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    let n = db.table("S_Msmt").unwrap().len();
    (db, n)
}

fn bench(c: &mut Criterion) {
    let (db, tuples) = source();
    let mut group = c.benchmark_group("scaling_nodes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(tuples as u64));
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let stream = (**db.table("S_Msmt").unwrap()).clone();
        let shards = hash_partition(&stream, 1, nodes);
        let cluster = Arc::new(Cluster::provision(nodes, |id| {
            let mut wdb = Database::new();
            wdb.put_table("S_Msmt", shards[id].clone());
            wdb
        }));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| cluster.parallel_query(QUERY).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
