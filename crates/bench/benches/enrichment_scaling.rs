//! E4: enrichment (PerfectRef) time vs ontology size — the paper claims
//! polynomial-time enrichment for OWL 2 QL. Includes the
//! redundancy-elimination ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_ontology::{Axiom, BasicConcept, Ontology};
use optique_rdf::Iri;
use optique_rewrite::{rewrite, Atom, ConjunctiveQuery, QueryTerm, RewriteSettings};

/// A TBox with a deep-and-wide class hierarchy under `Root` plus
/// domain/range axioms: `axioms` total.
fn tbox(axioms: usize) -> Ontology {
    let mut o = Ontology::new();
    let iri = |s: String| Iri::new(format!("http://x/{s}"));
    // A forest of chains of length 5 all leading to Root.
    let mut count = 0;
    let mut chain = 0;
    while count < axioms {
        let mut parent = "Root".to_string();
        for depth in 0..5 {
            let child = format!("C{chain}_{depth}");
            o.add_axiom(Axiom::subclass(
                BasicConcept::Atomic(iri(child.clone())),
                BasicConcept::Atomic(iri(parent.clone())),
            ));
            parent = child;
            count += 1;
            if count >= axioms {
                break;
            }
        }
        chain += 1;
    }
    o
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        vec!["x".into()],
        vec![Atom::class(Iri::new("http://x/Root"), QueryTerm::var("x"))],
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("enrichment");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for axioms in [10usize, 50, 200, 1000, 5000] {
        let onto = tbox(axioms);
        let q = query();
        group.bench_with_input(BenchmarkId::new("with_pruning", axioms), &axioms, |b, _| {
            b.iter(|| rewrite(&q, &onto, &RewriteSettings::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("no_pruning", axioms), &axioms, |b, _| {
            let s = RewriteSettings {
                eliminate_subsumed: false,
                ..Default::default()
            };
            b.iter(|| rewrite(&q, &onto, &s).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
