//! E6: BootOX bootstrapping time vs schema size (paper: ontologies and
//! mappings for the Siemens deployment "in realistic time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_bootstrap::{bootstrap_direct, BootstrapSettings, RelTable, RelationalSchema};
use optique_relational::ColumnType;

fn schema(tables: usize) -> RelationalSchema {
    let mut s = RelationalSchema::new().with_table(
        RelTable::new(
            "root",
            vec![("id", ColumnType::Int), ("name", ColumnType::Text)],
        )
        .with_pk(&["id"]),
    );
    for i in 0..tables {
        s = s.with_table(
            RelTable::new(
                format!("table_{i}"),
                vec![
                    ("id", ColumnType::Int),
                    ("label", ColumnType::Text),
                    ("amount", ColumnType::Float),
                    ("root_id", ColumnType::Int),
                ],
            )
            .with_pk(&["id"])
            .with_fk("root_id", "root", "id"),
        );
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for tables in [5usize, 25, 100, 500] {
        let s = schema(tables);
        group.bench_with_input(BenchmarkId::from_parameter(tables), &tables, |b, _| {
            b.iter(|| bootstrap_direct(&s, &BootstrapSettings::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
