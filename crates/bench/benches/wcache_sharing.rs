//! E8: wCache — many concurrent queries sharing window materializations vs
//! each query slicing the stream itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_relational::{Database, Value};
use optique_siemens::{FleetConfig, StreamConfig};
use optique_stream::{Stream, WCache};

fn source() -> (Database, usize) {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(&mut db, &FleetConfig::small()).unwrap();
    optique_siemens::streamgen::build_stream(&mut db, &StreamConfig::small(sensors)).unwrap();
    let n = db.table("S_Msmt").unwrap().len();
    (db, n)
}

fn bench(c: &mut Criterion) {
    let (db, _) = source();
    let table = db.table("S_Msmt").unwrap().clone();
    let mut group = c.benchmark_group("wcache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for queries in [1usize, 16, 64, 256] {
        // Without wCache: every query re-slices and copies its window.
        group.bench_with_input(BenchmarkId::new("unshared", queries), &queries, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..queries {
                    let stream = Stream::new("S_Msmt", (*table).clone(), 0).unwrap();
                    let rows: Vec<Vec<Value>> = stream.slice(600_000, 610_000).to_vec();
                    total += rows.len();
                }
                total
            })
        });
        // With wCache: first query materializes, the rest share the Arc.
        group.bench_with_input(BenchmarkId::new("wcache", queries), &queries, |b, _| {
            b.iter(|| {
                let cache = WCache::new();
                let mut total = 0usize;
                for _ in 0..queries {
                    let rows = cache.get_or_build("S_Msmt", 10, || {
                        let stream = Stream::new("S_Msmt", (*table).clone(), 0).unwrap();
                        stream.slice(600_000, 610_000).to_vec()
                    });
                    total += rows.len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
