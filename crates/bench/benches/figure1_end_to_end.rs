//! F1: end-to-end latency of the Figure 1 pipeline — parse, translate
//! (enrich + unfold), register, and a single pulse tick.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use optique::OptiquePlatform;
use optique_siemens::SiemensDeployment;
use optique_starql::FIGURE1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let deployment = SiemensDeployment::small();
    let ns = deployment.namespaces.clone();

    group.bench_function("parse", |b| {
        b.iter(|| optique_starql::parse_starql(black_box(FIGURE1), &ns).unwrap())
    });

    group.bench_function("translate", |b| {
        let parsed = optique_starql::parse_starql(FIGURE1, &ns).unwrap();
        let ctx = optique_starql::TranslationContext {
            ontology: &deployment.ontology,
            mappings: &deployment.mappings,
            rewrite_settings: Default::default(),
            unfold_settings: Default::default(),
        };
        b.iter(|| optique_starql::translate(black_box(&parsed), &ctx).unwrap())
    });

    group.bench_function("register", |b| {
        let platform = OptiquePlatform::from_siemens(SiemensDeployment::small());
        b.iter(|| {
            let id = platform.register_starql(black_box(FIGURE1)).unwrap();
            platform.deregister(id);
        })
    });

    group.bench_function("tick", |b| {
        let platform = OptiquePlatform::from_siemens(SiemensDeployment::small());
        platform.register_starql(FIGURE1).unwrap();
        b.iter(|| platform.tick_all(black_box(609_000)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
