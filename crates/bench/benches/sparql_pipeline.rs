//! SPARQL front-end baseline: parse → PerfectRef rewrite → mapping
//! unfolding → relational execution latency at 1 / 10 / 100 BGP-atom
//! scales, so later optimisation PRs have a reference point.
//!
//! The workload is a join chain `?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . …` over a
//! synthetic catalog with one mapping per property (one unfolding
//! combination per disjunct — growth isolates per-atom pipeline cost, not
//! mapping fan-out).
//!
//! The `sparql_distributed` group measures the federated backend: one
//! property mapped through 10 / 100 sources unfolds to that many `UNION
//! ALL` disjuncts, which ship as plan fragments to 1 vs 4 ExaStream
//! workers (`Federation`) — the single-worker run prices the wire
//! format and gateway overhead, the 4-worker run the speedup.
//!
//! The `sparql_semijoin` group joins a selective class against the fan-out
//! property, naive vs planned: the planner scans the selective side first
//! and pushes its bindings into every fragment as an `IN`-list, and the
//! benchmark asserts the pushdown happened and shrank the rows fragments
//! returned.
//!
//! The `sparql_partitioned` group prices the partition-routed federation:
//! the same join-heavy workload on replicated vs auto-partitioned pools
//! (advisor-picked keys). The tagged binding list (320 values) exceeds the
//! replicated pushdown budget (256), so replicated fragments return every
//! row — while the partitioned pool slices the list per shard, prunes the
//! scatter, and ships only matching rows. The benchmark asserts
//! auto-partitioned execution returns strictly fewer `fragment_rows` on
//! the 100-disjunct join workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use optique::Federation;
use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::Ontology;
use optique_rdf::{Iri, Namespaces};
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_sparql::{parse_sparql, PlannerSettings, StaticPipeline};

const ROWS_PER_TABLE: i64 = 8;

fn namespaces() -> Namespaces {
    let mut ns = Namespaces::with_w3c_defaults();
    ns.bind("x", "http://x/");
    ns
}

/// One table + one property mapping per chain position.
fn fixtures(atoms: usize) -> (Database, MappingCatalog) {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..atoms {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p{i}"),
                    Iri::new(format!("http://x/p{i}")),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    (db, catalog)
}

/// `SELECT ?v0 WHERE { ?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . … }` with `atoms`
/// chained triple patterns.
fn query_text(atoms: usize) -> String {
    let mut text = String::from("SELECT ?v0 WHERE { ");
    for i in 0..atoms {
        text.push_str(&format!("?v{i} x:p{i} ?v{} . ", i + 1));
    }
    text.push('}');
    text
}

fn bench(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for atoms in [1usize, 10, 100] {
        let (db, catalog) = fixtures(atoms);
        let text = query_text(atoms);

        group.bench_with_input(BenchmarkId::new("parse", atoms), &atoms, |b, _| {
            b.iter(|| parse_sparql(&text, &ns).expect("parses"))
        });

        let pipeline = StaticPipeline::new(&ontology, &catalog, &db);
        let parsed = parse_sparql(&text, &ns).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("rewrite_unfold_execute", atoms),
            &atoms,
            |b, _| {
                b.iter(|| {
                    let (results, _) = pipeline.answer(&parsed).expect("answers");
                    assert_eq!(results.len(), ROWS_PER_TABLE as usize);
                    results
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("end_to_end", atoms), &atoms, |b, _| {
            b.iter(|| {
                let query = parse_sparql(&text, &ns).expect("parses");
                pipeline.answer(&query).expect("answers")
            })
        });
    }
    group.finish();
}

/// One property mapped through `sources` distinct tables: the single-atom
/// BGP `?a x:p ?b` unfolds to `sources` disjuncts — the federation's unit
/// of distribution.
fn fanout_fixtures(sources: usize) -> (Database, MappingCatalog) {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..sources {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(i as i64 * ROWS_PER_TABLE + k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p-src{i}"),
                    Iri::new("http://x/p"),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    (db, catalog)
}

/// A selective `tagged` table whose `a` values hit only a handful of the
/// fan-out sources: the planner should scan it first and push its four
/// subject IRIs into every `x:p` fragment as an `IN`-list.
fn semijoin_fixtures(sources: usize) -> (Database, MappingCatalog) {
    let (mut db, mut catalog) = fanout_fixtures(sources);
    let rows = (0..4)
        .map(|k| vec![Value::Int(k * ROWS_PER_TABLE * (sources as i64) / 4)])
        .collect();
    db.put_table(
        "tagged",
        table_of("tagged", &[("a", ColumnType::Int)], rows).expect("valid table"),
    );
    catalog
        .add(
            MappingAssertion::class(
                "tagged",
                Iri::new("http://x/Tagged"),
                "SELECT a FROM tagged",
                TermMap::template("http://x/obj/{a}"),
            )
            .with_key(vec!["a".into()]),
        )
        .expect("valid mapping");
    (db, catalog)
}

/// The semi-join workload: a selective class joined against the
/// `sources`-way fan-out property. `naive` runs textual order without
/// pushdown; `planned` lets the statistics-driven planner reorder and push
/// — the asserts pin down that pushdown actually happened and shrank what
/// the fragments returned.
fn bench_semijoin(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_semijoin");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for disjuncts in [10usize, 100] {
        let (db, catalog) = semijoin_fixtures(disjuncts);
        let stats = optique_relational::StatsCatalog::analyze(&db);
        let db = Arc::new(db);
        let parsed = parse_sparql(
            "SELECT ?a ?b WHERE { { ?a a x:Tagged } { ?a x:p ?b } }",
            &ns,
        )
        .expect("parses");

        for workers in [1usize, 4] {
            let federation = Federation::replicated(Arc::clone(&db), workers);

            let naive = StaticPipeline::new(&ontology, &catalog, &db)
                .with_executor(&federation)
                .with_planner(PlannerSettings::disabled());
            let naive_rows = naive.answer(&parsed).expect("answers").1.fragment_rows;

            let planned = StaticPipeline::new(&ontology, &catalog, &db)
                .with_executor(&federation)
                .with_table_stats(&stats);

            group.bench_with_input(
                BenchmarkId::new(format!("naive/{workers}w"), disjuncts),
                &disjuncts,
                |b, _| {
                    b.iter(|| {
                        let (results, stats) = naive.answer(&parsed).expect("answers");
                        assert_eq!(stats.semi_joins_pushed, 0);
                        results
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("planned/{workers}w"), disjuncts),
                &disjuncts,
                |b, _| {
                    b.iter(|| {
                        let (results, stats) = planned.answer(&parsed).expect("answers");
                        assert!(stats.semi_joins_pushed >= 1, "no pushdown: {stats:?}");
                        assert!(
                            stats.fragment_rows < naive_rows,
                            "pushdown did not shrink fragment rows: {} !< {naive_rows}",
                            stats.fragment_rows
                        );
                        results
                    })
                },
            );
        }
    }
    group.finish();
}

/// Fixtures for the partitioned-federation workload: `sources` tables of
/// 64 rows each (above the advisor's partition floor), one `x:p` mapping
/// per table, and a `tagged` class of 320 subjects striding the whole key
/// range — a binding list bigger than the flat pushdown budget (256) but
/// within the partitioned budget at 4 workers (1024).
fn partitioned_fixtures(sources: usize) -> (Database, MappingCatalog) {
    const ROWS: i64 = 64;
    const TAGGED: i64 = 320;
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..sources {
        let rows = (0..ROWS)
            .map(|k| vec![Value::Int(i as i64 * ROWS + k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p-src{i}"),
                    Iri::new("http://x/p"),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/val/{b}"),
                )
                .with_key(vec!["a".into()]),
            )
            .expect("valid mapping");
    }
    let total = sources as i64 * ROWS;
    let rows = (0..TAGGED.min(total))
        .map(|k| vec![Value::Int(k * total / TAGGED.min(total))])
        .collect();
    db.put_table(
        "tagged",
        table_of("tagged", &[("a", ColumnType::Int)], rows).expect("valid table"),
    );
    catalog
        .add(
            MappingAssertion::class(
                "tagged",
                Iri::new("http://x/Tagged"),
                "SELECT a FROM tagged",
                TermMap::template("http://x/obj/{a}"),
            )
            .with_key(vec!["a".into()]),
        )
        .expect("valid mapping");
    (db, catalog)
}

/// Replicated vs auto-partitioned pools on the join-heavy workload. The
/// two backends must return the same answer set (the equivalence suites
/// pin this down across the whole corpus); here the asserts pin the row
/// traffic — on the 100-disjunct workload at 4 workers, partition routing
/// must ship strictly fewer fragment rows than replication.
fn bench_partitioned(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_partitioned");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for disjuncts in [10usize, 100] {
        let (db, catalog) = partitioned_fixtures(disjuncts);
        let stats = optique_relational::StatsCatalog::analyze(&db);
        let db = Arc::new(db);
        let parsed = parse_sparql(
            "SELECT ?a ?b WHERE { { ?a a x:Tagged } { ?a x:p ?b } }",
            &ns,
        )
        .expect("parses");

        for workers in [1usize, 4] {
            let replicated = Federation::replicated(Arc::clone(&db), workers);
            let over_replicas = StaticPipeline::new(&ontology, &catalog, &db)
                .with_executor(&replicated)
                .with_table_stats(&stats);
            let replicated_rows = over_replicas
                .answer(&parsed)
                .expect("answers")
                .1
                .fragment_rows;

            let auto = Federation::auto_partitioned(Arc::clone(&db), workers, &stats, &catalog);
            let over_shards = StaticPipeline::new(&ontology, &catalog, &db)
                .with_executor(&auto)
                .with_table_stats(&stats);

            group.bench_with_input(
                BenchmarkId::new(format!("replicated/{workers}w"), disjuncts),
                &disjuncts,
                |b, _| b.iter(|| over_replicas.answer(&parsed).expect("answers")),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("partitioned/{workers}w"), disjuncts),
                &disjuncts,
                |b, _| {
                    b.iter(|| {
                        let (results, stats) = over_shards.answer(&parsed).expect("answers");
                        if workers > 1 {
                            assert!(
                                stats.partitioned_fragments >= 1,
                                "the advisor must shard this workload: {stats:?}"
                            );
                        }
                        if workers == 4 && disjuncts == 100 {
                            assert!(
                                stats.fragment_rows < replicated_rows,
                                "partition routing must shrink fragment traffic: {} !< {replicated_rows}",
                                stats.fragment_rows
                            );
                        }
                        results
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_distributed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for disjuncts in [10usize, 100] {
        let (db, catalog) = fanout_fixtures(disjuncts);
        let db = Arc::new(db);
        let parsed = parse_sparql("SELECT ?a ?b WHERE { ?a x:p ?b }", &ns).expect("parses");
        let expected = disjuncts * ROWS_PER_TABLE as usize;

        for workers in [1usize, 4] {
            let federation = Federation::replicated(Arc::clone(&db), workers);
            let pipeline = StaticPipeline::new(&ontology, &catalog, &db).with_executor(&federation);
            group.bench_with_input(
                BenchmarkId::new(format!("{workers}w"), disjuncts),
                &disjuncts,
                |b, _| {
                    b.iter(|| {
                        let (results, stats) = pipeline.answer(&parsed).expect("answers");
                        assert_eq!(results.len(), expected);
                        assert_eq!(stats.fragments, disjuncts);
                        results
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench,
    bench_distributed,
    bench_semijoin,
    bench_partitioned
);
criterion_main!(benches);
