//! SPARQL front-end baseline: parse → PerfectRef rewrite → mapping
//! unfolding → relational execution latency at 1 / 10 / 100 BGP-atom
//! scales, so later optimisation PRs have a reference point.
//!
//! The workload is a join chain `?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . …` over a
//! synthetic catalog with one mapping per property (one unfolding
//! combination per disjunct — growth isolates per-atom pipeline cost, not
//! mapping fan-out).
//!
//! The `sparql_distributed` group measures the federated backend: one
//! property mapped through 10 / 100 sources unfolds to that many `UNION
//! ALL` disjuncts, which ship as plan fragments to 1 vs 4 ExaStream
//! workers (`StaticFederation`) — the single-worker run prices the wire
//! format and gateway overhead, the 4-worker run the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use optique::StaticFederation;
use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::Ontology;
use optique_rdf::{Iri, Namespaces};
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_sparql::{parse_sparql, StaticPipeline};

const ROWS_PER_TABLE: i64 = 8;

fn namespaces() -> Namespaces {
    let mut ns = Namespaces::with_w3c_defaults();
    ns.bind("x", "http://x/");
    ns
}

/// One table + one property mapping per chain position.
fn fixtures(atoms: usize) -> (Database, MappingCatalog) {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..atoms {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p{i}"),
                    Iri::new(format!("http://x/p{i}")),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    (db, catalog)
}

/// `SELECT ?v0 WHERE { ?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . … }` with `atoms`
/// chained triple patterns.
fn query_text(atoms: usize) -> String {
    let mut text = String::from("SELECT ?v0 WHERE { ");
    for i in 0..atoms {
        text.push_str(&format!("?v{i} x:p{i} ?v{} . ", i + 1));
    }
    text.push('}');
    text
}

fn bench(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for atoms in [1usize, 10, 100] {
        let (db, catalog) = fixtures(atoms);
        let text = query_text(atoms);

        group.bench_with_input(BenchmarkId::new("parse", atoms), &atoms, |b, _| {
            b.iter(|| parse_sparql(&text, &ns).expect("parses"))
        });

        let pipeline = StaticPipeline::new(&ontology, &catalog, &db);
        let parsed = parse_sparql(&text, &ns).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("rewrite_unfold_execute", atoms),
            &atoms,
            |b, _| {
                b.iter(|| {
                    let (results, _) = pipeline.answer(&parsed).expect("answers");
                    assert_eq!(results.len(), ROWS_PER_TABLE as usize);
                    results
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("end_to_end", atoms), &atoms, |b, _| {
            b.iter(|| {
                let query = parse_sparql(&text, &ns).expect("parses");
                pipeline.answer(&query).expect("answers")
            })
        });
    }
    group.finish();
}

/// One property mapped through `sources` distinct tables: the single-atom
/// BGP `?a x:p ?b` unfolds to `sources` disjuncts — the federation's unit
/// of distribution.
fn fanout_fixtures(sources: usize) -> (Database, MappingCatalog) {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..sources {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(i as i64 * ROWS_PER_TABLE + k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p-src{i}"),
                    Iri::new("http://x/p"),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    (db, catalog)
}

fn bench_distributed(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_distributed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for disjuncts in [10usize, 100] {
        let (db, catalog) = fanout_fixtures(disjuncts);
        let db = Arc::new(db);
        let parsed = parse_sparql("SELECT ?a ?b WHERE { ?a x:p ?b }", &ns).expect("parses");
        let expected = disjuncts * ROWS_PER_TABLE as usize;

        for workers in [1usize, 4] {
            let federation = StaticFederation::replicated(Arc::clone(&db), workers);
            let pipeline = StaticPipeline::new(&ontology, &catalog, &db).with_executor(&federation);
            group.bench_with_input(
                BenchmarkId::new(format!("{workers}w"), disjuncts),
                &disjuncts,
                |b, _| {
                    b.iter(|| {
                        let (results, stats) = pipeline.answer(&parsed).expect("answers");
                        assert_eq!(results.len(), expected);
                        assert_eq!(stats.fragments, disjuncts);
                        results
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench, bench_distributed);
criterion_main!(benches);
