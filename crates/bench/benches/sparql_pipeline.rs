//! SPARQL front-end baseline: parse → PerfectRef rewrite → mapping
//! unfolding → relational execution latency at 1 / 10 / 100 BGP-atom
//! scales, so later optimisation PRs have a reference point.
//!
//! The workload is a join chain `?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . …` over a
//! synthetic catalog with one mapping per property (one unfolding
//! combination per disjunct — growth isolates per-atom pipeline cost, not
//! mapping fan-out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use optique_mapping::{MappingAssertion, MappingCatalog, TermMap, UnfoldSettings};
use optique_ontology::Ontology;
use optique_rdf::{Iri, Namespaces};
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_rewrite::RewriteSettings;
use optique_sparql::{parse_sparql, StaticPipeline};

const ROWS_PER_TABLE: i64 = 8;

fn namespaces() -> Namespaces {
    let mut ns = Namespaces::with_w3c_defaults();
    ns.bind("x", "http://x/");
    ns
}

/// One table + one property mapping per chain position.
fn fixtures(atoms: usize) -> (Database, MappingCatalog) {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..atoms {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p{i}"),
                    Iri::new(format!("http://x/p{i}")),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    (db, catalog)
}

/// `SELECT ?v0 WHERE { ?v0 x:p0 ?v1 . ?v1 x:p1 ?v2 . … }` with `atoms`
/// chained triple patterns.
fn query_text(atoms: usize) -> String {
    let mut text = String::from("SELECT ?v0 WHERE { ");
    for i in 0..atoms {
        text.push_str(&format!("?v{i} x:p{i} ?v{} . ", i + 1));
    }
    text.push('}');
    text
}

fn bench(c: &mut Criterion) {
    let ns = namespaces();
    let ontology = Ontology::new();
    let mut group = c.benchmark_group("sparql_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for atoms in [1usize, 10, 100] {
        let (db, catalog) = fixtures(atoms);
        let text = query_text(atoms);

        group.bench_with_input(BenchmarkId::new("parse", atoms), &atoms, |b, _| {
            b.iter(|| parse_sparql(&text, &ns).expect("parses"))
        });

        let pipeline = StaticPipeline {
            ontology: &ontology,
            mappings: &catalog,
            db: &db,
            rewrite_settings: RewriteSettings::default(),
            unfold_settings: UnfoldSettings::default(),
        };
        let parsed = parse_sparql(&text, &ns).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("rewrite_unfold_execute", atoms),
            &atoms,
            |b, _| {
                b.iter(|| {
                    let (results, _) = pipeline.answer(&parsed).expect("answers");
                    assert_eq!(results.len(), ROWS_PER_TABLE as usize);
                    results
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("end_to_end", atoms), &atoms, |b, _| {
            b.iter(|| {
                let query = parse_sparql(&text, &ns).expect("parses");
                pipeline.answer(&query).expect("answers")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
