//! E1 report: tuples/sec vs worker-node count (paper: 1–128 nodes,
//! up to 10M tuples/sec). Prints the EXPERIMENTS.md table.

use std::sync::Arc;
use std::time::Instant;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::metrics::format_rate;
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

const QUERY: &str = "SELECT sensor_id, COUNT(*) AS n, AVG(value) AS mean, MAX(value) AS mx \
     FROM S_Msmt GROUP BY sensor_id";

fn main() {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(
        &mut db,
        &FleetConfig {
            turbines: 100,
            assemblies_per_turbine: 4,
            sensors_per_assembly: 5,
            seed: 3,
        },
    )
    .unwrap();
    let config = StreamConfig {
        sensor_ids: sensors,
        start_ms: 0,
        duration_ms: 120_000,
        period_ms: 1_000,
        seed: 3,
        ramp_failures: 4,
        correlated_pairs: 2,
        hot_bursts: 2,
    };
    optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    let tuples = db.table("S_Msmt").unwrap().len();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    println!("# E1 scaling_nodes — {tuples} stream tuples, host cores: {cores}");
    println!("| nodes | elapsed/query | tuples/sec | speedup |");
    println!("|------:|--------------:|-----------:|--------:|");
    let mut base = None;
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let stream = (**db.table("S_Msmt").unwrap()).clone();
        let shards = hash_partition(&stream, 1, nodes);
        let cluster = Arc::new(Cluster::provision(nodes, |id| {
            let mut wdb = Database::new();
            wdb.put_table("S_Msmt", shards[id].clone());
            wdb
        }));
        let reps = 7u32;
        // Warm-up.
        cluster.parallel_query(QUERY).unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            cluster.parallel_query(QUERY).unwrap();
        }
        let elapsed = start.elapsed() / reps;
        let rate = tuples as f64 / elapsed.as_secs_f64();
        let speedup = match base {
            None => {
                base = Some(elapsed.as_secs_f64());
                1.0
            }
            Some(b) => b / elapsed.as_secs_f64(),
        };
        println!(
            "| {nodes} | {elapsed:?} | {} | {speedup:.2}x |",
            format_rate(rate)
        );
    }
}
