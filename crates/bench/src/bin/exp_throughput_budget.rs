//! E10 report: byte-throughput budget against the paper's 30 GB/day stream
//! and 10 TB/day total-processing figures.

use std::sync::Arc;
use std::time::Instant;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

/// Nominal encoded size of one measurement tuple (ts i64 + sensor i64 +
/// value f64 + event tag byte), matching the paper's wire-format ballpark.
const TUPLE_BYTES: u64 = 25;

fn main() {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(
        &mut db,
        &FleetConfig {
            turbines: 100,
            assemblies_per_turbine: 4,
            sensors_per_assembly: 5,
            seed: 4,
        },
    )
    .unwrap();
    let config = StreamConfig {
        sensor_ids: sensors,
        start_ms: 0,
        duration_ms: 120_000,
        period_ms: 1_000,
        seed: 4,
        ramp_failures: 4,
        correlated_pairs: 2,
        hot_bursts: 2,
    };
    optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    let tuples = db.table("S_Msmt").unwrap().len() as u64;

    println!("# E10 throughput budget (nominal {TUPLE_BYTES} B/tuple)");
    println!("| nodes | tuples/sec | GB/day | ×30 GB/day streams | ×10 TB/day total |");
    println!("|------:|-----------:|-------:|-------------------:|-----------------:|");
    for nodes in [1usize, 8, 64, 128] {
        let stream = (**db.table("S_Msmt").unwrap()).clone();
        let shards = hash_partition(&stream, 1, nodes);
        let cluster = Arc::new(Cluster::provision(nodes, |id| {
            let mut wdb = Database::new();
            wdb.put_table("S_Msmt", shards[id].clone());
            wdb
        }));
        let reps = 7u32;
        cluster
            .parallel_query("SELECT sensor_id, COUNT(*) FROM S_Msmt GROUP BY sensor_id")
            .unwrap();
        let start = Instant::now();
        for _ in 0..reps {
            cluster
                .parallel_query("SELECT sensor_id, COUNT(*) FROM S_Msmt GROUP BY sensor_id")
                .unwrap();
        }
        let elapsed = start.elapsed() / reps;
        let rate = tuples as f64 / elapsed.as_secs_f64();
        let bytes_day = rate * TUPLE_BYTES as f64 * 86_400.0;
        let gb_day = bytes_day / 1e9;
        println!(
            "| {nodes} | {rate:.0} | {gb_day:.0} | {:.1}x | {:.2}x |",
            gb_day / 30.0,
            bytes_day / 1e13
        );
    }
    println!("\n(the paper's 10 TB/day figure is a 128-VM cluster total; the single-box");
    println!(" simulation reports how far one host gets and the scaling shape)");
}
