//! Tracing-overhead smoke check: the span recorder must be cheap enough
//! to leave on. Runs the 100-disjunct fan-out workload (one property
//! mapped through 100 tables, the federation's unit of distribution)
//! through the full platform pipeline — traced and untraced — and fails
//! (nonzero exit) if the traced median is more than 10 % slower.
//!
//! CI runs this after the test suites; locally:
//! `cargo run --release -p optique-bench --bin exp_tracing_overhead`.

use std::time::Instant;

use optique::OptiquePlatform;
use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::Ontology;
use optique_rdf::Iri;
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_siemens::SiemensDeployment;

/// Fan-out width: disjuncts per query (the paper-scale UNION ALL).
const SOURCES: usize = 100;
/// Rows per source table.
const ROWS_PER_TABLE: i64 = 64;
/// Timed samples per arm.
const SAMPLES: usize = 40;
/// Workers the federated runs ship to.
const WORKERS: usize = 4;
/// Largest tolerated traced ÷ untraced median ratio.
const MAX_RATIO: f64 = 1.10;

/// One property mapped through `SOURCES` distinct tables: the single-atom
/// BGP unfolds to `SOURCES` disjuncts (same shape as the sparql_pipeline
/// bench's fan-out fixture).
fn fanout_platform() -> OptiquePlatform {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..SOURCES {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(i as i64 * ROWS_PER_TABLE + k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p-src{i}"),
                    Iri::new("http://x/p"),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    // The stream-side assets are unused by static queries; borrow the
    // Siemens ones rather than hand-rolling a mapping.
    let siemens = SiemensDeployment::small();
    OptiquePlatform::deploy(
        db,
        Ontology::new(),
        siemens.namespaces,
        catalog,
        siemens.stream_to_rdf,
    )
}

const QUERY: &str = "SELECT ?a ?b WHERE { ?a <http://x/p> ?b }";

/// Median end-to-end latency of `SAMPLES` cold-cache runs, in µs. The BGP
/// cache is invalidated per run so every sample pays the full rewrite →
/// unfold → execute pipeline; worker plan caches stay warm in both arms.
fn median_us(platform: &OptiquePlatform) -> u64 {
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        platform.bgp_cache().invalidate();
        let started = Instant::now();
        let results = platform
            .query_static_distributed(QUERY, WORKERS)
            .expect("workload runs");
        samples.push(started.elapsed().as_micros() as u64);
        assert_eq!(results.len(), (SOURCES as i64 * ROWS_PER_TABLE) as usize);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let traced = fanout_platform();
    let untraced = fanout_platform();
    untraced.set_tracing(false);

    // Warm both pools (federation build + worker plan caches) outside the
    // timed region, then interleave the arms so drift hits both equally.
    for p in [&traced, &untraced] {
        p.query_static_distributed(QUERY, WORKERS).expect("warmup");
    }
    let untraced_us = median_us(&untraced);
    let traced_us = median_us(&traced);

    let ratio = traced_us as f64 / untraced_us.max(1) as f64;
    println!("# tracing overhead — {SOURCES}-disjunct fan-out, {WORKERS} workers");
    println!("| arm | median µs |");
    println!("|-----|----------:|");
    println!("| untraced | {untraced_us} |");
    println!("| traced   | {traced_us} |");
    println!("\ntraced/untraced ratio: {ratio:.3} (limit {MAX_RATIO})");

    if ratio > MAX_RATIO {
        eprintln!(
            "FAIL: tracing costs more than {:.0} %",
            (MAX_RATIO - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!("OK: tracing overhead within budget");
}
