//! Server-throughput smoke check: the concurrent serving layer must turn
//! client concurrency into throughput. Closed-loop clients (each waits for
//! its answer, thinks ~4 ms, submits again) drive the 100-disjunct fan-out
//! workload through `optique::server` at 1, 8 and 64 clients; every
//! request uses a fresh constant so the BGP cache cannot collapse the work.
//! Fails (nonzero exit) if 8-client throughput does not exceed 1-client —
//! the serving layer's overlap of think time with execution is exactly
//! what a single-threaded front door cannot do.
//!
//! CI runs this after the test suites; locally:
//! `cargo run --release -p optique-bench --bin exp_server_throughput`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use optique::{OptiquePlatform, Server, ServerConfig};
use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::Ontology;
use optique_rdf::Iri;
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_siemens::SiemensDeployment;

/// Fan-out width: disjuncts per query (the paper-scale UNION ALL).
const SOURCES: usize = 100;
/// Rows per source table (also the number of distinct `b` constants).
const ROWS_PER_TABLE: i64 = 64;
/// Client fleet sizes measured, in order.
const FLEETS: [usize; 3] = [1, 8, 64];
/// Worker threads draining the server queue.
const WORKERS: usize = 8;
/// Measurement window per fleet size.
const WINDOW: Duration = Duration::from_millis(1_500);
/// Per-request client think time — the idle gap concurrency overlaps.
const THINK: Duration = Duration::from_millis(4);

/// One property mapped through `SOURCES` distinct tables (the same
/// fan-out fixture as the tracing-overhead bench).
fn fanout_platform() -> OptiquePlatform {
    let mut db = Database::new();
    let mut catalog = MappingCatalog::new();
    for i in 0..SOURCES {
        let rows = (0..ROWS_PER_TABLE)
            .map(|k| vec![Value::Int(i as i64 * ROWS_PER_TABLE + k), Value::Int(k)])
            .collect();
        db.put_table(
            format!("t{i}"),
            table_of(
                &format!("t{i}"),
                &[("a", ColumnType::Int), ("b", ColumnType::Int)],
                rows,
            )
            .expect("valid table"),
        );
        catalog
            .add(
                MappingAssertion::property(
                    format!("p-src{i}"),
                    Iri::new("http://x/p"),
                    format!("SELECT a, b FROM t{i}"),
                    TermMap::template("http://x/obj/{a}"),
                    TermMap::template("http://x/obj/{b}"),
                )
                .with_key(vec!["a".into(), "b".into()]),
            )
            .expect("valid mapping");
    }
    let siemens = SiemensDeployment::small();
    OptiquePlatform::deploy(
        db,
        Ontology::new(),
        siemens.namespaces,
        catalog,
        siemens.stream_to_rdf,
    )
}

/// The `n`-th request text: a constant-anchored fan-out probe. Each `b`
/// constant names one row per source table (100 answer rows), and cycling
/// the constant gives every request a distinct cache key, so throughput
/// measures real pipeline work rather than cache hits.
fn request_text(n: u64) -> String {
    let b = n % ROWS_PER_TABLE as u64;
    format!("SELECT ?a WHERE {{ ?a <http://x/p> <http://x/obj/{b}> }}")
}

/// Queries per second sustained by `clients` closed-loop clients.
fn measure(server: &Server, clients: usize) -> f64 {
    let sequence = AtomicU64::new(0);
    let completed = AtomicUsize::new(0);
    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = server.client(&format!("client-{c}"));
            let sequence = &sequence;
            let completed = &completed;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let deadline = Instant::now() + WINDOW;
                while Instant::now() < deadline {
                    let text = request_text(sequence.fetch_add(1, Ordering::Relaxed));
                    let results = client.query(&text).expect("workload runs");
                    assert_eq!(results.len(), SOURCES);
                    completed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(THINK);
                }
            });
        }
        barrier.wait();
    });
    completed.load(Ordering::Relaxed) as f64 / WINDOW.as_secs_f64()
}

fn main() {
    let platform = Arc::new(fanout_platform());
    let server = Server::serve(
        Arc::clone(&platform),
        ServerConfig {
            workers: WORKERS,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    );
    // Warm the pipeline (mapping index, planner stats) outside the window.
    server
        .client("warmup")
        .query(&request_text(0))
        .expect("warmup");

    println!("# server throughput — {SOURCES}-disjunct fan-out, {WORKERS} server workers");
    println!("| clients | queries/s |");
    println!("|--------:|----------:|");
    let mut qps = Vec::new();
    for &clients in &FLEETS {
        let rate = measure(&server, clients);
        println!("| {clients} | {rate:.1} |");
        qps.push(rate);
    }
    let snap = platform.metrics_snapshot();
    println!(
        "\nadmitted {} / completed {} / shed {}",
        snap.counter("server.admitted").unwrap_or(0),
        snap.counter("server.completed").unwrap_or(0),
        snap.counter("server.shed").unwrap_or(0),
    );

    if qps[1] <= qps[0] {
        eprintln!(
            "FAIL: 8-client throughput {:.1} q/s does not exceed 1-client {:.1} q/s",
            qps[1], qps[0]
        );
        std::process::exit(1);
    }
    println!(
        "OK: 8 clients sustain {:.2}x the 1-client rate",
        qps[1] / qps[0].max(f64::EPSILON)
    );
}
