//! E2 report: sustained concurrent diagnostic tasks (paper: >1,000 tasks,
//! up to 1,024). Prints aggregate throughput and per-query latency.

use std::sync::Arc;
use std::time::Instant;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::gateway::Gateway;
use optique_exastream::metrics::format_rate;
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

fn main() {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(&mut db, &FleetConfig::small()).unwrap();
    optique_siemens::streamgen::build_stream(&mut db, &StreamConfig::small(sensors)).unwrap();
    let tuples = db.table("S_Msmt").unwrap().len();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let shards = hash_partition(&stream, 1, workers);
    let cluster = Arc::new(Cluster::provision(workers, |id| {
        let mut wdb = Database::new();
        wdb.put_table("S_Msmt", shards[id].clone());
        wdb
    }));

    println!("# E2 concurrent_tasks — {workers} workers, {tuples} stream tuples");
    println!("| queries | round elapsed | queries/sec | tuples/sec (aggregate) |");
    println!("|--------:|--------------:|------------:|-----------------------:|");
    for queries in [1usize, 4, 16, 64, 256, 1024] {
        let gateway = Gateway::new(Arc::clone(&cluster));
        for i in 0..queries {
            gateway
                .register(
                    format!(
                        "SELECT COUNT(*) AS n, MAX(value) AS mx FROM S_Msmt WHERE sensor_id % 16 = {}",
                        i % 16
                    ),
                    1.0,
                )
                .unwrap();
        }
        gateway.run_all(); // warm-up
        let start = Instant::now();
        let results = gateway.run_all();
        let elapsed = start.elapsed();
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        let qps = queries as f64 / elapsed.as_secs_f64();
        // Each query scans ~its shard of the stream.
        let processed = (queries * tuples / workers) as f64 / elapsed.as_secs_f64();
        println!(
            "| {queries} | {elapsed:?} | {qps:.0} | {} |",
            format_rate(processed)
        );
    }
}
