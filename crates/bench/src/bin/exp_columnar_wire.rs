//! Columnar-wire report: bytes shipped and decode throughput for the
//! dictionary-encoded columnar `ResultBatch` wire vs the legacy row-major
//! form, over a federated workload shape — 100 unfolded disjuncts answered
//! by 4 workers, each shipping an IRI-heavy answer batch back to the
//! gateway. Asserts the columnar wire is strictly smaller.

use std::time::Instant;

use optique_exastream::metrics::format_rate;
use optique_relational::{ColumnType, ResultBatch, Value};

const DISJUNCTS: usize = 100;
const WORKERS: usize = 4;
const ROWS_PER_BATCH: usize = 64;

/// One worker's answer batch for one unfolded disjunct: minted subject and
/// assembly IRIs (text repeats heavily across rows, as mapping templates
/// produce), a float reading and a timestamp.
fn batch(disjunct: usize, worker: usize) -> ResultBatch {
    let columns = vec![
        ("s".to_string(), ColumnType::Text),
        ("assembly".to_string(), ColumnType::Text),
        ("value".to_string(), ColumnType::Float),
        ("ts".to_string(), ColumnType::Timestamp),
    ];
    let rows = (0..ROWS_PER_BATCH)
        .map(|r| {
            vec![
                Value::text(format!(
                    "http://siemens.example/data#sensor/{disjunct}/{}",
                    r % 16
                )),
                Value::text(format!("http://siemens.example/data#assembly/{}", r % 4)),
                Value::Float(60.0 + (r as f64) * 0.25),
                Value::Timestamp((worker * ROWS_PER_BATCH + r) as i64 * 1_000),
            ]
        })
        .collect();
    ResultBatch::from_rows(columns, rows)
}

fn main() {
    let batches: Vec<ResultBatch> = (0..DISJUNCTS)
        .flat_map(|d| (0..WORKERS).map(move |w| batch(d, w)))
        .collect();
    let total_rows: usize = batches.iter().map(ResultBatch::len).sum();

    let columnar: Vec<String> = batches.iter().map(ResultBatch::encode).collect();
    let row_major: Vec<String> = batches
        .iter()
        .map(|b| b.encode_row_major().unwrap())
        .collect();
    let columnar_bytes: usize = columnar.iter().map(String::len).sum();
    let row_major_bytes: usize = row_major.iter().map(String::len).sum();

    // Decode throughput over the whole shipment, decoded back to rows the
    // way the gateway materializes answers.
    let reps = 9u32;
    let rate = |wires: &[String]| {
        let start = Instant::now();
        for _ in 0..reps {
            for wire in wires {
                let rows = ResultBatch::decode(wire).unwrap().to_rows().unwrap();
                assert_eq!(rows.len(), ROWS_PER_BATCH);
            }
        }
        (total_rows * reps as usize) as f64 / start.elapsed().as_secs_f64()
    };
    let columnar_rate = rate(&columnar);
    let row_major_rate = rate(&row_major);

    println!(
        "# exp_columnar_wire — {DISJUNCTS} disjuncts x {WORKERS} workers, \
         {total_rows} rows shipped"
    );
    println!("| wire | bytes | bytes/row | decode rows/sec |");
    println!("|------|------:|----------:|----------------:|");
    for (name, bytes, rate) in [
        ("columnar (dict ids)", columnar_bytes, columnar_rate),
        ("row-major (lexical)", row_major_bytes, row_major_rate),
    ] {
        println!(
            "| {name} | {bytes} | {:.1} | {} |",
            bytes as f64 / total_rows as f64,
            format_rate(rate)
        );
    }
    println!(
        "columnar/row-major size ratio: {:.3}",
        columnar_bytes as f64 / row_major_bytes as f64
    );

    assert!(
        columnar_bytes < row_major_bytes,
        "columnar wire must ship fewer bytes: {columnar_bytes} vs {row_major_bytes}"
    );
}
