//! Novelty-overlay write-latency smoke check: incremental writes must
//! beat stop-the-world rebuilds by a wide margin on a write-heavy mix.
//!
//! A closed-loop 90/10 read/write workload (every 10th op appends one row
//! to a large base table, the rest answer a cached SPARQL probe) runs at
//! 1 and 4 client threads under both write policies on an otherwise
//! identical deployment. Under `StopTheWorld` every insert clones and
//! re-analyzes the big table inside the critical section; under the
//! default `NoveltyOverlay` the row lands in the in-memory novelty log
//! and the base catalog `Arc` stays put. Fails (nonzero exit) unless the
//! overlay's write p95 beats stop-the-world's by at least [`GATE`]× at
//! every fleet size. The deferred cost — one `merge_now` fold at the end
//! — is reported alongside, so the trade is visible, not hidden.
//!
//! CI runs this after the test suites; locally:
//! `cargo run --release -p optique-bench --bin exp_novelty_writes`.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use optique::{OptiquePlatform, WritePolicy};
use optique_mapping::{MappingAssertion, MappingCatalog, TermMap};
use optique_ontology::Ontology;
use optique_rdf::Iri;
use optique_relational::{table::table_of, ColumnType, Database, Value};
use optique_siemens::SiemensDeployment;

/// Rows in the big table every write path has to cope with — large enough
/// that a stop-the-world clone+analyze is decisively more work than an
/// overlay append.
const BASE_ROWS: i64 = 100_000;
/// Ops per client thread; every 10th is a write (the 90/10 mix).
const OPS: usize = 200;
/// Client fleet sizes measured, in order.
const FLEETS: [usize; 2] = [1, 4];
/// Required overlay-vs-stop-the-world write-p95 advantage.
const GATE: u64 = 5;

const PROBE_QUERY: &str = "SELECT ?x WHERE { ?x a <http://x/Probe> }";

/// A deployment with one big relational table (the write target) and one
/// small mapped table (the read probe — cheap, so the loop is genuinely
/// write-bound under stop-the-world).
fn bench_platform() -> OptiquePlatform {
    let mut db = Database::new();
    db.put_table(
        "readings",
        table_of(
            "readings",
            &[("rid", ColumnType::Int), ("val", ColumnType::Int)],
            (0..BASE_ROWS)
                .map(|k| vec![Value::Int(k), Value::Int(k % 997)])
                .collect(),
        )
        .expect("valid table"),
    );
    db.put_table(
        "probes",
        table_of(
            "probes",
            &[("pid", ColumnType::Int)],
            (0..64).map(|k| vec![Value::Int(k)]).collect(),
        )
        .expect("valid table"),
    );
    let mut catalog = MappingCatalog::new();
    catalog
        .add(
            MappingAssertion::class(
                "probe",
                Iri::new("http://x/Probe"),
                "SELECT pid FROM probes",
                TermMap::template("http://x/obj/{pid}"),
            )
            .with_key(vec!["pid".into()]),
        )
        .expect("valid mapping");
    catalog
        .add(
            MappingAssertion::property(
                "reading-val",
                Iri::new("http://x/hasVal"),
                "SELECT rid, val FROM readings",
                TermMap::template("http://x/reading/{rid}"),
                TermMap::column("val", optique_rdf::Datatype::Integer),
            )
            .with_key(vec!["rid".into()]),
        )
        .expect("valid mapping");
    let siemens = SiemensDeployment::small();
    OptiquePlatform::deploy(
        db,
        Ontology::new(),
        siemens.namespaces,
        catalog,
        siemens.stream_to_rdf,
    )
}

fn p95(latencies: &mut [u64]) -> u64 {
    latencies.sort_unstable();
    latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)]
}

/// Runs the 90/10 closed loop at `clients` threads under `policy`;
/// returns `(write p95 µs, read p95 µs, merge µs)`.
fn run(policy: WritePolicy, clients: usize) -> (u64, u64, u64) {
    let p = Arc::new(bench_platform());
    p.set_write_policy(policy).expect("policy switch");
    // Isolate pure append latency: the fold runs once at the end, metered
    // separately, instead of ambushing a mid-window write.
    p.set_merge_threshold(usize::MAX / 2);
    p.query_static(PROBE_QUERY).expect("warmup");
    let writes = Mutex::new(Vec::new());
    let reads = Mutex::new(Vec::new());
    let barrier = Barrier::new(clients);
    std::thread::scope(|scope| {
        for t in 0..clients {
            let p = &p;
            let writes = &writes;
            let reads = &reads;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut my_writes = Vec::new();
                let mut my_reads = Vec::new();
                barrier.wait();
                for i in 0..OPS {
                    let started = Instant::now();
                    if i % 10 == 0 {
                        let rid = BASE_ROWS + (t * OPS + i) as i64;
                        let row = vec![Value::Int(rid), Value::Int(rid % 997)];
                        assert_eq!(p.insert_static("readings", vec![row]).unwrap(), 1);
                        my_writes.push(started.elapsed().as_micros() as u64);
                    } else {
                        let results = p.query_static(PROBE_QUERY).unwrap();
                        assert_eq!(results.len(), 64);
                        my_reads.push(started.elapsed().as_micros() as u64);
                    }
                }
                writes.lock().unwrap().extend(my_writes);
                reads.lock().unwrap().extend(my_reads);
            });
        }
    });
    let merge_started = Instant::now();
    let folded = p.merge_now().expect("merge");
    let merge_us = merge_started.elapsed().as_micros() as u64;
    if policy == WritePolicy::NoveltyOverlay {
        assert_eq!(
            folded,
            clients * OPS / 10,
            "every append folds exactly once"
        );
    }
    // The folded catalog carries every write either way.
    let total = p.db().table("readings").expect("readings").rows.len();
    assert_eq!(total, BASE_ROWS as usize + clients * OPS / 10);
    let write_p95 = p95(&mut writes.lock().unwrap());
    let read_p95 = p95(&mut reads.lock().unwrap());
    (write_p95, read_p95, merge_us)
}

fn main() {
    println!(
        "# novelty writes — 90/10 closed loop over a {BASE_ROWS}-row table, \
         {OPS} ops/client"
    );
    println!("| clients | policy | write p95 (µs) | read p95 (µs) | merge (µs) |");
    println!("|--------:|:-------|---------------:|--------------:|-----------:|");
    let mut ok = true;
    for &clients in &FLEETS {
        let (stw_w, stw_r, stw_m) = run(WritePolicy::StopTheWorld, clients);
        let (nov_w, nov_r, nov_m) = run(WritePolicy::NoveltyOverlay, clients);
        println!("| {clients} | stop-the-world | {stw_w} | {stw_r} | {stw_m} |");
        println!("| {clients} | novelty-overlay | {nov_w} | {nov_r} | {nov_m} |");
        let speedup = stw_w as f64 / nov_w.max(1) as f64;
        println!("\noverlay write p95 is {speedup:.1}x faster at {clients} client(s)\n");
        if nov_w.saturating_mul(GATE) > stw_w {
            eprintln!(
                "FAIL: overlay write p95 {nov_w} µs not {GATE}x under \
                 stop-the-world {stw_w} µs at {clients} client(s)"
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("OK: overlay writes beat stop-the-world by >= {GATE}x at every fleet size");
}
