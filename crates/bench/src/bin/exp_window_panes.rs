//! Pane-aggregation tick-latency smoke check: incremental panes must keep
//! warm tick latency flat as the window range grows, while full-window
//! rescans pay for the whole range on every tick.
//!
//! One additive aggregate query (`SUM ≥ threshold` — COUNT/SUM/AVG advance
//! the cached sliding accumulator by O(slide) pane add/subtract per tick,
//! independent of range) runs over a 1 Hz measurement stream at window
//! ranges of 2 s, 20 s and 200 s with a fixed 1 s slide, distributed at 1
//! and 4 workers, under both execution modes on otherwise identical
//! deployments: the default pane path, and full rescans via the
//! `set_pane_aggregation(false)` kill switch. After warmup, the median
//! warm-tick latency is measured over a run of consecutive pulse instants.
//!
//! Fails (nonzero exit) unless, at every worker count, pane tick latency
//! grows at most [`GATE`]× per 10× range step (medians below [`FLOOR_US`]
//! are clamped first — at microsecond scale, scheduler noise would
//! otherwise dominate the ratio). Rescan latencies are reported alongside
//! so the O(range) vs O(slide) trade is visible, not hidden.
//!
//! CI runs this after the test suites; locally:
//! `cargo run --release -p optique-bench --bin exp_window_panes`.

use std::time::Instant;

use optique::OptiquePlatform;
use optique_relational::{table::table_of, ColumnType, Value};
use optique_siemens::SiemensDeployment;

/// Window ranges measured (seconds), in 10× steps; the slide is 1 s.
const RANGES_S: [i64; 3] = [2, 20, 200];
/// Worker counts measured.
const WORKERS: [usize; 2] = [1, 4];
/// Streamed sensors (1 Hz each).
const SENSORS: i64 = 16;
/// Stream duration in seconds — long enough that the largest window plus
/// the measured tick run stays fully inside the data.
const DURATION_S: i64 = 260;
/// First stream timestamp (the pulse grid's origin).
const START_MS: i64 = 600_000;
/// Warmup ticks before measuring (first touch folds the base into panes).
const WARMUP: usize = 3;
/// Measured warm ticks per configuration.
const TICKS: usize = 20;
/// Allowed pane-latency growth per 10× range step.
const GATE: u64 = 2;
/// Medians below this are measurement noise, not signal: clamp before
/// computing growth ratios.
const FLOOR_US: u64 = 300;

/// The additive aggregate program at window range `range_s`.
fn program(range_s: i64) -> String {
    format!(
        "PREFIX sie: <http://siemens.example/ontology#>\n\
         PREFIX : <http://siemens.example/ontology#>\n\
         CREATE STREAM S_out AS\n\
         CONSTRUCT GRAPH NOW {{ ?c2 a :HotSum }}\n\
         FROM STREAM S_Msmt [NOW-\"PT{range_s}S\"^^xsd:duration, NOW]->\"PT1S\"^^xsd:duration\n\
         USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"PT1S\"\n\
         WHERE {{ ?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2. }}\n\
         SEQUENCE BY StdSeq AS seq\n\
         HAVING SUM(?c2, sie:hasValue) >= 100\n"
    )
}

/// The Siemens deployment with `S_Msmt` replaced by a long whole-valued
/// 1 Hz stream (whole values keep float sums exact; the generated small
/// stream only covers 60 s — far short of a 200 s window).
fn bench_platform() -> OptiquePlatform {
    let mut d = SiemensDeployment::small();
    let rows = (0..DURATION_S)
        .flat_map(|sec| {
            (0..SENSORS).map(move |sensor| {
                vec![
                    Value::Timestamp(START_MS + sec * 1_000),
                    Value::Int(sensor),
                    Value::Float((40 + (sec + sensor * 7) % 50) as f64),
                    Value::Null,
                ]
            })
        })
        .collect();
    d.db.put_table(
        "S_Msmt",
        table_of(
            "S_Msmt",
            &[
                ("ts", ColumnType::Timestamp),
                ("sensor_id", ColumnType::Int),
                ("value", ColumnType::Float),
                ("event", ColumnType::Text),
            ],
            rows,
        )
        .expect("valid stream table"),
    );
    OptiquePlatform::deploy(d.db, d.ontology, d.namespaces, d.mappings, d.stream_to_rdf)
}

fn median(latencies: &mut [u64]) -> u64 {
    latencies.sort_unstable();
    latencies[latencies.len() / 2]
}

/// Ticks one configuration and returns the median warm-tick latency in µs.
/// Windows are fully inside the stream for every measured instant, and the
/// pane counters are cross-checked against the requested mode.
fn run(range_s: i64, workers: usize, panes: bool) -> u64 {
    let p = bench_platform();
    p.register_starql_distributed(&program(range_s), workers)
        .expect("registration");
    if !panes {
        p.set_pane_aggregation(false);
    }
    let first = START_MS + range_s * 1_000;
    for k in 0..WARMUP {
        p.tick_all(first + k as i64 * 1_000).expect("warmup tick");
    }
    let mut lat = Vec::with_capacity(TICKS);
    for k in 0..TICKS {
        let instant = first + (WARMUP + k) as i64 * 1_000;
        let started = Instant::now();
        let out = p.tick_all(instant).expect("tick");
        lat.push(started.elapsed().as_micros() as u64);
        assert!(out[0].1.tuples_in_window > 0 || !panes || out[0].1.pane_hits > 0);
    }
    let panel = &p.dashboard().panels[0];
    if panes {
        assert!(
            panel.pane_hits > 0,
            "pane mode must answer warm ticks from panes: {panel:?}"
        );
    } else {
        assert_eq!(
            panel.pane_hits + panel.pane_misses,
            0,
            "rescan mode must not touch panes: {panel:?}"
        );
    }
    median(&mut lat)
}

fn main() {
    println!(
        "# window panes — {SENSORS}-sensor 1 Hz stream over {DURATION_S} s, \
         1 s slide, median of {TICKS} warm ticks"
    );
    println!("| workers | range (s) | pane (µs) | rescan (µs) |");
    println!("|--------:|----------:|----------:|------------:|");
    let mut ok = true;
    for &workers in &WORKERS {
        let mut prev_pane: Option<u64> = None;
        for &range_s in &RANGES_S {
            let pane = run(range_s, workers, true);
            let rescan = run(range_s, workers, false);
            println!("| {workers} | {range_s} | {pane} | {rescan} |");
            if let Some(prev) = prev_pane {
                // Clamp both sides to the noise floor before comparing:
                // sub-floor medians are indistinguishable timer jitter.
                let (prev, next) = (prev.max(FLOOR_US), pane.max(FLOOR_US));
                if next > prev.saturating_mul(GATE) {
                    eprintln!(
                        "FAIL: pane median grew {prev} -> {next} µs (> {GATE}x) \
                         at a 10x range step, {workers} worker(s)"
                    );
                    ok = false;
                }
            }
            prev_pane = Some(pane);
        }
        println!();
    }
    if !ok {
        std::process::exit(1);
    }
    println!("OK: pane tick latency grew <= {GATE}x per 10x range step at every fleet size");
}
