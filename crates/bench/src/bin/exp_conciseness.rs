//! E3 report: one STARQL query vs the fleet of low-level queries it
//! replaces, across the 20-task Siemens catalog (paper §1: fleets of
//! hundreds of queries; 80 % of diagnostic time spent authoring them).

use optique::OptiquePlatform;
use optique_siemens::catalog::TaskQuery;
use optique_siemens::{diagnostic_tasks, SiemensDeployment};

fn main() {
    let platform = OptiquePlatform::from_siemens(SiemensDeployment::small());
    println!("# E3 conciseness — STARQL vs unfolded fleet");
    println!("| task | STARQL chars | fleet queries | fleet chars | expansion |");
    println!("|------|-------------:|--------------:|------------:|----------:|");
    let mut total_queries = 0usize;
    let mut total_ratio = 0.0f64;
    let mut n = 0usize;
    for task in diagnostic_tasks() {
        let TaskQuery::StarQl(text) = &task.query else {
            continue;
        };
        let id = platform.register_task(&task).expect("registers");
        let report = platform.fleet_report(id, text).expect("registered");
        let ratio = report.fleet_chars as f64 / report.starql_chars as f64;
        println!(
            "| {} | {} | {} | {} | {:.1}x |",
            task.id, report.starql_chars, report.fleet_queries, report.fleet_chars, ratio
        );
        total_queries += report.fleet_queries;
        total_ratio += ratio;
        n += 1;
    }
    println!(
        "\n{n} STARQL tasks stand for {total_queries} low-level queries \
         (mean text expansion {:.1}x)",
        total_ratio / n as f64
    );
}
