//! E9 report: LSH vs exact Pearson — runtime, planted-pair detection, and
//! recall against the exhaustive baseline.
//!
//! Windows here are high-entropy (independent noise per sensor) with a few
//! planted correlated families — the regime where banding prunes; a fleet
//! sharing one strong common-mode signal degenerates to all-pairs and is
//! measured separately by the `lsh_correlation` Criterion bench.

use std::time::Instant;

use optique_lsh::CorrelationIndex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    println!("# E9 lsh_correlation (64-sample windows, 16 bands x 8 bits)");
    println!("| sensors | exact time | LSH time | speedup | planted found | recall vs exact |");
    println!("|--------:|-----------:|---------:|--------:|--------------:|----------------:|");
    for n_sensors in [100usize, 500, 2000] {
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(23);
        let mut index = CorrelationIndex::new(dim, 16, 8, 5);
        // Planted: 4 correlated pairs.
        let mut planted = Vec::new();
        for fam in 0..4u64 {
            let base: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
            let a = 1_000_000 + fam * 2;
            let b = a + 1;
            for id in [a, b] {
                let noisy: Vec<f64> = base
                    .iter()
                    .map(|x| x + rng.random_range(-0.1..=0.1))
                    .collect();
                index.insert(id, &noisy);
            }
            planted.push((a, b));
        }
        // Background: independent noise.
        for id in 0..n_sensors as u64 {
            let series: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
            index.insert(id, &series);
        }

        let start = Instant::now();
        let exact = index.exact_pairs_above(0.9);
        let exact_time = start.elapsed();
        let start = Instant::now();
        let approx = index.correlated_pairs(0.8);
        let lsh_time = start.elapsed();

        let exact_set: std::collections::BTreeSet<(u64, u64)> =
            exact.iter().map(|(a, b, _)| (*a, *b)).collect();
        let found: std::collections::BTreeSet<(u64, u64)> =
            approx.iter().map(|p| (p.a, p.b)).collect();
        let recalled = exact_set.intersection(&found).count();
        let planted_found = planted.iter().filter(|p| found.contains(p)).count();
        println!(
            "| {n_sensors} | {exact_time:?} | {lsh_time:?} | {:.1}x | {planted_found}/{} | {recalled}/{} |",
            exact_time.as_secs_f64() / lsh_time.as_secs_f64().max(1e-9),
            planted.len(),
            exact_set.len()
        );
    }
}
