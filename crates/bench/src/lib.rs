//! Shared helpers for the Optique benchmark harness live in the bench
//! binaries themselves; this library file exists so the crate can host
//! `[[bench]]` and `[[bin]]` targets.
