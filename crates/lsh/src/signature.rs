//! Random-hyperplane bit signatures.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A bit signature, packed into 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    bits: Vec<u64>,
    n_bits: usize,
}

impl Signature {
    /// Number of signature bits.
    pub fn len(&self) -> usize {
        self.n_bits
    }

    /// True when the signature has zero bits.
    pub fn is_empty(&self) -> bool {
        self.n_bits == 0
    }

    /// Hamming distance to another signature of the same length.
    pub fn hamming(&self, other: &Signature) -> usize {
        assert_eq!(self.n_bits, other.n_bits, "signatures must share a scheme");
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// The `i`-th bit.
    pub fn bit(&self, i: usize) -> bool {
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts band `b` of `band_bits` bits as a hashable key.
    pub fn band(&self, b: usize, band_bits: usize) -> u64 {
        let mut key = 0u64;
        for i in 0..band_bits {
            let idx = b * band_bits + i;
            if idx < self.n_bits && self.bit(idx) {
                key |= 1 << i;
            }
        }
        key
    }
}

/// A signature scheme: `n_bits` random hyperplanes in dimension `dim`,
/// deterministic in the seed.
#[derive(Clone, Debug)]
pub struct SignatureScheme {
    hyperplanes: Vec<Vec<f64>>,
    dim: usize,
}

impl SignatureScheme {
    /// Draws `n_bits` hyperplanes of dimension `dim` from a seeded RNG.
    /// Components are uniform in [-1, 1]; for sign-based hashing only the
    /// direction matters, so Gaussian sampling is unnecessary.
    pub fn new(dim: usize, n_bits: usize, seed: u64) -> Self {
        assert!(dim > 0 && n_bits > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let hyperplanes = (0..n_bits)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect())
            .collect();
        SignatureScheme { hyperplanes, dim }
    }

    /// Input dimension (window length).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of signature bits.
    pub fn n_bits(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Signs a vector (typically a standardized window).
    pub fn sign(&self, vector: &[f64]) -> Signature {
        assert_eq!(
            vector.len(),
            self.dim,
            "vector dimension must match the scheme"
        );
        let n_bits = self.n_bits();
        let mut bits = vec![0u64; n_bits.div_ceil(64)];
        for (i, plane) in self.hyperplanes.iter().enumerate() {
            let dot: f64 = plane.iter().zip(vector).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        Signature { bits, n_bits }
    }

    /// Correlation estimate from two signatures:
    /// `cos(π · hamming / bits)`.
    pub fn estimate_correlation(&self, a: &Signature, b: &Signature) -> f64 {
        let frac = a.hamming(b) as f64 / self.n_bits() as f64;
        (std::f64::consts::PI * frac).cos()
    }
}

/// Z-normalizes a series (mean 0, unit variance). Constant series map to the
/// zero vector, whose correlation with anything is undefined; callers filter
/// those out just as SQL `CORR` returns NULL for them.
pub fn standardize(series: &[f64]) -> Vec<f64> {
    let n = series.len() as f64;
    if series.is_empty() {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var == 0.0 {
        return vec![0.0; series.len()];
    }
    let sd = var.sqrt();
    series.iter().map(|x| (x - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_estimate_one() {
        let scheme = SignatureScheme::new(32, 256, 7);
        let v: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let s = scheme.sign(&standardize(&v));
        assert_eq!(s.hamming(&s), 0);
        assert!((scheme.estimate_correlation(&s, &s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negated_vectors_estimate_minus_one() {
        let scheme = SignatureScheme::new(32, 512, 7);
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let sa = scheme.sign(&standardize(&v));
        let sb = scheme.sign(&standardize(&neg));
        let est = scheme.estimate_correlation(&sa, &sb);
        assert!(est < -0.95, "got {est}");
    }

    #[test]
    fn estimate_tracks_exact_for_noisy_copies() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let dim = 64;
        let scheme = SignatureScheme::new(dim, 1024, 9);
        let base: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
        for noise in [0.1, 0.5, 1.5] {
            let other: Vec<f64> = base
                .iter()
                .map(|x| x + rng.random_range(-noise..=noise))
                .collect();
            let exact = crate::correlate::exact_pearson(&base, &other).unwrap();
            let sa = scheme.sign(&standardize(&base));
            let sb = scheme.sign(&standardize(&other));
            let est = scheme.estimate_correlation(&sa, &sb);
            assert!(
                (est - exact).abs() < 0.15,
                "noise {noise}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn standardize_properties() {
        let z = standardize(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        assert_eq!(standardize(&[5.0; 4]), vec![0.0; 4]);
        assert!(standardize(&[]).is_empty());
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = SignatureScheme::new(16, 64, 3);
        let b = SignatureScheme::new(16, 64, 3);
        let v: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(a.sign(&v), b.sign(&v));
    }

    #[test]
    fn bands_partition_bits() {
        let scheme = SignatureScheme::new(8, 64, 1);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let s = scheme.sign(&v);
        // 8 bands of 8 bits reconstruct the words.
        let mut rebuilt = 0u64;
        for b in 0..8 {
            rebuilt |= s.band(b, 8) << (b * 8);
        }
        assert_eq!(rebuilt, s.bits[0]);
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn wrong_dimension_panics() {
        let scheme = SignatureScheme::new(8, 16, 1);
        let _ = scheme.sign(&[1.0; 9]);
    }
}
