//! Locality-Sensitive Hashing for cross-stream correlation.
//!
//! The paper: "UDFs allow to express very complex dataflows … For OPTIQUE we
//! used UDFs to implement … data mining algorithms such as the
//! Locality-Sensitive Hashing technique [7] for computing the correlation
//! between values of multiple streams."
//!
//! The scheme is random-hyperplane LSH over z-normalized measurement
//! windows. For centered, unit-variance vectors the Pearson correlation of
//! two windows equals the cosine of the angle between them, and a random
//! hyperplane separates them with probability `θ/π`; so the Hamming
//! distance between bit signatures estimates `θ`, hence the correlation:
//! `r̂ = cos(π · hamming/bits)`. Banding the signature turns all-pairs
//! correlation search over thousands of sensors into a bucket join — the
//! E9 experiment measures the speedup and the precision/recall against the
//! exact Pearson baseline.

pub mod correlate;
pub mod signature;

pub use correlate::{exact_pearson, CorrelatedPair, CorrelationIndex};
pub use signature::{standardize, Signature, SignatureScheme};
