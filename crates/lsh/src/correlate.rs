//! Banded correlation search over many streams.

use std::collections::HashMap;

use crate::signature::{standardize, Signature, SignatureScheme};

/// Exact sample Pearson correlation; `None` when undefined (length < 2 or a
/// constant series).
pub fn exact_pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    let denom = (var_a * var_b).sqrt();
    if denom == 0.0 {
        None
    } else {
        Some(cov / denom)
    }
}

/// A correlated pair report.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrelatedPair {
    /// First stream id.
    pub a: u64,
    /// Second stream id (`a < b`).
    pub b: u64,
    /// LSH correlation estimate.
    pub estimated: f64,
    /// Exact Pearson on the stored windows (verification step).
    pub exact: f64,
}

/// An index of stream windows supporting approximate all-pairs correlation
/// search — the LSH UDF's core.
pub struct CorrelationIndex {
    scheme: SignatureScheme,
    bands: usize,
    band_bits: usize,
    series: HashMap<u64, Vec<f64>>,
    signatures: HashMap<u64, Signature>,
}

impl CorrelationIndex {
    /// An index over windows of length `dim`, with `bands × band_bits`
    /// signature bits.
    pub fn new(dim: usize, bands: usize, band_bits: usize, seed: u64) -> Self {
        let scheme = SignatureScheme::new(dim, bands * band_bits, seed);
        CorrelationIndex {
            scheme,
            bands,
            band_bits,
            series: HashMap::new(),
            signatures: HashMap::new(),
        }
    }

    /// Inserts (or replaces) stream `id`'s current window. Constant windows
    /// are skipped — their correlation is undefined.
    pub fn insert(&mut self, id: u64, window: &[f64]) {
        let z = standardize(window);
        if z.iter().all(|&x| x == 0.0) {
            self.series.remove(&id);
            self.signatures.remove(&id);
            return;
        }
        let sig = self.scheme.sign(&z);
        self.series.insert(id, window.to_vec());
        self.signatures.insert(id, sig);
    }

    /// Number of indexed streams.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when no streams are indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Candidate pairs: ids sharing at least one band bucket. The returned
    /// pairs are deduplicated with `a < b`.
    pub fn candidate_pairs(&self) -> Vec<(u64, u64)> {
        let mut buckets: HashMap<(usize, u64), Vec<u64>> = HashMap::new();
        let mut ids: Vec<&u64> = self.signatures.keys().collect();
        ids.sort_unstable();
        for &id in &ids {
            let sig = &self.signatures[id];
            for b in 0..self.bands {
                buckets
                    .entry((b, sig.band(b, self.band_bits)))
                    .or_default()
                    .push(*id);
            }
        }
        let mut pairs = std::collections::BTreeSet::new();
        for members in buckets.values() {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                    pairs.insert((a, b));
                }
            }
        }
        pairs.into_iter().collect()
    }

    /// Finds pairs whose *estimated* correlation magnitude reaches
    /// `threshold`, verifying each candidate with exact Pearson. Results are
    /// sorted by descending exact correlation magnitude.
    pub fn correlated_pairs(&self, threshold: f64) -> Vec<CorrelatedPair> {
        let mut out = Vec::new();
        for (a, b) in self.candidate_pairs() {
            let sa = &self.signatures[&a];
            let sb = &self.signatures[&b];
            let estimated = self.scheme.estimate_correlation(sa, sb);
            if estimated.abs() < threshold {
                continue;
            }
            let Some(exact) = exact_pearson(&self.series[&a], &self.series[&b]) else {
                continue;
            };
            out.push(CorrelatedPair {
                a,
                b,
                estimated,
                exact,
            });
        }
        out.sort_by(|x, y| y.exact.abs().total_cmp(&x.exact.abs()));
        out
    }

    /// Exhaustive exact baseline over all pairs (the comparator in E9).
    pub fn exact_pairs_above(&self, threshold: f64) -> Vec<(u64, u64, f64)> {
        let mut ids: Vec<u64> = self.series.keys().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if let Some(r) = exact_pearson(&self.series[&ids[i]], &self.series[&ids[j]]) {
                    if r.abs() >= threshold {
                        out.push((ids[i], ids[j], r));
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for CorrelationIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CorrelationIndex({} streams, {} bands × {} bits)",
            self.len(),
            self.bands,
            self.band_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn noisy_family(rng: &mut StdRng, base: &[f64], noise: f64) -> Vec<f64> {
        base.iter()
            .map(|x| x + rng.random_range(-noise..=noise))
            .collect()
    }

    #[test]
    fn exact_pearson_basics() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 2.0).collect();
        assert!((exact_pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert!((exact_pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(exact_pearson(&a, &[1.0; 10]), None, "constant series");
        assert_eq!(exact_pearson(&a, &a[..5]), None, "length mismatch");
    }

    #[test]
    fn finds_planted_correlated_pair() {
        let mut rng = StdRng::seed_from_u64(11);
        let dim = 64;
        let base: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut index = CorrelationIndex::new(dim, 16, 8, 5);
        // Two strongly-correlated streams among unrelated noise.
        index.insert(100, &noisy_family(&mut rng, &base, 0.05));
        index.insert(200, &noisy_family(&mut rng, &base, 0.05));
        for id in 0..30u64 {
            let noise: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
            index.insert(id, &noise);
        }
        let hits = index.correlated_pairs(0.8);
        assert!(
            hits.iter().any(|p| (p.a, p.b) == (100, 200)),
            "planted pair not found: {hits:?}"
        );
        let top = &hits[0];
        assert!(top.exact > 0.9);
    }

    #[test]
    fn candidate_pruning_is_effective() {
        let mut rng = StdRng::seed_from_u64(3);
        let dim = 64;
        let mut index = CorrelationIndex::new(dim, 8, 16, 5);
        let n = 60u64;
        for id in 0..n {
            let noise: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
            index.insert(id, &noise);
        }
        let all_pairs = (n * (n - 1) / 2) as usize;
        let candidates = index.candidate_pairs().len();
        assert!(
            candidates < all_pairs / 2,
            "banding should prune: {candidates} of {all_pairs}"
        );
    }

    #[test]
    fn recall_against_exact_baseline() {
        let mut rng = StdRng::seed_from_u64(17);
        let dim = 128;
        let mut index = CorrelationIndex::new(dim, 32, 4, 5);
        // Three correlated families of three streams each.
        for fam in 0..3u64 {
            let base: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..=1.0)).collect();
            for k in 0..3u64 {
                index.insert(fam * 10 + k, &noisy_family(&mut rng, &base, 0.1));
            }
        }
        let exact: std::collections::BTreeSet<(u64, u64)> = index
            .exact_pairs_above(0.9)
            .into_iter()
            .map(|(a, b, _)| (a, b))
            .collect();
        let found: std::collections::BTreeSet<(u64, u64)> = index
            .correlated_pairs(0.7)
            .into_iter()
            .map(|p| (p.a, p.b))
            .collect();
        let recalled = exact.intersection(&found).count();
        assert!(
            recalled as f64 >= 0.8 * exact.len() as f64,
            "recall too low: {recalled}/{}",
            exact.len()
        );
    }

    #[test]
    fn constant_windows_are_skipped() {
        let mut index = CorrelationIndex::new(8, 4, 4, 1);
        index.insert(1, &[2.0; 8]);
        assert!(index.is_empty());
    }

    #[test]
    fn reinsert_replaces_window() {
        let mut index = CorrelationIndex::new(8, 4, 4, 1);
        index.insert(1, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        index.insert(1, &[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(index.len(), 1);
    }
}
