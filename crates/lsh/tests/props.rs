//! Property test: the LSH correlation estimate tracks exact Pearson within
//! the binomial error bound of the signature length.

use optique_lsh::{exact_pearson, standardize, SignatureScheme};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |estimate − exact| stays within a generous tolerance for 2048-bit
    /// signatures (the hamming fraction estimates θ/π with σ ≈ 0.011; the
    /// cosine amplifies this by at most π).
    #[test]
    fn estimate_tracks_exact(
        base in proptest::collection::vec(-100.0f64..100.0, 32..33),
        scale in prop_oneof![Just(1.0f64), Just(-1.0f64), Just(0.5f64)],
        noise_seed in any::<u64>(),
        noise_level in 0.0f64..50.0,
    ) {
        // Derive a second series deterministically from the first.
        let mut noise_state = noise_seed | 1;
        let mut next_noise = move || {
            // xorshift
            noise_state ^= noise_state << 13;
            noise_state ^= noise_state >> 7;
            noise_state ^= noise_state << 17;
            ((noise_state % 2_000) as f64 / 1_000.0 - 1.0) * noise_level
        };
        let other: Vec<f64> = base.iter().map(|x| x * scale + next_noise()).collect();

        let Some(exact) = exact_pearson(&base, &other) else {
            return Ok(()); // constant series — undefined correlation
        };
        let za = standardize(&base);
        let zb = standardize(&other);
        if za.iter().all(|&v| v == 0.0) || zb.iter().all(|&v| v == 0.0) {
            return Ok(());
        }
        let scheme = SignatureScheme::new(32, 2048, 7);
        let est = scheme.estimate_correlation(&scheme.sign(&za), &scheme.sign(&zb));
        prop_assert!(
            (est - exact).abs() < 0.25,
            "estimate {est} vs exact {exact}"
        );
    }
}
