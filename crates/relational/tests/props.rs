//! Property tests: value-order laws, index/scan agreement, and
//! optimizer-equivalence on generated queries.

use optique_relational::index::{BTreeIndex, HashIndex};
use optique_relational::{table::table_of, ColumnType, Database, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e9f64..1e9f64).prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// total_cmp is a total order: antisymmetric and transitive.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// Eq-equal values hash equally (HashMap soundness).
    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Hash and B-tree indexes answer point lookups exactly like a scan.
    #[test]
    fn index_lookup_agrees_with_scan(
        keys in proptest::collection::vec(prop_oneof![Just(Value::Null), (0i64..40).prop_map(Value::Int)], 1..80),
        probe in 0i64..40,
    ) {
        let rows: Vec<Vec<Value>> = keys.iter().map(|k| vec![k.clone()]).collect();
        let hash = HashIndex::build(&rows, 0);
        let btree = BTreeIndex::build(&rows, 0);
        let probe = Value::Int(probe);
        let mut expected: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[0].sql_eq(&probe) == Some(true))
            .map(|(i, _)| i)
            .collect();
        let mut h = hash.lookup(&probe).to_vec();
        let mut b = btree.lookup(&probe).to_vec();
        expected.sort_unstable();
        h.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&h, &expected);
        prop_assert_eq!(&b, &expected);
    }

    /// B-tree range scans agree with filtering.
    #[test]
    fn btree_range_agrees_with_filter(
        keys in proptest::collection::vec(0i64..100, 1..60),
        lo in 0i64..100,
        width in 0i64..40,
    ) {
        let rows: Vec<Vec<Value>> = keys.iter().map(|&k| vec![Value::Int(k)]).collect();
        let idx = BTreeIndex::build(&rows, 0);
        let hi = lo + width;
        let mut got = idx.range(Some(&Value::Int(lo)), Some(&Value::Int(hi)));
        let mut expected: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// The optimizer never changes answers: random filters over a table run
    /// identically optimized and unoptimized.
    #[test]
    fn optimizer_preserves_answers(
        rows in proptest::collection::vec((0i64..20, -50i64..50), 0..60),
        threshold in -50i64..50,
        key in 0i64..20,
    ) {
        let table = table_of(
            "m",
            &[("k", ColumnType::Int), ("v", ColumnType::Int)],
            rows.iter().map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]).collect(),
        )
        .unwrap();
        let mut db = Database::new();
        db.put_table("m", table);
        let sql = format!(
            "SELECT k, v FROM m WHERE v >= {threshold} AND k = {key} ORDER BY v DESC, k"
        );
        let stmt = optique_relational::parse_select(&sql).unwrap();
        let plan = optique_relational::plan::plan_select(&stmt, &db).unwrap();
        let unopt = optique_relational::exec::execute(&plan, &db).unwrap();
        let opt_plan = optique_relational::optimizer::optimize(plan);
        let opt = optique_relational::exec::execute(&opt_plan, &db).unwrap();
        prop_assert_eq!(unopt.rows, opt.rows);
    }

    /// Aggregates computed by the engine match hand-rolled fold.
    #[test]
    fn aggregates_match_reference(
        rows in proptest::collection::vec((0i64..5, -100i64..100), 1..60),
    ) {
        let table = table_of(
            "m",
            &[("k", ColumnType::Int), ("v", ColumnType::Int)],
            rows.iter().map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]).collect(),
        )
        .unwrap();
        let mut db = Database::new();
        db.put_table("m", table);
        let out = optique_relational::exec::query(
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM m GROUP BY k",
            &db,
        )
        .unwrap();
        for row in &out.rows {
            let k = row[0].as_i64().unwrap();
            let group: Vec<i64> = rows.iter().filter(|(g, _)| *g == k).map(|(_, v)| *v).collect();
            prop_assert_eq!(row[1].as_i64().unwrap(), group.len() as i64);
            prop_assert_eq!(row[2].as_i64().unwrap(), group.iter().sum::<i64>());
            prop_assert_eq!(row[3].as_i64().unwrap(), *group.iter().min().unwrap());
            prop_assert_eq!(row[4].as_i64().unwrap(), *group.iter().max().unwrap());
        }
    }
}
