//! Pane-based partial aggregation for sliding windows — the "No Pane, No
//! Gain" decomposition that turns O(range) window rescans into O(slide)
//! incremental work.
//!
//! A **pane** is one slide-aligned slice of a stream: with pane width
//! `w = gcd(range, slide)`, every sliding window `(open, close]` whose
//! bounds sit on the slide grid is an exact run of consecutive panes, so
//! overlapping windows of the same stream *share* panes instead of each
//! rescanning the overlap. A [`PaneStore`] keeps, per worker and per probed
//! stream, one [`AggAcc`] per `(pane, grouping key)` — enough to answer
//! SUM/COUNT/MIN/MAX/AVG (avg = sum + count) for any aligned window by
//! combining panes, never touching raw rows again.
//!
//! Two combination regimes, chosen per aggregate:
//!
//! * **additive** (COUNT/SUM, and AVG through them): the store caches one
//!   sliding accumulator per window geometry and advances it by *adding
//!   entering panes and subtracting leaving panes* — O(slide) per tick,
//!   flat in the window range;
//! * **extrema** (MIN/MAX): subtraction is undefined, and reusing a cached
//!   whole-window extremum is the classic staleness bug (the pane holding
//!   the current maximum slides out and the stale maximum survives).
//!   Extrema are therefore **recombined from the window's panes on every
//!   tick** — O(range/w) pane merges, still far below a row rescan.
//!
//! Novelty discipline: a probe executes at a pinned novelty epoch. The
//! store folds the base shard table once, then advances along the overlay
//! lineage by folding only the *suffix* of the append log it has not seen
//! (overlay logs are append-only and order-preserving across successor
//! epochs, so the seen prefix is stable). A probe pinned at an epoch
//! *older* than the cached state answers store-lessly instead — the cache
//! never rewinds, and no overlay row is ever double-counted.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::SqlError;
use crate::fragment::shard_of;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Database, Table};
use crate::value::Value;

/// Greatest common divisor of two positive spans (the pane width law:
/// `width = gcd(range, slide)` divides both, so window bounds land on the
/// pane grid).
pub fn pane_width(range_ms: i64, slide_ms: i64) -> i64 {
    let (mut a, mut b) = (range_ms.max(1), slide_ms.max(1));
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One partial aggregate: everything SUM/COUNT/MIN/MAX/AVG need, kept so
/// that two accumulators over disjoint row sets merge losslessly. Integer
/// sums stay exact (checked `i64`); float sums are exact for
/// whole-number-valued data, which is what the differential oracle pins.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggAcc {
    /// Non-NULL values observed.
    pub count: i64,
    /// Sum of integer-typed values (checked; overflow surfaces as
    /// [`SqlError::Overflow`], never wraps).
    pub sum_i: i64,
    /// Sum of float-typed values.
    pub sum_f: f64,
    /// Minimum observed value, as f64 (`None` until a numeric value lands).
    pub min: Option<f64>,
    /// Maximum observed value, as f64.
    pub max: Option<f64>,
}

impl AggAcc {
    /// Folds one raw value in. NULLs don't count; non-numeric values count
    /// (COUNT is type-agnostic) but contribute no sum or extremum.
    pub fn observe(&mut self, v: &Value) -> Result<(), SqlError> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match v {
            Value::Int(i) | Value::Timestamp(i) => {
                self.sum_i = self
                    .sum_i
                    .checked_add(*i)
                    .ok_or_else(|| SqlError::Overflow("integer overflow: windowed SUM".into()))?;
            }
            Value::Float(f) => self.sum_f += f,
            _ => return Ok(()),
        }
        let x = v.as_f64().expect("numeric value");
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
        Ok(())
    }

    /// Merges another accumulator over a *disjoint* row set in.
    pub fn merge(&mut self, other: &AggAcc) -> Result<(), SqlError> {
        self.count += other.count;
        self.sum_i = self
            .sum_i
            .checked_add(other.sum_i)
            .ok_or_else(|| SqlError::Overflow("integer overflow: windowed SUM".into()))?;
        self.sum_f += other.sum_f;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(())
    }

    /// Removes a previously-merged accumulator (additive fields only —
    /// extrema cannot be subtracted and are recombined by the caller).
    fn unmerge_additive(&mut self, other: &AggAcc) {
        self.count -= other.count;
        self.sum_i = self.sum_i.wrapping_sub(other.sum_i);
        self.sum_f -= other.sum_f;
    }

    /// The combined sum as f64 (integer and float parts).
    pub fn sum(&self) -> f64 {
        self.sum_i as f64 + self.sum_f
    }

    /// The mean, when any value was observed.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }
}

/// A pane-combine probe — the payload of a `pane` wire section: which
/// stream to aggregate, how rows group and align to the pane grid, and
/// which window `(open_ms, close_ms]` to combine. Self-contained, like
/// every fragment section: a worker needs nothing but this and its shard.
#[derive(Clone, Debug, PartialEq)]
pub struct PaneProbe {
    /// The stream's base table.
    pub stream: String,
    /// Timestamp column (pane alignment).
    pub ts_col: String,
    /// Grouping-key column (one [`AggAcc`] per key per pane).
    pub key_col: String,
    /// Aggregated value column.
    pub val_col: String,
    /// Pane width: `gcd(range, slide)` of the probing window.
    pub width_ms: i64,
    /// Pane-grid origin (the window's pulse start).
    pub start_ms: i64,
    /// Window open (exclusive).
    pub open_ms: i64,
    /// Window close (inclusive).
    pub close_ms: i64,
    /// Whether MIN/MAX must be recombined (additive-only probes skip the
    /// per-tick extrema pass entirely).
    pub needs_extrema: bool,
}

impl PaneProbe {
    /// The store key identifying the pane grid this probe reads — windows
    /// of any range share panes as long as stream, columns, width and
    /// origin agree.
    fn grid_key(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.stream, self.ts_col, self.key_col, self.val_col, self.width_ms, self.start_ms
        )
    }

    /// Pane index of a timestamp: pane `p` covers
    /// `(start + p·w, start + (p+1)·w]`.
    fn pane_of(&self, ts: i64) -> i64 {
        (ts - self.start_ms - 1).div_euclid(self.width_ms)
    }

    /// The window's pane run `[p_open, p_close)`; `None` when the bounds
    /// don't sit on the pane grid (misaligned probes answer store-lessly).
    fn pane_run(&self) -> Option<(i64, i64)> {
        let (o, c) = (self.open_ms - self.start_ms, self.close_ms - self.start_ms);
        (self.width_ms > 0 && o % self.width_ms == 0 && c % self.width_ms == 0 && o < c)
            .then(|| (o / self.width_ms, c / self.width_ms))
    }
}

/// The schema every pane-combine answer uses: one row per grouping key with
/// the mergeable accumulator fields laid out flat. `min`/`max` are NULL for
/// additive-only probes.
pub fn pane_result_schema(key_type: ColumnType) -> Schema {
    Schema::qualified(
        "panes",
        vec![
            Column::new("key", key_type),
            Column::new("cnt", ColumnType::Int),
            Column::new("sum_i", ColumnType::Int),
            Column::new("sum_f", ColumnType::Float),
            Column::new("min", ColumnType::Float),
            Column::new("max", ColumnType::Float),
        ],
    )
}

fn acc_row(key: &Value, acc: &AggAcc, needs_extrema: bool) -> Vec<Value> {
    let opt = |x: Option<f64>| {
        if needs_extrema {
            x.map_or(Value::Null, Value::Float)
        } else {
            Value::Null
        }
    };
    vec![
        key.clone(),
        Value::Int(acc.count),
        Value::Int(acc.sum_i),
        Value::Float(acc.sum_f),
        opt(acc.min),
        opt(acc.max),
    ]
}

/// Rebuilds the accumulator map from pane-answer rows (the gather side:
/// a coordinator merges per-shard answers — shards hold disjoint rows, so
/// the merge is lossless).
pub fn merge_pane_rows(
    groups: &mut BTreeMap<Value, AggAcc>,
    rows: &[Vec<Value>],
) -> Result<(), SqlError> {
    for row in rows {
        if row.len() < 6 {
            return Err(SqlError::Execution("short pane-answer row".into()));
        }
        let acc = AggAcc {
            count: row[1].as_i64().unwrap_or(0),
            sum_i: row[2].as_i64().unwrap_or(0),
            sum_f: row[3].as_f64().unwrap_or(0.0),
            min: row[4].as_f64(),
            max: row[5].as_f64(),
        };
        groups.entry(row[0].clone()).or_default().merge(&acc)?;
    }
    Ok(())
}

/// Resolved column indices + key type of a probe against a catalog.
struct ProbeCols {
    ts: usize,
    key: usize,
    val: usize,
    key_type: ColumnType,
}

fn resolve_cols(probe: &PaneProbe, db: &Database) -> Result<ProbeCols, SqlError> {
    let table = db.table(&probe.stream)?;
    let idx = |name: &str| {
        table.schema.index_of(name).ok_or_else(|| {
            SqlError::Binding(format!("no column {name} on stream {}", probe.stream))
        })
    };
    let key = idx(&probe.key_col)?;
    Ok(ProbeCols {
        ts: idx(&probe.ts_col)?,
        key,
        val: idx(&probe.val_col)?,
        key_type: table.schema.columns()[key].ty,
    })
}

/// Store-less reference computation: folds the window's raw rows (base
/// shard + visible overlay rows) directly into per-key accumulators.
/// The coordinator-fallback path of [`crate::PlanFragment::execute`] and
/// the store's own decline path share this, so every execution path
/// produces bit-identical answers.
pub fn compute_window_aggregates(probe: &PaneProbe, db: &Database) -> Result<Table, SqlError> {
    let cols = resolve_cols(probe, db)?;
    let mut groups: BTreeMap<Value, AggAcc> = BTreeMap::new();
    let base = db.table(&probe.stream)?;
    for row in base.rows.iter().chain(db.novelty_rows(&probe.stream)) {
        let Some(ts) = row[cols.ts].as_i64() else {
            continue;
        };
        if ts > probe.open_ms && ts <= probe.close_ms {
            groups
                .entry(row[cols.key].clone())
                .or_default()
                .observe(&row[cols.val])?;
        }
    }
    groups_to_table(&groups, cols.key_type, probe.needs_extrema)
}

fn groups_to_table(
    groups: &BTreeMap<Value, AggAcc>,
    key_type: ColumnType,
    needs_extrema: bool,
) -> Result<Table, SqlError> {
    let rows = groups
        .iter()
        .filter(|(_, acc)| acc.count > 0)
        .map(|(k, acc)| acc_row(k, acc, needs_extrema))
        .collect();
    Table::new(pane_result_schema(key_type), rows)
}

/// Cached additive (COUNT/SUM) state of one window geometry, advanced by
/// pane add/subtract as the window slides forward.
struct SlidingWindow {
    p_open: i64,
    p_close: i64,
    groups: BTreeMap<Value, AggAcc>,
}

/// Per-grid pane state: which data has been folded, the panes themselves,
/// and the cached sliding accumulators (one per window range probing this
/// grid).
struct GridState {
    /// Novelty epoch the state is current at.
    epoch: u64,
    /// Prefix of the stream's *full, unfiltered* overlay log already
    /// folded (stable across successor epochs: logs are append-only).
    overlay_seen: usize,
    /// pane index → grouping key → partial aggregate.
    panes: BTreeMap<i64, BTreeMap<Value, AggAcc>>,
    /// range_ms → cached additive window state.
    windows: BTreeMap<i64, SlidingWindow>,
}

/// One worker's shard-local pane store. Keyed by pane grid
/// ([`PaneProbe::grid_key`]): every window probing the same stream with the
/// same width and origin shares one set of panes.
#[derive(Default)]
pub struct PaneStore {
    grids: Mutex<HashMap<String, GridState>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PaneStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative `(hits, misses)`: a hit answered a probe from panes that
    /// were already warm (at most O(slide) incremental folding); a miss
    /// paid a full fold (first touch of a grid) or answered store-lessly
    /// (epoch older than the cached state, misaligned bounds).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Answers a pane-combine probe from shard-local panes, maintaining
    /// them incrementally. Returns the answer table plus whether the probe
    /// was a warm hit.
    pub fn combine(&self, probe: &PaneProbe, db: &Database) -> Result<(Table, bool), SqlError> {
        let Some((p_open, p_close)) = probe.pane_run() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((compute_window_aggregates(probe, db)?, false));
        };
        let cols = resolve_cols(probe, db)?;
        let mut grids = self.grids.lock().expect("pane store lock");
        let epoch = db.novelty_epoch();
        let log_len = db
            .novelty()
            .and_then(|n| n.rows(&probe.stream))
            .map_or(0, |r| r.len());
        let entry = grids.entry(probe.grid_key());
        let warm;
        let state = match entry {
            std::collections::hash_map::Entry::Occupied(e) => {
                let state = e.into_mut();
                if state.epoch != epoch && log_len < state.overlay_seen {
                    // Pinned at an epoch older than the cached state: the
                    // cache never rewinds — answer store-lessly.
                    drop(grids);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Ok((compute_window_aggregates(probe, db)?, false));
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                warm = true;
                state
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                // First touch: fold the whole base shard into panes once.
                self.misses.fetch_add(1, Ordering::Relaxed);
                warm = false;
                let mut state = GridState {
                    epoch: 0,
                    overlay_seen: 0,
                    panes: BTreeMap::new(),
                    windows: BTreeMap::new(),
                };
                let base = db.table(&probe.stream)?;
                for row in &base.rows {
                    fold_row(&mut state.panes, probe, &cols, row)?;
                }
                e.insert(state)
            }
        };

        // Advance along the overlay lineage: fold only the unseen suffix
        // of the append log, applying this worker's shard filter manually
        // (the suffix index is into the unfiltered log).
        if state.epoch != epoch || log_len > state.overlay_seen {
            let scope = db.novelty_scope().and_then(|s| {
                s.keys
                    .get(&probe.stream)
                    .map(|&col| (s.shard, s.shards, col))
            });
            if let Some(log) = db.novelty().and_then(|n| n.rows(&probe.stream)) {
                let touched: Vec<&Vec<Value>> = log[state.overlay_seen..]
                    .iter()
                    .filter(|row| match scope {
                        Some((shard, shards, col)) => shard_of(&row[col], shards) == shard,
                        None => true,
                    })
                    .collect();
                for row in touched {
                    fold_row(&mut state.panes, probe, &cols, row)?;
                }
            }
            state.overlay_seen = log_len;
            state.epoch = epoch;
            // Appends may land in panes already inside a cached window;
            // cheaper to rebuild the additive caches than to track which
            // panes changed.
            state.windows.clear();
        }

        // Additive state: advance the cached window for this range by
        // subtracting leaving panes and adding entering panes; rebuild
        // from panes when the geometry doesn't extend a cached one.
        let range = probe.close_ms - probe.open_ms;
        let window = match state.windows.get_mut(&range) {
            Some(w) if w.p_open <= p_open && w.p_close <= p_close => {
                for p in w.p_open..p_open.min(w.p_close) {
                    if let Some(pane) = state.panes.get(&p) {
                        for (k, acc) in pane {
                            if let Some(g) = w.groups.get_mut(k) {
                                g.unmerge_additive(acc);
                                if g.count == 0 {
                                    w.groups.remove(k);
                                }
                            }
                        }
                    }
                }
                for p in w.p_close.max(p_open)..p_close {
                    if let Some(pane) = state.panes.get(&p) {
                        for (k, acc) in pane {
                            w.groups.entry(k.clone()).or_default().merge(acc)?;
                        }
                    }
                }
                w.p_open = p_open;
                w.p_close = p_close;
                w
            }
            _ => {
                let mut groups: BTreeMap<Value, AggAcc> = BTreeMap::new();
                for (_, pane) in state.panes.range(p_open..p_close) {
                    for (k, acc) in pane {
                        groups.entry(k.clone()).or_default().merge(acc)?;
                    }
                }
                state.windows.insert(
                    range,
                    SlidingWindow {
                        p_open,
                        p_close,
                        groups,
                    },
                );
                state.windows.get_mut(&range).expect("just inserted")
            }
        };

        // Extrema are NEVER carried across slides — the pane holding the
        // current extremum may just have left the window. Recombine them
        // fresh from the window's panes each tick.
        let mut out: BTreeMap<Value, AggAcc> = window
            .groups
            .iter()
            .filter(|(_, acc)| acc.count > 0)
            .map(|(k, acc)| {
                (
                    k.clone(),
                    AggAcc {
                        min: None,
                        max: None,
                        ..acc.clone()
                    },
                )
            })
            .collect();
        if probe.needs_extrema {
            for (_, pane) in state.panes.range(p_open..p_close) {
                for (k, acc) in pane {
                    if let Some(g) = out.get_mut(k) {
                        g.min = match (g.min, acc.min) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        g.max = match (g.max, acc.max) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                    }
                }
            }
        }
        let table = groups_to_table(&out, cols.key_type, probe.needs_extrema)?;
        Ok((table, warm))
    }
}

fn fold_row(
    panes: &mut BTreeMap<i64, BTreeMap<Value, AggAcc>>,
    probe: &PaneProbe,
    cols: &ProbeCols,
    row: &[Value],
) -> Result<(), SqlError> {
    let Some(ts) = row[cols.ts].as_i64() else {
        return Ok(());
    };
    panes
        .entry(probe.pane_of(ts))
        .or_default()
        .entry(row[cols.key].clone())
        .or_default()
        .observe(&row[cols.val])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::novelty::{NoveltyOverlay, NoveltyScope};
    use crate::table::table_of;
    use std::sync::Arc;

    fn probe(open: i64, close: i64, width: i64) -> PaneProbe {
        PaneProbe {
            stream: "s".into(),
            ts_col: "ts".into(),
            key_col: "k".into(),
            val_col: "v".into(),
            width_ms: width,
            start_ms: 0,
            open_ms: open,
            close_ms: close,
            needs_extrema: true,
        }
    }

    fn stream_db(rows: Vec<(i64, i64, f64)>) -> Database {
        let mut db = Database::new();
        db.put_table(
            "s",
            table_of(
                "s",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("k", ColumnType::Int),
                    ("v", ColumnType::Float),
                ],
                rows.into_iter()
                    .map(|(ts, k, v)| vec![Value::Timestamp(ts), Value::Int(k), Value::Float(v)])
                    .collect(),
            )
            .unwrap(),
        );
        db
    }

    fn by_key(t: &Table) -> BTreeMap<i64, (i64, f64, Option<f64>, Option<f64>)> {
        t.rows
            .iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap(),
                    (
                        r[1].as_i64().unwrap(),
                        r[2].as_i64().unwrap() as f64 + r[3].as_f64().unwrap(),
                        r[4].as_f64(),
                        r[5].as_f64(),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn pane_indexing_matches_interval_convention() {
        let p = probe(0, 10, 5);
        // Pane 0 covers (0, 5]: ts=1..=5 land there, ts=6 in pane 1.
        assert_eq!(p.pane_of(1), 0);
        assert_eq!(p.pane_of(5), 0);
        assert_eq!(p.pane_of(6), 1);
        assert_eq!(p.pane_of(0), -1);
        assert_eq!(p.pane_of(-3), -1);
        assert_eq!(p.pane_run(), Some((0, 2)));
        assert_eq!(probe(3, 10, 5).pane_run(), None, "misaligned open");
    }

    #[test]
    fn store_matches_storeless_reference() {
        let db = stream_db((0..200).map(|i| (i * 10, i % 3, (i % 7) as f64)).collect());
        let store = PaneStore::new();
        for close in [500, 1000, 1500, 1900] {
            let p = probe(close - 500, close, 100);
            let (paned, _) = store.combine(&p, &db).unwrap();
            let reference = compute_window_aggregates(&p, &db).unwrap();
            assert_eq!(by_key(&paned), by_key(&reference), "close={close}");
        }
        let (hits, misses) = store.stats();
        assert_eq!(misses, 1, "only the first touch folds the base");
        assert_eq!(hits, 3);
    }

    #[test]
    fn extrema_are_not_cached_across_slides() {
        // A spike of 99.0 at ts=100; after the window slides past it the
        // max must drop back to the ambient values.
        let mut rows: Vec<(i64, i64, f64)> = (1..=60).map(|i| (i * 10, 0, 1.0)).collect();
        rows.push((100, 0, 99.0));
        let db = stream_db(rows);
        let store = PaneStore::new();
        let spike = store.combine(&probe(0, 200, 100), &db).unwrap().0;
        assert_eq!(by_key(&spike)[&0].3, Some(99.0), "spike inside window");
        let after = store.combine(&probe(200, 400, 100), &db).unwrap().0;
        assert_eq!(
            by_key(&after)[&0].3,
            Some(1.0),
            "stale maximum must not survive the pane sliding out"
        );
        // The additive path agrees with a fresh rescan too.
        assert_eq!(
            by_key(&after),
            by_key(&compute_window_aggregates(&probe(200, 400, 100), &db).unwrap())
        );
    }

    #[test]
    fn overlay_rows_fold_incrementally_and_only_once() {
        let db = stream_db((0..50).map(|i| (i * 10, i % 2, 1.0)).collect());
        let store = PaneStore::new();
        let p = probe(0, 500, 100);
        let (cold, _) = store.combine(&p, &db).unwrap();
        // Key 0: i ∈ {2,4,…,48} (ts=0 sits on the exclusive open bound).
        assert_eq!(by_key(&cold)[&0].0, 24);

        // Append rows through a novelty overlay and re-probe at the new
        // epoch: the suffix folds in exactly once.
        let overlay = NoveltyOverlay::empty().with_rows(
            "s",
            vec![vec![
                Value::Timestamp(495),
                Value::Int(0),
                Value::Float(5.0),
            ]],
        );
        let mut view = db.clone();
        view.set_novelty(Some(Arc::clone(&overlay)));
        for _ in 0..3 {
            let (warm, hit) = store.combine(&p, &view).unwrap();
            assert!(hit);
            let got = by_key(&warm)[&0];
            assert_eq!(got.0, 25, "overlay row counted exactly once");
            assert_eq!(got.1, 29.0);
            assert_eq!(
                by_key(&warm),
                by_key(&compute_window_aggregates(&p, &view).unwrap())
            );
        }

        // Probing back at the pre-append epoch answers store-lessly (the
        // cache never rewinds) and still matches the reference.
        let (old, hit) = store.combine(&p, &db).unwrap();
        assert!(!hit);
        assert_eq!(by_key(&old)[&0].0, 24);
    }

    #[test]
    fn scoped_overlay_rows_fold_shard_local() {
        let db = stream_db((0..40).map(|i| (i * 10, i % 4, 1.0)).collect());
        let overlay = NoveltyOverlay::empty().with_rows(
            "s",
            (0..8)
                .map(|i| vec![Value::Timestamp(395), Value::Int(i), Value::Float(2.0)])
                .collect(),
        );
        let shards = 2;
        let mut total = 0i64;
        for shard in 0..shards {
            let mut view = db.clone();
            view.set_novelty(Some(Arc::clone(&overlay)));
            view.set_novelty_scope(Some(Arc::new(NoveltyScope {
                shard,
                shards,
                keys: [("s".to_string(), 1usize)].into_iter().collect(),
            })));
            let store = PaneStore::new();
            let (t, _) = store.combine(&probe(0, 400, 100), &view).unwrap();
            let reference = compute_window_aggregates(&probe(0, 400, 100), &view).unwrap();
            assert_eq!(by_key(&t), by_key(&reference));
            // Sum the per-shard counts for key 0: shard filtering must
            // cover each overlay row exactly once across the pool.
            total += t
                .rows
                .iter()
                .filter(|r| r[0] == Value::Int(0))
                .map(|r| r[1].as_i64().unwrap())
                .sum::<i64>();
        }
        // Both views share the *unsharded* base table (9 k=0 rows each —
        // only real pools shard the base), so the exactly-once property
        // under test is the overlay's: the appended k=0 row folds on one
        // shard and only one. 2·9 base + 1 overlay = 19.
        assert_eq!(total, 19);
    }

    #[test]
    fn sliding_window_cache_advances_additively() {
        let db = stream_db((0..1000).map(|i| (i, i % 5, 1.0)).collect());
        let store = PaneStore::new();
        let mut last = None;
        for k in 5..9 {
            let close = k * 100;
            let p = probe(close - 500, close, 100);
            let (t, _) = store.combine(&p, &db).unwrap();
            let reference = compute_window_aggregates(&p, &db).unwrap();
            assert_eq!(by_key(&t), by_key(&reference), "close={close}");
            last = Some(by_key(&t));
        }
        assert_eq!(last.unwrap()[&0].0, 100);
    }

    #[test]
    fn integer_sums_overflow_loudly() {
        let mut db = Database::new();
        db.put_table(
            "s",
            table_of(
                "s",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("k", ColumnType::Int),
                    ("v", ColumnType::Int),
                ],
                vec![
                    vec![Value::Timestamp(1), Value::Int(0), Value::Int(i64::MAX)],
                    vec![Value::Timestamp(2), Value::Int(0), Value::Int(i64::MAX)],
                ],
            )
            .unwrap(),
        );
        let store = PaneStore::new();
        assert!(matches!(
            store.combine(&probe(0, 10, 5), &db),
            Err(SqlError::Overflow(_))
        ));
    }

    #[test]
    fn merge_pane_rows_rebuilds_accumulators() {
        let db = stream_db((0..30).map(|i| (i * 10, i % 2, i as f64)).collect());
        let p = probe(0, 300, 100);
        let t = compute_window_aggregates(&p, &db).unwrap();
        let mut groups = BTreeMap::new();
        merge_pane_rows(&mut groups, &t.rows).unwrap();
        // Merging the same rows twice doubles counts — proof the merge is
        // additive, which is what makes disjoint shard answers safe.
        merge_pane_rows(&mut groups, &t.rows).unwrap();
        assert_eq!(groups[&Value::Int(0)].count, 28);
    }
}
