//! Table statistics — the cardinality catalog behind cost-based planning.
//!
//! The OBDA planner (join-order selection and semi-join pushdown in
//! `optique-sparql`) needs per-source cardinalities to order the residual
//! joins of an unfolded query: Hovland et al.'s OBDA-constraints work shows
//! that exactly this kind of backend statistic is what makes unfolded
//! queries tractable. A [`StatsCatalog`] snapshots row counts and
//! per-column distinct-value estimates for every table of a [`Database`];
//! the platform refreshes it whenever the relational state changes
//! (`insert_static`), alongside the BGP-cache invalidation.

use std::collections::{BTreeMap, HashMap};

use crate::table::{Database, Table};
use crate::value::Value;

/// Rows sampled per table when estimating distinct counts; tables larger
/// than this extrapolate from the sample (distinct estimation is advisory —
/// it steers plan choice, never correctness).
const DISTINCT_SAMPLE_CAP: usize = 65_536;

/// Statistics for one table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStats {
    /// Exact row count at analysis time.
    pub rows: usize,
    /// `(column name, estimated distinct values)` in schema order.
    pub distinct: Vec<(String, usize)>,
    /// `(column name, share of sampled rows holding the most common
    /// value)` in schema order — the skew signal hash-partitioning keys are
    /// vetted against (a column where one value dominates makes one shard
    /// hold most of the table).
    pub skew: Vec<(String, f64)>,
}

impl TableStats {
    /// Estimated distinct values of `column`, if the column exists.
    pub fn distinct_of(&self, column: &str) -> Option<usize> {
        self.distinct
            .iter()
            .find(|(name, _)| name == column)
            .map(|&(_, n)| n)
    }

    /// Share of sampled rows holding `column`'s most common value, in
    /// `[0, 1]` (`0` for empty tables), if the column exists.
    pub fn max_share_of(&self, column: &str) -> Option<f64> {
        self.skew
            .iter()
            .find(|(name, _)| name == column)
            .map(|&(_, share)| share)
    }

    /// Estimated selectivity of an equality predicate on `column`:
    /// `1 / distinct`, defaulting to `0.1` when the column is unknown.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        match self.distinct_of(column) {
            Some(0) | None => 0.1,
            Some(n) => 1.0 / n as f64,
        }
    }
}

/// Per-table statistics for a whole database snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsCatalog {
    tables: HashMap<String, TableStats>,
}

impl StatsCatalog {
    /// An empty catalog (planners fall back to defaults for every table).
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    /// Analyzes every table of `db`: exact row counts, sampled distinct
    /// estimates per column.
    pub fn analyze(db: &Database) -> Self {
        let mut tables = HashMap::new();
        for name in db.table_names() {
            let table = db.table(name).expect("listed table exists");
            tables.insert(name.to_string(), Self::analyze_table(table));
        }
        StatsCatalog { tables }
    }

    /// A copy of this catalog with `name`'s statistics re-analyzed from
    /// `table` — the incremental path for single-table writes, so appending
    /// to one table never re-scans the whole database.
    pub fn with_refreshed_table(&self, name: &str, table: &Table) -> StatsCatalog {
        let mut tables = self.tables.clone();
        tables.insert(name.to_string(), Self::analyze_table(table));
        StatsCatalog { tables }
    }

    /// A copy of this catalog with `name`'s row count bumped by `added` —
    /// the O(1) path for novelty-overlay appends. Distinct/skew estimates
    /// are left as analyzed (advisory only) until the next merge
    /// re-samples the touched table.
    pub fn with_row_delta(&self, name: &str, added: usize) -> StatsCatalog {
        let mut tables = self.tables.clone();
        if let Some(stats) = tables.get_mut(name) {
            stats.rows += added;
        }
        StatsCatalog { tables }
    }

    fn analyze_table(table: &Table) -> TableStats {
        let rows = table.len();
        let sample = rows.min(DISTINCT_SAMPLE_CAP);
        let mut distinct = Vec::with_capacity(table.schema.columns().len());
        let mut skew = Vec::with_capacity(table.schema.columns().len());
        for (idx, column) in table.schema.columns().iter().enumerate() {
            let mut seen: HashMap<&Value, usize> = HashMap::with_capacity(sample.min(1024));
            for row in table.rows.iter().take(sample) {
                *seen.entry(&row[idx]).or_default() += 1;
            }
            let estimate = if sample < rows && sample > 0 {
                // Linear extrapolation, capped by the row count.
                (seen.len() * rows / sample).min(rows)
            } else {
                seen.len()
            };
            let top = seen.values().copied().max().unwrap_or(0);
            let share = if sample == 0 {
                0.0
            } else {
                top as f64 / sample as f64
            };
            distinct.push((column.name.clone(), estimate));
            skew.push((column.name.clone(), share));
        }
        TableStats {
            rows,
            distinct,
            skew,
        }
    }

    /// Statistics for `table`, if analyzed.
    pub fn table(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    /// Exact row count of `table` at analysis time.
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(|t| t.rows)
    }

    /// Estimated distinct values of `table.column`.
    pub fn distinct(&self, table: &str, column: &str) -> Option<usize> {
        self.tables.get(table).and_then(|t| t.distinct_of(column))
    }

    /// Number of analyzed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when nothing has been analyzed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all analyzed tables (a cheap fingerprint tests use
    /// to assert a refresh happened).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows).sum()
    }
}

// ---- partition-key advisor ---------------------------------------------

/// Columns whose most common value covers more than this share of the
/// sample are rejected as partition keys: one shard would hold most of the
/// table and scatter would degenerate to a hot worker.
const MAX_KEY_SKEW: f64 = 0.5;

/// Picks one hash-partition key per table from `candidates` — `(table,
/// column, weight)` triples, typically the term-map column usage of a
/// mapping catalog, where the weight counts how often unfolded disjuncts
/// join through the column. Scoring per candidate:
///
/// ```text
/// weight × (distinct / rows) × (1 − max_value_share)
/// ```
///
/// join frequency × key-likeness × evenness — the column unfolded queries
/// route through most, provided hashing it spreads rows. Tables below
/// `min_rows` are skipped entirely (sharding a tiny table buys nothing and
/// costs every scan a scatter), as are columns with fewer than two distinct
/// values or past [`MAX_KEY_SKEW`]. Returns `(table, key_column)` pairs
/// sorted by table name — the exact shape
/// `Federation::partitioned`-style constructors take.
pub fn advise_partition_keys(
    stats: &StatsCatalog,
    candidates: &[(String, String, usize)],
    min_rows: usize,
) -> Vec<(String, String)> {
    let mut best: BTreeMap<&str, (f64, &str)> = BTreeMap::new();
    for (table, column, weight) in candidates {
        let Some(table_stats) = stats.table(table) else {
            continue;
        };
        if table_stats.rows < min_rows {
            continue;
        }
        let Some(distinct) = table_stats.distinct_of(column) else {
            continue;
        };
        if distinct < 2 {
            continue;
        }
        let share = table_stats.max_share_of(column).unwrap_or(1.0);
        if share > MAX_KEY_SKEW {
            continue;
        }
        let score = *weight as f64 * (distinct as f64 / table_stats.rows as f64) * (1.0 - share);
        let entry = best.entry(table).or_insert((f64::MIN, column));
        // Ties break toward the lexicographically smaller column so advice
        // is deterministic across runs.
        if score > entry.0 || (score == entry.0 && column.as_str() < entry.1) {
            *entry = (score, column);
        }
    }
    best.into_iter()
        .map(|(table, (_, column))| (table.to_string(), column.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::table::table_of;

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "empty",
            table_of("empty", &[("x", ColumnType::Int)], vec![]).unwrap(),
        );
        db
    }

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let stats = StatsCatalog::analyze(&db());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.row_count("sensors"), Some(100));
        assert_eq!(stats.distinct("sensors", "sid"), Some(100));
        assert_eq!(stats.distinct("sensors", "tid"), Some(7));
        assert_eq!(stats.row_count("empty"), Some(0));
        assert_eq!(stats.row_count("nope"), None);
        assert_eq!(stats.total_rows(), 100);
    }

    #[test]
    fn eq_selectivity_uses_distincts() {
        let stats = StatsCatalog::analyze(&db());
        let sensors = stats.table("sensors").unwrap();
        assert!((sensors.eq_selectivity("tid") - 1.0 / 7.0).abs() < 1e-9);
        assert!((sensors.eq_selectivity("sid") - 0.01).abs() < 1e-9);
        // Unknown column: conservative default.
        assert!((sensors.eq_selectivity("nope") - 0.1).abs() < 1e-9);
    }

    #[test]
    fn skew_tracks_dominant_values() {
        let stats = StatsCatalog::analyze(&db());
        let sensors = stats.table("sensors").unwrap();
        // sid is unique (share 1/100); tid cycles over 7 values evenly.
        assert!((sensors.max_share_of("sid").unwrap() - 0.01).abs() < 1e-9);
        assert!((sensors.max_share_of("tid").unwrap() - 15.0 / 100.0).abs() < 1e-9);
        assert_eq!(sensors.max_share_of("nope"), None);
        assert_eq!(stats.table("empty").unwrap().max_share_of("x"), Some(0.0));
    }

    #[test]
    fn advisor_scores_frequency_distinctness_and_skew() {
        let mut database = db();
        // A skewed column: one value covers 90% of the rows.
        database.put_table(
            "events",
            table_of(
                "events",
                &[("eid", ColumnType::Int), ("kind", ColumnType::Int)],
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(if i < 90 { 0 } else { i })])
                    .collect(),
            )
            .unwrap(),
        );
        let stats = StatsCatalog::analyze(&database);
        let candidates = vec![
            // tid is referenced more often than sid, but sid is the key
            // (100 distinct vs 7): key-likeness dominates here.
            ("sensors".to_string(), "sid".to_string(), 3),
            ("sensors".to_string(), "tid".to_string(), 5),
            // events.kind is hopelessly skewed; eid is clean.
            ("events".to_string(), "kind".to_string(), 9),
            ("events".to_string(), "eid".to_string(), 1),
            // Unknown table / column candidates are ignored.
            ("nope".to_string(), "x".to_string(), 99),
            ("sensors".to_string(), "nope".to_string(), 99),
        ];
        let keys = advise_partition_keys(&stats, &candidates, 10);
        assert_eq!(
            keys,
            vec![
                ("events".to_string(), "eid".to_string()),
                ("sensors".to_string(), "sid".to_string()),
            ]
        );
        // A row floor above every table yields no advice.
        assert!(advise_partition_keys(&stats, &candidates, 1_000).is_empty());
        // The empty table never qualifies (0 rows, 0 distinct).
        let with_empty = vec![("empty".to_string(), "x".to_string(), 50)];
        assert!(advise_partition_keys(&stats, &with_empty, 0).is_empty());
    }

    #[test]
    fn refresh_reflects_new_rows() {
        let mut database = db();
        let before = StatsCatalog::analyze(&database);
        let mut sensors = (**database.table("sensors").unwrap()).clone();
        sensors
            .push_row(vec![Value::Int(1000), Value::Int(99)])
            .unwrap();
        database.put_table("sensors", sensors);
        let after = StatsCatalog::analyze(&database);
        assert_eq!(after.row_count("sensors"), Some(101));
        assert_eq!(after.distinct("sensors", "tid"), Some(8));
        assert_ne!(before, after);
        // The incremental single-table refresh agrees with a full analyze.
        let incremental =
            before.with_refreshed_table("sensors", database.table("sensors").unwrap());
        assert_eq!(incremental, after);
    }
}
