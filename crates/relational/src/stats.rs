//! Table statistics — the cardinality catalog behind cost-based planning.
//!
//! The OBDA planner (join-order selection and semi-join pushdown in
//! `optique-sparql`) needs per-source cardinalities to order the residual
//! joins of an unfolded query: Hovland et al.'s OBDA-constraints work shows
//! that exactly this kind of backend statistic is what makes unfolded
//! queries tractable. A [`StatsCatalog`] snapshots row counts and
//! per-column distinct-value estimates for every table of a [`Database`];
//! the platform refreshes it whenever the relational state changes
//! (`insert_static`), alongside the BGP-cache invalidation.

use std::collections::{HashMap, HashSet};

use crate::table::{Database, Table};
use crate::value::Value;

/// Rows sampled per table when estimating distinct counts; tables larger
/// than this extrapolate from the sample (distinct estimation is advisory —
/// it steers plan choice, never correctness).
const DISTINCT_SAMPLE_CAP: usize = 65_536;

/// Statistics for one table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStats {
    /// Exact row count at analysis time.
    pub rows: usize,
    /// `(column name, estimated distinct values)` in schema order.
    pub distinct: Vec<(String, usize)>,
}

impl TableStats {
    /// Estimated distinct values of `column`, if the column exists.
    pub fn distinct_of(&self, column: &str) -> Option<usize> {
        self.distinct
            .iter()
            .find(|(name, _)| name == column)
            .map(|&(_, n)| n)
    }

    /// Estimated selectivity of an equality predicate on `column`:
    /// `1 / distinct`, defaulting to `0.1` when the column is unknown.
    pub fn eq_selectivity(&self, column: &str) -> f64 {
        match self.distinct_of(column) {
            Some(0) | None => 0.1,
            Some(n) => 1.0 / n as f64,
        }
    }
}

/// Per-table statistics for a whole database snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsCatalog {
    tables: HashMap<String, TableStats>,
}

impl StatsCatalog {
    /// An empty catalog (planners fall back to defaults for every table).
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    /// Analyzes every table of `db`: exact row counts, sampled distinct
    /// estimates per column.
    pub fn analyze(db: &Database) -> Self {
        let mut tables = HashMap::new();
        for name in db.table_names() {
            let table = db.table(name).expect("listed table exists");
            tables.insert(name.to_string(), Self::analyze_table(table));
        }
        StatsCatalog { tables }
    }

    /// A copy of this catalog with `name`'s statistics re-analyzed from
    /// `table` — the incremental path for single-table writes, so appending
    /// to one table never re-scans the whole database.
    pub fn with_refreshed_table(&self, name: &str, table: &Table) -> StatsCatalog {
        let mut tables = self.tables.clone();
        tables.insert(name.to_string(), Self::analyze_table(table));
        StatsCatalog { tables }
    }

    fn analyze_table(table: &Table) -> TableStats {
        let rows = table.len();
        let sample = rows.min(DISTINCT_SAMPLE_CAP);
        let mut distinct = Vec::with_capacity(table.schema.columns().len());
        for (idx, column) in table.schema.columns().iter().enumerate() {
            let mut seen: HashSet<&Value> = HashSet::with_capacity(sample.min(1024));
            for row in table.rows.iter().take(sample) {
                seen.insert(&row[idx]);
            }
            let estimate = if sample < rows && sample > 0 {
                // Linear extrapolation, capped by the row count.
                (seen.len() * rows / sample).min(rows)
            } else {
                seen.len()
            };
            distinct.push((column.name.clone(), estimate));
        }
        TableStats { rows, distinct }
    }

    /// Statistics for `table`, if analyzed.
    pub fn table(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    /// Exact row count of `table` at analysis time.
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(|t| t.rows)
    }

    /// Estimated distinct values of `table.column`.
    pub fn distinct(&self, table: &str, column: &str) -> Option<usize> {
        self.tables.get(table).and_then(|t| t.distinct_of(column))
    }

    /// Number of analyzed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when nothing has been analyzed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total rows across all analyzed tables (a cheap fingerprint tests use
    /// to assert a refresh happened).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::table::table_of;

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("tid", ColumnType::Int)],
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "empty",
            table_of("empty", &[("x", ColumnType::Int)], vec![]).unwrap(),
        );
        db
    }

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let stats = StatsCatalog::analyze(&db());
        assert_eq!(stats.len(), 2);
        assert_eq!(stats.row_count("sensors"), Some(100));
        assert_eq!(stats.distinct("sensors", "sid"), Some(100));
        assert_eq!(stats.distinct("sensors", "tid"), Some(7));
        assert_eq!(stats.row_count("empty"), Some(0));
        assert_eq!(stats.row_count("nope"), None);
        assert_eq!(stats.total_rows(), 100);
    }

    #[test]
    fn eq_selectivity_uses_distincts() {
        let stats = StatsCatalog::analyze(&db());
        let sensors = stats.table("sensors").unwrap();
        assert!((sensors.eq_selectivity("tid") - 1.0 / 7.0).abs() < 1e-9);
        assert!((sensors.eq_selectivity("sid") - 0.01).abs() < 1e-9);
        // Unknown column: conservative default.
        assert!((sensors.eq_selectivity("nope") - 0.1).abs() < 1e-9);
    }

    #[test]
    fn refresh_reflects_new_rows() {
        let mut database = db();
        let before = StatsCatalog::analyze(&database);
        let mut sensors = (**database.table("sensors").unwrap()).clone();
        sensors
            .push_row(vec![Value::Int(1000), Value::Int(99)])
            .unwrap();
        database.put_table("sensors", sensors);
        let after = StatsCatalog::analyze(&database);
        assert_eq!(after.row_count("sensors"), Some(101));
        assert_eq!(after.distinct("sensors", "tid"), Some(8));
        assert_ne!(before, after);
        // The incremental single-table refresh agrees with a full analyze.
        let incremental =
            before.with_refreshed_table("sensors", database.table("sensors").unwrap());
        assert_eq!(incremental, after);
    }
}
