//! Secondary indexes: hash (point lookups) and B-tree (range scans).
//!
//! These are the building blocks of ExaStream's *adaptive indexing*: the
//! engine watches join/filter statistics at runtime and builds one of these
//! over a cached batch of stream tuples when the observed access pattern
//! justifies the build cost (see `optique-exastream::adaptive`).

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::value::Value;

/// A hash index from column value to row ids.
#[derive(Clone, Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<usize>>,
    column: usize,
}

impl HashIndex {
    /// Builds over `rows`, keyed by column `column`. NULL keys are skipped —
    /// SQL equality never matches NULL.
    pub fn build(rows: &[Vec<Value>], column: usize) -> Self {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let key = &row[column];
            if key.is_null() {
                continue;
            }
            map.entry(key.clone()).or_default().push(i);
        }
        HashIndex { map, column }
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A B-tree index supporting point and range lookups.
#[derive(Clone, Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<usize>>,
    column: usize,
}

impl BTreeIndex {
    /// Builds over `rows`, keyed by column `column`. NULL keys are skipped.
    pub fn build(rows: &[Vec<Value>], column: usize) -> Self {
        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            let key = &row[column];
            if key.is_null() {
                continue;
            }
            map.entry(key.clone()).or_default().push(i);
        }
        BTreeIndex { map, column }
    }

    /// Row ids whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ids with keys in `[low, high]`; either bound may be absent.
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        let lower = match low {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        let upper = match high {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for ids in self.map.range((lower, upper)).map(|(_, ids)| ids) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// The indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Smallest and largest key, when non-empty.
    pub fn key_bounds(&self) -> Option<(&Value, &Value)> {
        let first = self.map.keys().next()?;
        let last = self.map.keys().next_back()?;
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(10), Value::text("a")],
            vec![Value::Int(20), Value::text("b")],
            vec![Value::Int(10), Value::text("c")],
            vec![Value::Null, Value::text("d")],
        ]
    }

    #[test]
    fn hash_lookup_groups_duplicates() {
        let idx = HashIndex::build(&rows(), 0);
        assert_eq!(idx.lookup(&Value::Int(10)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(99)), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2, "NULL key skipped");
    }

    #[test]
    fn null_never_matches() {
        let idx = HashIndex::build(&rows(), 0);
        assert!(idx.lookup(&Value::Null).is_empty());
        let bidx = BTreeIndex::build(&rows(), 0);
        assert!(bidx.lookup(&Value::Null).is_empty());
    }

    #[test]
    fn btree_range_inclusive() {
        let idx = BTreeIndex::build(&rows(), 0);
        assert_eq!(
            idx.range(Some(&Value::Int(10)), Some(&Value::Int(15))),
            vec![0, 2]
        );
        assert_eq!(
            idx.range(Some(&Value::Int(10)), Some(&Value::Int(20)))
                .len(),
            3
        );
        assert_eq!(idx.range(None, None).len(), 3);
        assert_eq!(idx.range(Some(&Value::Int(21)), None).len(), 0);
    }

    #[test]
    fn btree_bounds() {
        let idx = BTreeIndex::build(&rows(), 0);
        let (lo, hi) = idx.key_bounds().unwrap();
        assert_eq!(lo, &Value::Int(10));
        assert_eq!(hi, &Value::Int(20));
    }

    #[test]
    fn cross_type_numeric_keys_unify() {
        let rows = vec![vec![Value::Int(5)], vec![Value::Float(5.0)]];
        let idx = HashIndex::build(&rows, 0);
        assert_eq!(idx.lookup(&Value::Float(5.0)).len(), 2);
    }
}
