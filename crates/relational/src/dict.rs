//! The global term dictionary: IRI/literal text ⇄ `u64` id.
//!
//! Every [`Value::Text`](crate::Value::Text) in the engine carries a
//! [`Term`] — the interned text plus its dictionary id — so equality and
//! hashing on the hot path (hash-join probes, semi-join `IN`-set
//! membership, shard routing) are O(1) id operations instead of string
//! hashing, and the fragment wire ships ids instead of lexical terms.
//!
//! The dictionary is **append-only**: an id, once assigned, maps to the
//! same text forever, and equal texts always intern to the same id. That
//! is what makes id-based `Eq`/`Hash` sound process-wide and lets
//! concurrent readers resolve ids without coordination. Id `0` is
//! reserved (it encodes NULL in columnar batches); real ids start at 1.
//!
//! Snapshots ([`DictSnapshot`]) pin the dictionary alongside a
//! [`PlatformSnapshot`]-style catalog view: the pinned length records how
//! many terms existed at capture, and since entries never mutate, every
//! id at or below that watermark resolves identically for as long as the
//! snapshot is held — queries that intern *new* terms mid-flight (minted
//! IRIs, inserted literals) only ever append past the watermark.

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, LazyLock, RwLock};

/// An interned string: the dictionary id plus a shared handle on the text.
///
/// `Eq`/`Hash` go through the id (O(1), no string traversal); `Ord`
/// compares the text so sort orders stay lexical, matching the engine's
/// pre-interning semantics.
#[derive(Clone)]
pub struct Term {
    id: u64,
    text: Arc<str>,
}

impl Term {
    /// Interns `s` in the global dictionary and returns its term.
    pub fn intern(s: &str) -> Term {
        TermDict::global().intern(s)
    }

    /// The dictionary id (never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// A zero-copy handle on the interned text (refcount bump, no clone).
    pub fn text_arc(&self) -> Arc<str> {
        Arc::clone(&self.text)
    }
}

impl Deref for Term {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl AsRef<str> for Term {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Term {}

impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexical, not by id: sorting interned values must behave exactly
        // like sorting their texts.
        self.text.cmp(&other.text)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", &*self.text, self.id)
    }
}

/// The append-only text ⇄ id store behind [`Term`].
#[derive(Default)]
pub struct TermDict {
    inner: RwLock<DictInner>,
}

#[derive(Default)]
struct DictInner {
    ids: HashMap<Arc<str>, u64>,
    /// `terms[i]` is the text of id `i + 1` (id 0 is reserved).
    terms: Vec<Arc<str>>,
}

static GLOBAL: LazyLock<TermDict> = LazyLock::new(TermDict::default);

impl TermDict {
    /// The process-wide dictionary every [`Value::Text`](crate::Value) and
    /// columnar batch codes against. One global instance is what makes
    /// ids a valid wire currency between worker threads: encoder and
    /// decoder share the mapping by construction.
    pub fn global() -> &'static TermDict {
        &GLOBAL
    }

    /// Interns `s`, assigning the next id on first sight.
    pub fn intern(&self, s: &str) -> Term {
        // Fast path: shared read lock for the (overwhelmingly common)
        // already-interned case.
        {
            let inner = self.inner.read().expect("dict poisoned");
            if let Some(&id) = inner.ids.get(s) {
                return Term {
                    id,
                    text: Arc::clone(&inner.terms[(id - 1) as usize]),
                };
            }
        }
        let mut inner = self.inner.write().expect("dict poisoned");
        // Re-check under the write lock: another thread may have interned
        // `s` between our read and write acquisitions; both must get the
        // same id.
        if let Some(&id) = inner.ids.get(s) {
            return Term {
                id,
                text: Arc::clone(&inner.terms[(id - 1) as usize]),
            };
        }
        let text: Arc<str> = Arc::from(s);
        inner.terms.push(Arc::clone(&text));
        let id = inner.terms.len() as u64;
        inner.ids.insert(Arc::clone(&text), id);
        Term { id, text }
    }

    /// Resolves an id minted by [`intern`](Self::intern); `None` for 0 or
    /// an id the dictionary never assigned.
    pub fn resolve(&self, id: u64) -> Option<Term> {
        if id == 0 {
            return None;
        }
        let inner = self.inner.read().expect("dict poisoned");
        inner.terms.get((id - 1) as usize).map(|text| Term {
            id,
            text: Arc::clone(text),
        })
    }

    /// Number of interned terms (the next id is `len() + 1`).
    pub fn len(&self) -> u64 {
        self.inner.read().expect("dict poisoned").terms.len() as u64
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pins the current extent of the dictionary for a consistent reader
    /// view (see [`DictSnapshot`]).
    pub fn snapshot(&self) -> DictSnapshot {
        DictSnapshot { pinned: self.len() }
    }
}

/// A pinned view of the global dictionary, captured alongside a catalog
/// snapshot. Because the dictionary is append-only the snapshot needs no
/// copy: it records the watermark (`pinned_len`) below which every id was
/// already assigned — and therefore immutable — when the snapshot was
/// taken. Concurrent writers can keep interning; they only append past
/// the watermark, so a reader holding this snapshot sees a consistent
/// mapping for every id its pinned catalog can contain.
#[derive(Clone, Copy, Debug)]
pub struct DictSnapshot {
    pinned: u64,
}

impl DictSnapshot {
    /// How many terms existed when this snapshot was captured.
    pub fn pinned_len(&self) -> u64 {
        self.pinned
    }

    /// Resolves `id` against the global dictionary. Ids at or below the
    /// watermark are guaranteed stable for the snapshot's lifetime; newer
    /// ids (terms interned after capture) still resolve — append-only
    /// means they can never alias an older assignment.
    pub fn resolve(&self, id: u64) -> Option<Term> {
        TermDict::global().resolve(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_id() {
        let a = Term::intern("http://example.org/sensor/1");
        let b = Term::intern("http://example.org/sensor/1");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "http://example.org/sensor/1");
    }

    #[test]
    fn distinct_texts_distinct_ids() {
        let a = Term::intern("dict-test-a");
        let b = Term::intern("dict-test-b");
        assert_ne!(a.id(), b.id());
        assert!(a < b, "order is lexical");
    }

    #[test]
    fn resolve_round_trips() {
        let t = Term::intern("dict-test-resolve");
        let back = TermDict::global().resolve(t.id()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.as_str(), "dict-test-resolve");
        assert!(TermDict::global().resolve(0).is_none());
        assert!(TermDict::global().resolve(u64::MAX).is_none());
    }

    #[test]
    fn snapshot_watermark_is_stable() {
        let t = Term::intern("dict-test-snapshot");
        let snap = TermDict::global().snapshot();
        assert!(snap.pinned_len() >= t.id());
        // Interning past the watermark never disturbs pinned ids.
        let _ = Term::intern("dict-test-snapshot-later");
        assert_eq!(snap.resolve(t.id()).unwrap().as_str(), "dict-test-snapshot");
    }

    /// Satellite coverage: concurrent interning of overlapping term sets
    /// must assign one stable id per text — no torn or duplicate
    /// assignments under the read-then-write race.
    #[test]
    fn concurrent_interning_is_id_stable() {
        let texts: Vec<String> = (0..64).map(|i| format!("dict-race-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let texts = texts.clone();
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    // Each thread walks the set from a different offset so
                    // first-intern races spread across the whole set.
                    for i in 0..texts.len() {
                        let s = &texts[(i + t * 8) % texts.len()];
                        let term = Term::intern(s);
                        assert_eq!(term.as_str(), s.as_str());
                        ids.push((s.clone(), term.id()));
                    }
                    ids
                })
            })
            .collect();
        let mut seen: HashMap<String, u64> = HashMap::new();
        for handle in handles {
            for (text, id) in handle.join().unwrap() {
                let prior = seen.entry(text.clone()).or_insert(id);
                assert_eq!(*prior, id, "{text} interned under two ids");
                assert_eq!(
                    TermDict::global().resolve(id).unwrap().as_str(),
                    text,
                    "id must resolve back to its text"
                );
            }
        }
        assert_eq!(seen.len(), texts.len());
    }
}
