//! The novelty overlay — an append-only in-memory write log over the
//! immutable base catalog.
//!
//! A relational write under the platform's incremental write policy does
//! not rebuild the catalog: it publishes a new [`NoveltyOverlay`] — the
//! previous overlay plus the appended rows — stamped with a fresh,
//! globally monotonic **epoch**. Every scan merges base rows with the
//! overlay's rows for the scanned table, so readers see writes
//! immediately while the base `Database` (and everything keyed on its
//! pointer identity: federation pools, partitioned shards) stays intact.
//! A background merge later folds the overlay into the base and starts
//! over from the empty overlay (epoch 0).
//!
//! Epochs are the distributed-consistency handle: a plan fragment
//! carries the epoch its coordinator pinned, and a worker resolves that
//! epoch back to the overlay through a process-global registry
//! ([`NoveltyOverlay::resolve`]) — the same pragmatic global-registry
//! discipline the term dictionary uses for `semid` wire decoding. The
//! registry holds weak references only; the strong reference lives in
//! the platform snapshot that published the overlay, so an overlay is
//! resolvable exactly as long as some snapshot can still route queries
//! at it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::error::SqlError;
use crate::table::Database;
use crate::value::Value;

/// Next epoch to hand out; epoch `0` is reserved for the empty overlay.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Process-global epoch → overlay registry (weak references; pruned on
/// registration once it grows).
fn registry() -> &'static Mutex<HashMap<u64, Weak<NoveltyOverlay>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, Weak<NoveltyOverlay>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Dead registry entries are pruned whenever the map exceeds this size.
const REGISTRY_PRUNE_AT: usize = 64;

/// An immutable per-table log of rows appended since the last merge.
/// Successive writes build successor overlays ([`Self::with_rows`]);
/// nothing mutates a published overlay.
#[derive(Debug, Default)]
pub struct NoveltyOverlay {
    epoch: u64,
    tables: HashMap<String, Arc<Vec<Vec<Value>>>>,
}

impl NoveltyOverlay {
    /// The empty overlay: epoch 0, no rows, never registered.
    pub fn empty() -> Arc<NoveltyOverlay> {
        Arc::new(NoveltyOverlay::default())
    }

    /// A successor overlay with `rows` appended to `table`'s log, stamped
    /// with a fresh globally monotonic epoch and registered for
    /// [`Self::resolve`].
    pub fn with_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Arc<NoveltyOverlay> {
        let mut tables = self.tables.clone();
        let log = tables.entry(table.to_string()).or_default();
        let mut next = (**log).clone();
        next.extend(rows);
        *log = Arc::new(next);
        let overlay = Arc::new(NoveltyOverlay {
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            tables,
        });
        let mut reg = registry().lock().expect("novelty registry lock");
        if reg.len() >= REGISTRY_PRUNE_AT {
            reg.retain(|_, weak| weak.strong_count() > 0);
        }
        reg.insert(overlay.epoch, Arc::downgrade(&overlay));
        overlay
    }

    /// The overlay registered under `epoch`, while some snapshot still
    /// holds it alive. Epoch 0 (the empty overlay) resolves to `None`.
    pub fn resolve(epoch: u64) -> Option<Arc<NoveltyOverlay>> {
        if epoch == 0 {
            return None;
        }
        registry()
            .lock()
            .expect("novelty registry lock")
            .get(&epoch)
            .and_then(Weak::upgrade)
    }

    /// The overlay's epoch (0 for the empty overlay).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total appended rows across all tables — the merge-policy signal.
    pub fn depth(&self) -> usize {
        self.tables.values().map(|rows| rows.len()).sum()
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(|rows| rows.is_empty())
    }

    /// The appended rows of `table`, if any.
    pub fn rows(&self, table: &str) -> Option<&Arc<Vec<Vec<Value>>>> {
        self.tables.get(table)
    }

    /// `(table, appended rows)` pairs in sorted table order (determinism
    /// for merge and tests).
    pub fn tables(&self) -> Vec<(&str, &Arc<Vec<Vec<Value>>>)> {
        let mut out: Vec<_> = self
            .tables
            .iter()
            .map(|(name, rows)| (name.as_str(), rows))
            .collect();
        out.sort_by_key(|(name, _)| *name);
        out
    }
}

/// A worker's slice of the overlay under a hash-partitioned pool: for a
/// table partitioned on `keys[table]`, only the overlay rows hashing to
/// this worker's shard are visible, so a scatter round covers each
/// novelty row exactly once. Tables without an entry (replicated on the
/// worker) see the full overlay.
#[derive(Clone, Debug)]
pub struct NoveltyScope {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shards in the pool.
    pub shards: usize,
    /// Partitioned table → key column index in its schema.
    pub keys: HashMap<String, usize>,
}

/// Resolves the database a fragment pinned at `epoch` executes over:
///
/// * epoch 0, or an epoch the database already carries — `Ok(None)`, use
///   `db` as-is (prevents double application),
/// * a live registered epoch — `Ok(Some(view))`: a clone of `db` with
///   that overlay installed (the clone shares every table `Arc`, so this
///   is a catalog-map copy, not a data copy),
/// * anything else — the overlay was dropped or never existed; the round
///   is unanswerable at its pinned epoch.
pub fn view_at(db: &Database, epoch: u64) -> Result<Option<Database>, SqlError> {
    if epoch == 0 || epoch == db.novelty_epoch() {
        return Ok(None);
    }
    let overlay = NoveltyOverlay::resolve(epoch).ok_or_else(|| {
        SqlError::Execution(format!("unknown novelty epoch {epoch} (overlay retired)"))
    })?;
    let mut view = db.clone();
    view.set_novelty(Some(overlay));
    Ok(Some(view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::shard_of;
    use crate::schema::ColumnType;
    use crate::table::table_of;

    fn base() -> Database {
        let mut db = Database::new();
        db.put_table(
            "t",
            table_of(
                "t",
                &[("id", ColumnType::Int)],
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn epochs_are_monotonic_and_resolvable() {
        let a = NoveltyOverlay::empty().with_rows("t", vec![vec![Value::Int(3)]]);
        let b = a.with_rows("t", vec![vec![Value::Int(4)]]);
        assert!(b.epoch() > a.epoch());
        assert_eq!(a.depth(), 1);
        assert_eq!(b.depth(), 2);
        assert!(Arc::ptr_eq(
            &NoveltyOverlay::resolve(a.epoch()).unwrap(),
            &a
        ));
        assert!(Arc::ptr_eq(
            &NoveltyOverlay::resolve(b.epoch()).unwrap(),
            &b
        ));
        assert!(NoveltyOverlay::resolve(0).is_none());
    }

    #[test]
    fn dropped_overlays_stop_resolving() {
        let a = NoveltyOverlay::empty().with_rows("t", vec![vec![Value::Int(9)]]);
        let epoch = a.epoch();
        drop(a);
        assert!(NoveltyOverlay::resolve(epoch).is_none());
    }

    #[test]
    fn view_at_installs_and_skips() {
        let db = base();
        assert!(view_at(&db, 0).unwrap().is_none());
        let overlay = NoveltyOverlay::empty().with_rows("t", vec![vec![Value::Int(7)]]);
        let view = view_at(&db, overlay.epoch()).unwrap().unwrap();
        assert_eq!(view.novelty_epoch(), overlay.epoch());
        // The same epoch applied twice is a no-op, not a double merge.
        assert!(view_at(&view, overlay.epoch()).unwrap().is_none());
        // A retired epoch errors instead of silently answering stale.
        let retired = overlay.with_rows("t", vec![vec![Value::Int(8)]]).epoch();
        // (drop the only strong ref by not binding the successor)
        assert!(view_at(&db, retired).is_err());
    }

    #[test]
    fn scope_slices_partitioned_tables_only() {
        let overlay =
            NoveltyOverlay::empty().with_rows("t", (0..8).map(|i| vec![Value::Int(i)]).collect());
        let shards = 2;
        let mut dbs: Vec<Database> = (0..shards)
            .map(|shard| {
                let mut db = base();
                db.set_novelty(Some(Arc::clone(&overlay)));
                db.set_novelty_scope(Some(Arc::new(NoveltyScope {
                    shard,
                    shards,
                    keys: [("t".to_string(), 0usize)].into_iter().collect(),
                })));
                db
            })
            .collect();
        let mut seen = 0usize;
        for (shard, db) in dbs.iter().enumerate() {
            for row in db.novelty_rows("t") {
                assert_eq!(shard_of(&row[0], shards), shard);
                seen += 1;
            }
        }
        assert_eq!(seen, 8, "every novelty row lands on exactly one shard");
        // A table outside the key map sees the full overlay on any shard.
        let mut db = dbs.pop().unwrap();
        db.set_novelty(Some(
            NoveltyOverlay::empty().with_rows("other", vec![vec![Value::Int(1)]]),
        ));
        assert_eq!(db.novelty_rows("other").count(), 1);
    }
}
