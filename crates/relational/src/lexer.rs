//! SQL lexer.

use crate::error::SqlError;

/// A lexical token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source.
    pub offset: usize,
}

/// Token kinds. Identifiers keep their original case; keyword matching is
/// case-insensitive at the parser level.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Tokenizes SQL text. Comments (`-- …`) are skipped.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            '/' => {
                i += 1;
                TokenKind::Slash
            }
            '%' => {
                i += 1;
                TokenKind::Percent
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ne
                } else {
                    return Err(SqlError::parse("stray '!'", i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    TokenKind::Le
                }
                Some(&b'>') => {
                    i += 2;
                    TokenKind::Ne
                }
                _ => {
                    i += 1;
                    TokenKind::Lt
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Ge
                } else {
                    i += 1;
                    TokenKind::Gt
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Multi-byte chars: copy the whole char.
                            let ch_len = utf8_len(b);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                        None => return Err(SqlError::parse("unterminated string literal", start)),
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.'
                        && !is_float
                        && bytes.get(end + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        end += 1;
                    } else if (b == 'e' || b == 'E')
                        && bytes
                            .get(end + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == b'-' || *n == b'+')
                    {
                        is_float = true;
                        end += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[i..end];
                i = end;
                if is_float {
                    TokenKind::Float(
                        text.parse()
                            .map_err(|_| SqlError::parse(format!("bad float {text}"), start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse()
                            .map_err(|_| SqlError::parse(format!("bad integer {text}"), start))?,
                    )
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_alphanumeric() || b == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let ident = input[i..end].to_string();
                i = end;
                TokenKind::Ident(ident)
            }
            other => {
                return Err(SqlError::parse(
                    format!("unexpected character {other:?}"),
                    i,
                ))
            }
        };
        tokens.push(Token {
            kind,
            offset: start,
        });
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, b FROM t WHERE x >= 1.5"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Ge,
                TokenKind::Float(1.5),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment\n b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn ne_forms() {
        assert_eq!(kinds("a <> b"), kinds("a != b"));
    }

    #[test]
    fn scientific_float() {
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5e-2"), vec![TokenKind::Float(0.025)]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'abc"), Err(SqlError::Parse { .. })));
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("SELECT x").unwrap();
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn unicode_in_string() {
        assert_eq!(kinds("'türbine'"), vec![TokenKind::Str("türbine".into())]);
    }
}
