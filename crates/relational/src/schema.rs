//! Column types and relation schemas.

use std::fmt;

use crate::error::SqlError;
use crate::value::Value;

/// Static column types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Millisecond instant.
    Timestamp,
    /// Unconstrained (expression results whose type isn't tracked).
    Any,
}

impl ColumnType {
    /// True when a value inhabits this type (NULL inhabits every type).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Any, _)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_) | Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Timestamp, Value::Timestamp(_) | Value::Int(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOL",
            ColumnType::Timestamp => "TIMESTAMP",
            ColumnType::Any => "ANY",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name, unqualified.
    pub name: String,
    /// Static type.
    pub ty: ColumnType,
}

impl Column {
    /// Builds a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// A relation schema: ordered columns, each optionally qualified by the
/// relation alias it came from (`sensor.id` after a join of aliased inputs).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    columns: Vec<Column>,
    qualifiers: Vec<Option<String>>,
}

impl Schema {
    /// Schema from unqualified columns.
    pub fn new(columns: Vec<Column>) -> Self {
        let qualifiers = vec![None; columns.len()];
        Schema {
            columns,
            qualifiers,
        }
    }

    /// Schema where every column carries the same qualifier.
    pub fn qualified(alias: &str, columns: Vec<Column>) -> Self {
        let qualifiers = vec![Some(alias.to_string()); columns.len()];
        Schema {
            columns,
            qualifiers,
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Qualifier of column `i`, if any.
    pub fn qualifier(&self, i: usize) -> Option<&str> {
        self.qualifiers.get(i).and_then(|q| q.as_deref())
    }

    /// Re-qualifies every column (used when a subquery gets an alias).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            columns: self.columns.clone(),
            qualifiers: vec![Some(alias.to_string()); self.columns.len()],
        }
    }

    /// Concatenates two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut qualifiers = self.qualifiers.clone();
        qualifiers.extend(other.qualifiers.iter().cloned());
        Schema {
            columns,
            qualifiers,
        }
    }

    /// Resolves a possibly-qualified name to a column index.
    ///
    /// `"t.c"` requires qualifier and name to match; `"c"` must match exactly
    /// one column name (ambiguity is a binding error).
    pub fn resolve(&self, name: &str) -> Result<usize, SqlError> {
        if let Some((qual, col)) = name.split_once('.') {
            let mut hit = None;
            for (i, c) in self.columns.iter().enumerate() {
                if c.name == col && self.qualifier(i) == Some(qual) {
                    if hit.is_some() {
                        return Err(SqlError::Binding(format!("ambiguous column {name}")));
                    }
                    hit = Some(i);
                }
            }
            return hit.ok_or_else(|| SqlError::Binding(format!("unknown column {name}")));
        }
        let mut hit = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name == name {
                if hit.is_some() {
                    return Err(SqlError::Binding(format!("ambiguous column {name}")));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| SqlError::Binding(format!("unknown column {name}")))
    }

    /// Index of a column by exact unqualified name, first match.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Human-readable header, qualified where applicable.
    pub fn header(&self) -> Vec<String> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| match self.qualifier(i) {
                Some(q) => format!("{q}.{}", c.name),
                None => c.name.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::qualified(
            "s",
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
            ],
        )
    }

    #[test]
    fn resolve_unqualified() {
        assert_eq!(schema().resolve("value").unwrap(), 1);
    }

    #[test]
    fn resolve_qualified() {
        assert_eq!(schema().resolve("s.id").unwrap(), 0);
        assert!(schema().resolve("t.id").is_err());
    }

    #[test]
    fn join_detects_ambiguity() {
        let j = schema().join(&schema().with_qualifier("t"));
        assert!(matches!(j.resolve("id"), Err(SqlError::Binding(_))));
        assert_eq!(j.resolve("t.id").unwrap(), 2);
    }

    #[test]
    fn header_renders_qualifiers() {
        assert_eq!(schema().header(), vec!["s.id", "s.value"]);
    }

    #[test]
    fn admits_with_null_and_widening() {
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(ColumnType::Float.admits(&Value::Int(3)));
        assert!(!ColumnType::Int.admits(&Value::text("x")));
        assert!(ColumnType::Timestamp.admits(&Value::Int(3)));
        assert!(ColumnType::Any.admits(&Value::Bool(true)));
    }
}
