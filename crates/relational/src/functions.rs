//! Scalar and aggregate function registry.
//!
//! The aggregate set includes `CORR` (sample Pearson correlation) and
//! `STDDEV` because the Siemens diagnostic catalog leans on them: "an example
//! diagnostic task is to calculate the Pearson correlation coefficient
//! between turbine stream data".

use std::fmt;

use crate::error::SqlError;
use crate::value::Value;

/// Calls a scalar function by (case-insensitive) name.
pub fn call_scalar(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "abs" => one_numeric(&lower, args)
            .map(|x| x.map(|v| Value::Float(v.abs())).unwrap_or(Value::Null)),
        "sqrt" => one_numeric(&lower, args)
            .map(|x| x.map(|v| Value::Float(v.sqrt())).unwrap_or(Value::Null)),
        "floor" => one_numeric(&lower, args).map(|x| {
            x.map(|v| Value::Int(v.floor() as i64))
                .unwrap_or(Value::Null)
        }),
        "ceil" => one_numeric(&lower, args).map(|x| {
            x.map(|v| Value::Int(v.ceil() as i64))
                .unwrap_or(Value::Null)
        }),
        "round" => one_numeric(&lower, args)
            .map(|x| x.map(|v| Value::Float(v.round())).unwrap_or(Value::Null)),
        "lower" => one_text(&lower, args).map(|x| {
            x.map(|s| Value::text(s.to_ascii_lowercase()))
                .unwrap_or(Value::Null)
        }),
        "upper" => one_text(&lower, args).map(|x| {
            x.map(|s| Value::text(s.to_ascii_uppercase()))
                .unwrap_or(Value::Null)
        }),
        "length" => one_text(&lower, args).map(|x| {
            x.map(|s| Value::Int(s.chars().count() as i64))
                .unwrap_or(Value::Null)
        }),
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "nullif" => {
            expect_arity(&lower, args, 2)?;
            match args[0].sql_eq(&args[1]) {
                Some(true) => Ok(Value::Null),
                _ => Ok(args[0].clone()),
            }
        }
        "concat" => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Null => {}
                    Value::Text(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::text(out))
        }
        // IRI template instantiation used by unfolded mappings:
        // iri_template('http://…/turbine/{}', id).
        "iri_template" => {
            expect_arity(&lower, args, 2)?;
            let (Some(template), v) = (args[0].as_str(), &args[1]) else {
                return Err(SqlError::Type("iri_template needs (text, value)".into()));
            };
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rendered = match v {
                Value::Text(s) => template.replacen("{}", s, 1),
                other => template.replacen("{}", &other.to_string(), 1),
            };
            Ok(Value::text(rendered))
        }
        other => Err(SqlError::Binding(format!(
            "unknown scalar function {other}"
        ))),
    }
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> Result<(), SqlError> {
    if args.len() != n {
        return Err(SqlError::Type(format!(
            "{name} expects {n} arguments, got {}",
            args.len()
        )));
    }
    Ok(())
}

fn one_numeric(name: &str, args: &[Value]) -> Result<Option<f64>, SqlError> {
    expect_arity(name, args, 1)?;
    if args[0].is_null() {
        return Ok(None);
    }
    args[0]
        .as_f64()
        .map(Some)
        .ok_or_else(|| SqlError::Type(format!("{name} expects a numeric argument")))
}

fn one_text<'a>(name: &str, args: &'a [Value]) -> Result<Option<&'a str>, SqlError> {
    expect_arity(name, args, 1)?;
    if args[0].is_null() {
        return Ok(None);
    }
    args[0]
        .as_str()
        .map(Some)
        .ok_or_else(|| SqlError::Type(format!("{name} expects a text argument")))
}

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` (non-NULL count).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// Sample standard deviation.
    StdDev,
    /// Sample Pearson correlation of two expressions.
    Corr,
}

impl AggFunc {
    /// Parses a (case-insensitive) aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "stddev" => AggFunc::StdDev,
            "corr" => AggFunc::Corr,
            _ => return None,
        })
    }

    /// Expected argument count (`None` = COUNT may take 0 for `*`).
    pub fn arity(self) -> usize {
        match self {
            AggFunc::Corr => 2,
            AggFunc::Count => 0, // 0 or 1; checked leniently at bind time
            _ => 1,
        }
    }

    /// Fresh accumulator.
    pub fn new_state(self) -> AggState {
        match self {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                all_int: true,
                int_total: 0,
                seen: false,
            },
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::StdDev => AggState::Moments {
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggFunc::Corr => AggState::Corr(CorrState::default()),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::StdDev => "STDDEV",
            AggFunc::Corr => "CORR",
        };
        f.write_str(s)
    }
}

/// Welford-style running state for `CORR`.
#[derive(Clone, Debug, Default)]
pub struct CorrState {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    cov: f64,
}

impl CorrState {
    fn update(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        // Uses the updated mean for x (dx2) — standard two-pass-free update.
        let dx2 = x - self.mean_x;
        self.m2_x += dx * dx2;
        self.m2_y += dy * (y - self.mean_y);
        self.cov += dx * (y - self.mean_y);
    }

    fn finish(&self) -> Value {
        if self.n < 2 {
            return Value::Null;
        }
        let denom = (self.m2_x * self.m2_y).sqrt();
        if denom == 0.0 {
            return Value::Null;
        }
        Value::Float(self.cov / denom)
    }
}

/// A running aggregate accumulator.
#[derive(Clone, Debug)]
pub enum AggState {
    /// COUNT.
    Count(u64),
    /// SUM with integer preservation.
    Sum {
        /// Float total (always maintained).
        total: f64,
        /// Whether every input so far was an integer.
        all_int: bool,
        /// Integer total (valid while `all_int`).
        int_total: i64,
        /// Whether any non-NULL input arrived.
        seen: bool,
    },
    /// AVG.
    Avg {
        /// Sum of inputs.
        total: f64,
        /// Count of non-NULL inputs.
        n: u64,
    },
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// Welford moments for STDDEV.
    Moments {
        /// Count.
        n: u64,
        /// Running mean.
        mean: f64,
        /// Sum of squared deviations.
        m2: f64,
    },
    /// CORR.
    Corr(CorrState),
}

impl AggState {
    /// Feeds one row's argument values (already evaluated).
    pub fn update(&mut self, args: &[Value]) -> Result<(), SqlError> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) has no args; COUNT(e) skips NULL.
                if args.is_empty() || !args[0].is_null() {
                    *n += 1;
                }
            }
            AggState::Sum {
                total,
                all_int,
                int_total,
                seen,
            } => {
                let v = arg0(args)?;
                if v.is_null() {
                    return Ok(());
                }
                *seen = true;
                match v {
                    Value::Int(i) => {
                        *total += *i as f64;
                        if *all_int {
                            // Checked: an integer SUM that leaves i64 is a
                            // typed overflow error, not a silent wrap — the
                            // float shadow total would otherwise mask it with
                            // a rounded result on one execution path only.
                            *int_total = int_total.checked_add(*i).ok_or_else(|| {
                                SqlError::Overflow(format!("SUM accumulator + {i}"))
                            })?;
                        }
                    }
                    other => {
                        let f = other.as_f64().ok_or_else(|| {
                            SqlError::Type(format!("SUM over non-numeric {other}"))
                        })?;
                        *all_int = false;
                        *total += f;
                    }
                }
            }
            AggState::Avg { total, n } => {
                let v = arg0(args)?;
                if v.is_null() {
                    return Ok(());
                }
                let f = v
                    .as_f64()
                    .ok_or_else(|| SqlError::Type(format!("AVG over non-numeric {v}")))?;
                *total += f;
                *n += 1;
            }
            AggState::Min(slot) => {
                let v = arg0(args)?;
                if v.is_null() {
                    return Ok(());
                }
                if slot
                    .as_ref()
                    .map(|m| v.total_cmp(m).is_lt())
                    .unwrap_or(true)
                {
                    *slot = Some(v.clone());
                }
            }
            AggState::Max(slot) => {
                let v = arg0(args)?;
                if v.is_null() {
                    return Ok(());
                }
                if slot
                    .as_ref()
                    .map(|m| v.total_cmp(m).is_gt())
                    .unwrap_or(true)
                {
                    *slot = Some(v.clone());
                }
            }
            AggState::Moments { n, mean, m2 } => {
                let v = arg0(args)?;
                if v.is_null() {
                    return Ok(());
                }
                let x = v
                    .as_f64()
                    .ok_or_else(|| SqlError::Type(format!("STDDEV over non-numeric {v}")))?;
                *n += 1;
                let delta = x - *mean;
                *mean += delta / *n as f64;
                *m2 += delta * (x - *mean);
            }
            AggState::Corr(state) => {
                if args.len() != 2 {
                    return Err(SqlError::Type("CORR expects two arguments".into()));
                }
                if args[0].is_null() || args[1].is_null() {
                    return Ok(());
                }
                let (Some(x), Some(y)) = (args[0].as_f64(), args[1].as_f64()) else {
                    return Err(SqlError::Type("CORR over non-numeric values".into()));
                };
                state.update(x, y);
            }
        }
        Ok(())
    }

    /// Produces the aggregate result.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum {
                total,
                all_int,
                int_total,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *all_int {
                    Value::Int(*int_total)
                } else {
                    Value::Float(*total)
                }
            }
            AggState::Avg { total, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*total / *n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Moments { n, m2, .. } => {
                if *n < 2 {
                    Value::Null
                } else {
                    Value::Float((m2 / (*n as f64 - 1.0)).sqrt())
                }
            }
            AggState::Corr(state) => state.finish(),
        }
    }
}

fn arg0(args: &[Value]) -> Result<&Value, SqlError> {
    args.first()
        .ok_or_else(|| SqlError::Type("aggregate expects an argument".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_basics() {
        assert_eq!(
            call_scalar("ABS", &[Value::Float(-2.5)]).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            call_scalar("lower", &[Value::text("AbC")]).unwrap(),
            Value::text("abc")
        );
        assert_eq!(
            call_scalar("length", &[Value::text("abc")]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call_scalar("coalesce", &[Value::Null, Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
        assert!(call_scalar("no_such_fn", &[]).is_err());
    }

    #[test]
    fn scalar_null_propagation() {
        assert_eq!(call_scalar("abs", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(call_scalar("upper", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn iri_template_renders() {
        let out = call_scalar(
            "iri_template",
            &[Value::text("http://x/turbine/{}"), Value::Int(42)],
        )
        .unwrap();
        assert_eq!(out, Value::text("http://x/turbine/42"));
        assert_eq!(
            call_scalar("iri_template", &[Value::text("t/{}"), Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn nullif_behaviour() {
        assert_eq!(
            call_scalar("nullif", &[Value::Int(1), Value::Int(1)]).unwrap(),
            Value::Null
        );
        assert_eq!(
            call_scalar("nullif", &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(1)
        );
    }

    fn run(func: AggFunc, rows: &[Vec<Value>]) -> Value {
        let mut st = func.new_state();
        for r in rows {
            st.update(r).unwrap();
        }
        st.finish()
    }

    #[test]
    fn count_skips_nulls_with_arg() {
        let v = run(
            AggFunc::Count,
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(2)]],
        );
        assert_eq!(v, Value::Int(2));
        let star = run(AggFunc::Count, &[vec![], vec![], vec![]]);
        assert_eq!(star, Value::Int(3));
    }

    #[test]
    fn sum_preserves_integerness() {
        let v = run(AggFunc::Sum, &[vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(v, Value::Int(3));
        let v = run(
            AggFunc::Sum,
            &[vec![Value::Int(1)], vec![Value::Float(0.5)]],
        );
        assert_eq!(v, Value::Float(1.5));
        let v = run(AggFunc::Sum, &[vec![Value::Null]]);
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn avg_min_max() {
        assert_eq!(
            run(AggFunc::Avg, &[vec![Value::Int(1)], vec![Value::Int(3)]]),
            Value::Float(2.0)
        );
        assert_eq!(
            run(AggFunc::Min, &[vec![Value::Int(5)], vec![Value::Int(2)]]),
            Value::Int(2)
        );
        assert_eq!(
            run(AggFunc::Max, &[vec![Value::Int(5)], vec![Value::Int(2)]]),
            Value::Int(5)
        );
        assert_eq!(run(AggFunc::Min, &[vec![Value::Null]]), Value::Null);
    }

    #[test]
    fn stddev_sample() {
        let rows: Vec<Vec<Value>> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .map(|&x| vec![Value::Float(x)])
            .collect();
        let Value::Float(sd) = run(AggFunc::StdDev, &rows) else {
            panic!()
        };
        assert!((sd - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn corr_perfect_and_inverse() {
        let pos: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Float(i as f64), Value::Float(2.0 * i as f64 + 1.0)])
            .collect();
        let Value::Float(r) = run(AggFunc::Corr, &pos) else {
            panic!()
        };
        assert!((r - 1.0).abs() < 1e-9);
        let neg: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Float(i as f64), Value::Float(-(i as f64))])
            .collect();
        let Value::Float(r) = run(AggFunc::Corr, &neg) else {
            panic!()
        };
        assert!((r + 1.0).abs() < 1e-9);
    }

    #[test]
    fn corr_degenerate_is_null() {
        assert_eq!(
            run(AggFunc::Corr, &[vec![Value::Float(1.0), Value::Float(2.0)]]),
            Value::Null
        );
        let flat: Vec<Vec<Value>> = (0..5)
            .map(|i| vec![Value::Float(1.0), Value::Float(i as f64)])
            .collect();
        assert_eq!(run(AggFunc::Corr, &flat), Value::Null, "zero variance in x");
    }

    #[test]
    fn agg_name_parsing() {
        assert_eq!(AggFunc::from_name("Corr"), Some(AggFunc::Corr));
        assert_eq!(AggFunc::from_name("nope"), None);
    }
}
