//! The dynamic value model with SQL NULL semantics.

use std::cmp::Ordering;
use std::fmt;

use crate::dict::Term;

/// A runtime SQL value.
///
/// `Timestamp` carries integer milliseconds — the unit the whole streaming
/// stack (windows, pulses, sequence states) computes in.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text, interned in the global [`crate::dict::TermDict`]: the
    /// `Term` derefs to `str`, clones by bumping a refcount, and
    /// equals/hashes through its dictionary id (O(1), no string hashing
    /// on join/`IN`-set probes).
    Text(Term),
    /// Boolean.
    Bool(bool),
    /// Instant in integer milliseconds since the epoch.
    Timestamp(i64),
}

impl Value {
    /// Text constructor: interns `s` once; equal texts share one id and
    /// one allocation process-wide.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Term::intern(s.as_ref()))
    }

    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints and timestamps widen to f64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view (floats are *not* silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality: NULL = anything → NULL (represented as `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL comparison: NULL-propagating; numeric types compare numerically
    /// across Int/Float/Timestamp; mixed non-numeric types compare by type
    /// rank then value (SQLite-style affinity-light behaviour).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// A total order for sorting and index keys: NULL sorts first, numerics
    /// together, then text, then bool. NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => match (a, b) {
                    (Text(x), Text(y)) => x.cmp(y),
                    (Bool(x), Bool(y)) => x.cmp(y),
                    _ => a.type_rank().cmp(&b.type_rank()),
                },
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 1,
            Value::Text(_) => 2,
            Value::Bool(_) => 3,
        }
    }

    /// Truthiness for WHERE evaluation: NULL and false are not satisfied.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            _ => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with the total order's equality: all numerics hash
        // through their f64 bits (NaN canonicalized).
        match self {
            Value::Null => 0u8.hash(state),
            v @ (Value::Int(_) | Value::Float(_) | Value::Timestamp(_)) => {
                1u8.hash(state);
                let f = v.as_f64().expect("numeric");
                let canonical = if f.is_nan() { f64::NAN } else { f };
                canonical.to_bits().hash(state);
            }
            Value::Text(s) => {
                // Interned: hashing the dictionary id is equality-consistent
                // (same text ⇔ same id) and skips the string walk.
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_propagates_in_sql_comparisons() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Timestamp(5).sql_eq(&Value::Int(5)), Some(true));
    }

    #[test]
    fn int_float_equal_values_hash_alike() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [
            Value::Int(1),
            Value::Null,
            Value::text("a"),
            Value::Float(-2.0),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(-2.0));
    }

    #[test]
    fn nan_sorts_after_numbers_and_is_self_equal() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1e300).total_cmp(&nan), Ordering::Less);
        assert_eq!(h(&nan), h(&Value::Float(f64::NAN)));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(7).is_truthy());
        assert!(!Value::Int(0).is_truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("hi").to_string(), "'hi'");
        assert_eq!(Value::Timestamp(9).to_string(), "@9");
    }
}
