//! Rule-based logical optimizer.
//!
//! The unfolding stage produces mechanically-generated SQL — large unions of
//! joins with repeated filters — which the paper notes "can be very
//! inefficient, e.g., they contain many redundant joins and unions" [§1,
//! challenge C3]. The rules here are the relational share of the fix:
//!
//! 1. **Constant folding** — pure subexpressions evaluate at plan time.
//! 2. **Filter merging** — `Filter(Filter(x))` → one conjunctive filter.
//! 3. **Predicate pushdown** — through projections (when column-pure),
//!    union branches, into join sides (respecting LEFT-join semantics), and
//!    finally into scans.
//! 4. **Union flattening** — nested `UnionAll` trees become one n-ary node.
//! 5. **Scan projection pruning** — scans materialize only referenced
//!    columns.
//!
//! Self-join elimination — the mapping-level redundancy — happens earlier,
//! in `optique-mapping::unfold`, where the mapping structure is still known.

use crate::expr::{BinOp, Expr};
use crate::parser::JoinType;
use crate::plan::{split_conjuncts, LogicalPlan};
use crate::schema::Schema;

/// Optimizer toggles, for the ablation benches.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerSettings {
    /// Enable predicate pushdown.
    pub pushdown: bool,
    /// Enable constant folding.
    pub fold_constants: bool,
    /// Enable scan projection pruning.
    pub prune_projections: bool,
}

impl Default for OptimizerSettings {
    fn default() -> Self {
        OptimizerSettings {
            pushdown: true,
            fold_constants: true,
            prune_projections: true,
        }
    }
}

/// Optimizes a bound logical plan.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    optimize_with(plan, &OptimizerSettings::default())
}

/// Optimizes with explicit settings.
pub fn optimize_with(plan: LogicalPlan, settings: &OptimizerSettings) -> LogicalPlan {
    let mut plan = plan;
    if settings.fold_constants {
        plan = map_exprs(plan, &fold_expr);
    }
    plan = flatten_unions(plan);
    if settings.pushdown {
        plan = push_filters(plan);
    }
    if settings.prune_projections {
        plan = prune_scans(plan);
    }
    plan
}

/// Applies `f` to every expression in the plan.
fn map_exprs(plan: LogicalPlan, f: &impl Fn(Expr) -> Expr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            schema,
            filter,
            projection,
        } => LogicalPlan::Scan {
            table,
            alias,
            schema,
            filter: filter.map(f),
            projection,
        },
        LogicalPlan::Materialized { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_exprs(*input, f)),
            predicate: f(predicate),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(map_exprs(*input, f)),
            exprs: exprs.into_iter().map(|(e, n)| (f(e), n)).collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(map_exprs(*left, f)),
            right: Box::new(map_exprs(*right, f)),
            join_type,
            equi: equi.into_iter().map(|(l, r)| (f(l), f(r))).collect(),
            residual: residual.map(f),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_exprs(*input, f)),
            group_exprs: group_exprs.into_iter().map(f).collect(),
            aggregates: aggregates
                .into_iter()
                .map(|(func, args)| (func, args.into_iter().map(f).collect()))
                .collect(),
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_exprs(*input, f)),
            keys: keys.into_iter().map(|(e, d)| (f(e), d)).collect(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(map_exprs(*input, f)),
            n,
        },
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(|p| map_exprs(p, f)).collect(),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(map_exprs(*input, f)),
        },
    }
}

/// Folds constant subexpressions bottom-up.
fn fold_expr(expr: Expr) -> Expr {
    expr.transform(&mut |e| {
        if matches!(e, Expr::Literal(_)) {
            return Ok(None);
        }
        let has_refs = {
            let mut found = false;
            e.walk(&mut |n| {
                if matches!(
                    n,
                    Expr::Column(_) | Expr::ColumnIdx { .. } | Expr::Aggregate { .. }
                ) {
                    found = true;
                }
            });
            found
        };
        if has_refs {
            return Ok(None);
        }
        // All leaves are literals: evaluate. Evaluation errors (e.g. type
        // errors in dead branches) leave the expression as-is.
        match e.eval(&[]) {
            Ok(v) => Ok(Some(Expr::Literal(v))),
            Err(_) => Ok(None),
        }
    })
    .expect("fold transform is infallible")
}

/// Flattens nested unions.
fn flatten_unions(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Union { inputs } => {
            let mut flat = Vec::new();
            for input in inputs {
                match flatten_unions(input) {
                    LogicalPlan::Union { inputs: nested } => flat.extend(nested),
                    other => flat.push(other),
                }
            }
            LogicalPlan::Union { inputs: flat }
        }
        other => map_children(other, flatten_unions),
    }
}

/// Applies `f` to each direct child plan.
fn map_children(plan: LogicalPlan, f: impl Fn(LogicalPlan) -> LogicalPlan + Copy) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Materialized { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join_type,
            equi,
            residual,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(f).collect(),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
    }
}

/// Pushes filters toward the leaves.
fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_filters(*input);
            push_predicate(input, predicate)
        }
        other => map_children(other, push_filters),
    }
}

fn push_predicate(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
    match input {
        // Merge adjacent filters into one conjunction and keep pushing.
        LogicalPlan::Filter {
            input: inner,
            predicate: inner_pred,
        } => {
            let merged = Expr::binary(BinOp::And, inner_pred, predicate);
            push_predicate(*inner, merged)
        }
        LogicalPlan::Scan {
            table,
            alias,
            schema,
            filter,
            projection,
        } => {
            let combined = match filter {
                Some(f) => Expr::binary(BinOp::And, f, predicate),
                None => predicate,
            };
            LogicalPlan::Scan {
                table,
                alias,
                schema,
                filter: Some(combined),
                projection,
            }
        }
        LogicalPlan::Union { inputs } => {
            // Union branches share positional schemas, so the predicate can
            // be replicated verbatim.
            let inputs = inputs
                .into_iter()
                .map(|branch| push_predicate(branch, predicate.clone()))
                .collect();
            LogicalPlan::Union { inputs }
        }
        LogicalPlan::Project {
            input: inner,
            exprs,
            schema,
        } => {
            // Push through when every column the predicate references maps
            // to a pure column expression in the projection.
            if let Some(remapped) = remap_through_project(&predicate, &exprs) {
                let pushed = push_predicate(*inner, remapped);
                LogicalPlan::Project {
                    input: Box::new(pushed),
                    exprs,
                    schema,
                }
            } else {
                LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Project {
                        input: inner,
                        exprs,
                        schema,
                    }),
                    predicate,
                }
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
            schema,
        } => {
            let left_len = left.schema().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            for conjunct in split_conjuncts(&predicate) {
                let cols = conjunct.referenced_columns();
                let all_left = cols.iter().all(|&c| c < left_len);
                let all_right = cols.iter().all(|&c| c >= left_len);
                if all_left {
                    to_left.push(conjunct);
                } else if all_right && join_type == JoinType::Inner {
                    // Shift column indices into the right input's frame.
                    to_right.push(shift_columns(&conjunct, left_len));
                } else {
                    keep.push(conjunct);
                }
            }
            let left = if let Some(p) = Expr::and_all(to_left) {
                Box::new(push_predicate(*left, p))
            } else {
                left
            };
            let right = if let Some(p) = Expr::and_all(to_right) {
                Box::new(push_predicate(*right, p))
            } else {
                right
            };
            let join = LogicalPlan::Join {
                left,
                right,
                join_type,
                equi,
                residual,
                schema,
            };
            match Expr::and_all(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            }
        }
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Rewrites a predicate's column references through a projection when every
/// referenced output column is a bare column expression.
fn remap_through_project(predicate: &Expr, exprs: &[(Expr, String)]) -> Option<Expr> {
    let mut ok = true;
    let result = predicate
        .transform(&mut |e| {
            if let Expr::ColumnIdx { index, .. } = e {
                match exprs.get(*index) {
                    Some((Expr::ColumnIdx { index: src, name }, _)) => {
                        return Ok(Some(Expr::ColumnIdx {
                            index: *src,
                            name: name.clone(),
                        }))
                    }
                    _ => {
                        ok = false;
                    }
                }
            }
            Ok(None)
        })
        .expect("remap transform is infallible");
    ok.then_some(result)
}

/// Shifts all column indices down by `offset` (join-right reframing).
fn shift_columns(expr: &Expr, offset: usize) -> Expr {
    expr.transform(&mut |e| {
        if let Expr::ColumnIdx { index, name } = e {
            return Ok(Some(Expr::ColumnIdx {
                index: index - offset,
                name: name.clone(),
            }));
        }
        Ok(None)
    })
    .expect("shift transform is infallible")
}

/// Prunes scan columns: `Project` directly above `Scan` narrows the scan to
/// the referenced columns and remaps the projection.
fn prune_scans(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, prune_scans);
    let LogicalPlan::Project {
        input,
        exprs,
        schema,
    } = plan
    else {
        return plan;
    };
    let LogicalPlan::Scan {
        table,
        alias,
        schema: scan_schema,
        filter,
        projection: None,
    } = *input
    else {
        return LogicalPlan::Project {
            input,
            exprs,
            schema,
        };
    };
    // Columns the projection expressions need. The scan filter runs on the
    // FULL row before projection (executor semantics), so its column
    // references stay in full-row coordinates and do not force
    // materialization.
    let mut needed: Vec<usize> = exprs
        .iter()
        .flat_map(|(e, _)| e.referenced_columns())
        .collect();
    needed.sort_unstable();
    needed.dedup();
    if needed.len() == scan_schema.len() {
        // Nothing to prune.
        return LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                table,
                alias,
                schema: scan_schema,
                filter,
                projection: None,
            }),
            exprs,
            schema,
        };
    }
    let remap = |e: &Expr| {
        e.transform(&mut |n| {
            if let Expr::ColumnIdx { index, name } = n {
                let new = needed.binary_search(index).expect("needed column present");
                return Ok(Some(Expr::ColumnIdx {
                    index: new,
                    name: name.clone(),
                }));
            }
            Ok(None)
        })
        .expect("remap is infallible")
    };
    let new_exprs: Vec<(Expr, String)> = exprs.iter().map(|(e, n)| (remap(e), n.clone())).collect();
    let pruned_schema = {
        let cols: Vec<_> = needed
            .iter()
            .map(|&i| scan_schema.columns()[i].clone())
            .collect();
        let mut s = Schema::new(cols);
        if let Some(q) = scan_schema.qualifier(0) {
            s = s.with_qualifier(q);
        }
        s
    };
    LogicalPlan::Project {
        input: Box::new(LogicalPlan::Scan {
            table,
            alias,
            schema: pruned_schema,
            filter,
            projection: Some(needed),
        }),
        exprs: new_exprs,
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::plan_select;
    use crate::schema::ColumnType;
    use crate::table::{table_of, Database};
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "m",
            table_of(
                "m",
                &[
                    ("sensor_id", ColumnType::Int),
                    ("ts", ColumnType::Timestamp),
                    ("value", ColumnType::Float),
                ],
                vec![vec![Value::Int(1), Value::Timestamp(0), Value::Float(70.0)]],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("id", ColumnType::Int), ("name", ColumnType::Text)],
                vec![vec![Value::Int(1), Value::text("inlet")]],
            )
            .unwrap(),
        );
        db
    }

    fn optimized(sql: &str) -> LogicalPlan {
        optimize(plan_select(&parse_select(sql).unwrap(), &db()).unwrap())
    }

    #[test]
    fn filter_reaches_scan() {
        let p = optimized("SELECT value FROM m WHERE sensor_id = 1");
        let ex = p.explain();
        assert!(ex.contains("Scan m AS m [filter:"), "{ex}");
        assert!(
            !ex.contains("\nFilter"),
            "no standalone filter remains: {ex}"
        );
    }

    #[test]
    fn filter_splits_across_join() {
        let p = optimized(
            "SELECT name FROM m JOIN sensors s ON m.sensor_id = s.id \
             WHERE m.value > 50 AND s.name = 'inlet'",
        );
        let ex = p.explain();
        // Both conjuncts should land in their respective scans.
        assert!(ex.contains("Scan m AS m [filter:"), "{ex}");
        assert!(ex.contains("Scan sensors AS s [filter:"), "{ex}");
    }

    #[test]
    fn left_join_right_filter_not_pushed() {
        let p = optimized(
            "SELECT name FROM m LEFT JOIN sensors s ON m.sensor_id = s.id WHERE s.name = 'inlet'",
        );
        let ex = p.explain();
        assert!(
            ex.contains("Filter"),
            "right-side filter must stay above the left join: {ex}"
        );
        assert!(!ex.contains("Scan sensors AS s [filter:"), "{ex}");
    }

    #[test]
    fn filter_pushes_into_union_branches() {
        let p = optimized(
            "SELECT v FROM (SELECT value AS v FROM m UNION ALL SELECT value AS v FROM m) u WHERE v > 1",
        );
        let ex = p.explain();
        let pushed = ex.matches("Scan m AS m [filter:").count();
        assert_eq!(pushed, 2, "{ex}");
    }

    #[test]
    fn constants_fold() {
        let p = optimized("SELECT value FROM m WHERE value > 2 + 3");
        let ex = p.explain();
        assert!(ex.contains("> 5"), "{ex}");
        assert!(!ex.contains("2 + 3"), "{ex}");
    }

    #[test]
    fn unions_flatten() {
        let p = optimized(
            "SELECT value FROM m UNION ALL SELECT value FROM m UNION ALL SELECT value FROM m",
        );
        let ex = p.explain();
        assert!(ex.contains("UnionAll (3 branches)"), "{ex}");
    }

    #[test]
    fn scan_pruning_narrows_columns() {
        let p = optimized("SELECT value FROM m");
        let ex = p.explain();
        assert!(ex.contains("[cols: [2]]"), "{ex}");
    }

    #[test]
    fn pruned_plan_schema_stable() {
        let p = optimized("SELECT value, sensor_id FROM m WHERE ts = 0");
        assert_eq!(p.schema().header(), vec!["value", "sensor_id"]);
    }

    /// Regression: the scan filter runs on the full row, so pruning must NOT
    /// remap its column indices (doing so silently filtered everything out).
    #[test]
    fn pruned_scan_filter_still_correct() {
        let plan = optimized("SELECT value FROM m WHERE sensor_id = 1");
        let result = crate::exec::execute(&plan, &db()).unwrap();
        assert_eq!(result.len(), 1, "plan:\n{}", plan.explain());
        // And through a subquery, where the filter column is not projected.
        let sub = optimized("SELECT v FROM (SELECT value AS v FROM m WHERE sensor_id = 1) AS u");
        let result = crate::exec::execute(&sub, &db()).unwrap();
        assert_eq!(result.len(), 1, "plan:\n{}", sub.explain());
    }
}
