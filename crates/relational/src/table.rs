//! Row-oriented tables and the database catalog.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::SqlError;
use crate::index::{BTreeIndex, HashIndex};
use crate::novelty::{NoveltyOverlay, NoveltyScope};
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;

/// A materialized relation: a schema plus rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// The relation schema.
    pub schema: Schema,
    /// Row-major data; every row has `schema.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Builds a table, validating row arity and column types.
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self, SqlError> {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// Appends a row after arity/type validation.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), SqlError> {
        self.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Validates a row against the schema (arity + column types) without
    /// appending it — the novelty write path admits rows into the overlay
    /// log without cloning the base table.
    pub fn check_row(&self, row: &[Value]) -> Result<(), SqlError> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Execution(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.schema.len()
            )));
        }
        for (value, column) in row.iter().zip(self.schema.columns()) {
            if !column.ty.admits(value) {
                return Err(SqlError::Type(format!(
                    "value {value} not admitted by column {} of type {}",
                    column.name, column.ty
                )));
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an ASCII preview of up to `limit` rows (dashboard + examples).
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.header().join(" | "));
        out.push('\n');
        for row in self.rows.iter().take(limit) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("… {} more rows\n", self.rows.len() - limit));
        }
        out
    }
}

/// A table-valued function: takes literal arguments, returns a relation.
/// SQL(+) exposes the stream operators (`timeSlidingWindow`, `wcache`) this
/// way, exactly as the paper describes ExaStream's UDF mechanism.
pub type TableFunction = Arc<dyn Fn(&[Value], &Database) -> Result<Table, SqlError> + Send + Sync>;

/// The catalog: named tables, secondary indexes, and registered UDFs.
#[derive(Clone, Default)]
pub struct Database {
    tables: HashMap<String, Arc<Table>>,
    hash_indexes: HashMap<(String, String), Arc<HashIndex>>,
    btree_indexes: HashMap<(String, String), Arc<BTreeIndex>>,
    table_functions: HashMap<String, TableFunction>,
    /// Rows appended since the last merge; scans union these with the
    /// base rows of the scanned table ([`Self::novelty_rows`]).
    novelty: Option<Arc<NoveltyOverlay>>,
    /// On a partitioned worker: which slice of the overlay this catalog
    /// sees (None = the full overlay).
    novelty_scope: Option<Arc<NoveltyScope>>,
}

impl Database {
    /// An empty catalog.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers (or replaces) a table under `name`. Existing indexes on the
    /// old table are dropped — they describe stale data.
    pub fn put_table(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.hash_indexes.retain(|(t, _), _| t != &name);
        self.btree_indexes.retain(|(t, _), _| t != &name);
        self.tables.insert(name, Arc::new(table));
    }

    /// Fetches a table.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// True when a table named `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Builds (or rebuilds) a hash index on `table.column`.
    pub fn create_hash_index(&mut self, table: &str, column: &str) -> Result<(), SqlError> {
        let t = self.table(table)?.clone();
        let col = t
            .schema
            .index_of(column)
            .ok_or_else(|| SqlError::Binding(format!("unknown column {column} on {table}")))?;
        let index = HashIndex::build(&t.rows, col);
        self.hash_indexes
            .insert((table.to_string(), column.to_string()), Arc::new(index));
        Ok(())
    }

    /// Builds (or rebuilds) a B-tree index on `table.column`.
    pub fn create_btree_index(&mut self, table: &str, column: &str) -> Result<(), SqlError> {
        let t = self.table(table)?.clone();
        let col = t
            .schema
            .index_of(column)
            .ok_or_else(|| SqlError::Binding(format!("unknown column {column} on {table}")))?;
        let index = BTreeIndex::build(&t.rows, col);
        self.btree_indexes
            .insert((table.to_string(), column.to_string()), Arc::new(index));
        Ok(())
    }

    /// Hash index lookup, if one exists for `table.column`.
    pub fn hash_index(&self, table: &str, column: &str) -> Option<&Arc<HashIndex>> {
        self.hash_indexes
            .get(&(table.to_string(), column.to_string()))
    }

    /// B-tree index lookup, if one exists for `table.column`.
    pub fn btree_index(&self, table: &str, column: &str) -> Option<&Arc<BTreeIndex>> {
        self.btree_indexes
            .get(&(table.to_string(), column.to_string()))
    }

    /// Registers a table-valued function under `name` (case-insensitive).
    pub fn register_table_function(&mut self, name: impl Into<String>, f: TableFunction) {
        self.table_functions
            .insert(name.into().to_ascii_lowercase(), f);
    }

    /// Fetches a table-valued function.
    pub fn table_function(&self, name: &str) -> Option<&TableFunction> {
        self.table_functions.get(&name.to_ascii_lowercase())
    }

    /// Installs (or clears) the novelty overlay scans merge with.
    pub fn set_novelty(&mut self, overlay: Option<Arc<NoveltyOverlay>>) {
        self.novelty = overlay;
    }

    /// The installed novelty overlay, if any.
    pub fn novelty(&self) -> Option<&Arc<NoveltyOverlay>> {
        self.novelty.as_ref()
    }

    /// The installed overlay's epoch (0 when none is installed).
    pub fn novelty_epoch(&self) -> u64 {
        self.novelty.as_ref().map_or(0, |n| n.epoch())
    }

    /// Restricts the visible overlay to one worker's shard slice (see
    /// [`NoveltyScope`]).
    pub fn set_novelty_scope(&mut self, scope: Option<Arc<NoveltyScope>>) {
        self.novelty_scope = scope;
    }

    /// The installed novelty scope, if any — consumers that index the raw
    /// overlay log (the pane store's incremental fold) re-apply the shard
    /// filter themselves.
    pub fn novelty_scope(&self) -> Option<&Arc<NoveltyScope>> {
        self.novelty_scope.as_ref()
    }

    /// The overlay rows of `table` visible through this catalog: all of
    /// them by default, or — for a table this catalog's [`NoveltyScope`]
    /// partitions — only the rows hashing to this worker's shard.
    pub fn novelty_rows<'a>(&'a self, table: &str) -> impl Iterator<Item = &'a Vec<Value>> + 'a {
        let rows: &[Vec<Value>] = self
            .novelty
            .as_ref()
            .and_then(|n| n.rows(table))
            .map_or(&[], |r| r.as_slice());
        let slice = self
            .novelty_scope
            .as_ref()
            .and_then(|s| s.keys.get(table).map(|&col| (s.shard, s.shards, col)));
        rows.iter().filter(move |row| match slice {
            Some((shard, shards, col)) => crate::fragment::shard_of(&row[col], shards) == shard,
            None => true,
        })
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Database({} tables, {} hash idx, {} btree idx, {} table fns, novelty@{})",
            self.tables.len(),
            self.hash_indexes.len(),
            self.btree_indexes.len(),
            self.table_functions.len(),
            self.novelty_epoch()
        )
    }
}

/// Convenience builder used pervasively by tests and the workload generator.
pub fn table_of(
    alias: &str,
    cols: &[(&str, ColumnType)],
    rows: Vec<Vec<Value>>,
) -> Result<Table, SqlError> {
    let schema = Schema::qualified(
        alias,
        cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
    );
    Table::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensors() -> Table {
        table_of(
            "sensor",
            &[("id", ColumnType::Int), ("name", ColumnType::Text)],
            vec![
                vec![Value::Int(1), Value::text("t-inlet")],
                vec![Value::Int(2), Value::text("t-outlet")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sensors();
        let err = t.push_row(vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(err, SqlError::Execution(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = sensors();
        let err = t
            .push_row(vec![Value::text("x"), Value::text("y")])
            .unwrap_err();
        assert!(matches!(err, SqlError::Type(_)));
    }

    #[test]
    fn catalog_roundtrip() {
        let mut db = Database::new();
        db.put_table("sensor", sensors());
        assert!(db.has_table("sensor"));
        assert_eq!(db.table("sensor").unwrap().len(), 2);
        assert!(matches!(
            db.table("missing"),
            Err(SqlError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_creation_and_invalidation() {
        let mut db = Database::new();
        db.put_table("sensor", sensors());
        db.create_hash_index("sensor", "id").unwrap();
        assert!(db.hash_index("sensor", "id").is_some());
        // Replacing the table drops the stale index.
        db.put_table("sensor", sensors());
        assert!(db.hash_index("sensor", "id").is_none());
    }

    #[test]
    fn index_on_unknown_column_fails() {
        let mut db = Database::new();
        db.put_table("sensor", sensors());
        assert!(db.create_btree_index("sensor", "nope").is_err());
    }

    #[test]
    fn table_function_registry_is_case_insensitive() {
        let mut db = Database::new();
        db.register_table_function(
            "TimeSlidingWindow",
            Arc::new(|_args, _db| Ok(Table::empty(Schema::new(vec![])))),
        );
        assert!(db.table_function("timeslidingwindow").is_some());
        assert!(db.table_function("TIMESLIDINGWINDOW").is_some());
    }

    #[test]
    fn render_truncates() {
        let r = sensors().render(1);
        assert!(r.contains("… 1 more rows"));
    }
}
