//! Recursive-descent parser for the SQL subset STARQL unfolding emits.

use std::fmt;

use crate::error::SqlError;
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::functions::AggFunc;
use crate::lexer::{lex, Token, TokenKind};
use crate::value::Value;

/// One SELECT-list item.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `*`
    Star,
    /// An expression with optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, when present.
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    /// A named base table.
    Named {
        /// Catalog name.
        name: String,
        /// Alias (defaults to the name).
        alias: String,
    },
    /// A parenthesised subquery.
    Subquery {
        /// The inner query.
        query: Box<SelectStatement>,
        /// Mandatory alias.
        alias: String,
    },
    /// A table-valued function call (SQL(+) stream operators).
    Function {
        /// Function name.
        name: String,
        /// Literal/expression arguments.
        args: Vec<Expr>,
        /// Alias (defaults to the function name).
        alias: String,
    },
}

impl TableRef {
    /// The alias this relation binds in scope.
    pub fn alias(&self) -> &str {
        match self {
            TableRef::Named { alias, .. }
            | TableRef::Subquery { alias, .. }
            | TableRef::Function { alias, .. } => alias,
        }
    }
}

/// Join kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinType {
    /// INNER JOIN.
    Inner,
    /// LEFT (outer) JOIN.
    Left,
}

/// One JOIN clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// INNER or LEFT.
    pub join_type: JoinType,
    /// The joined relation.
    pub table: TableRef,
    /// The ON condition.
    pub on: Expr,
}

/// A parsed SELECT statement (possibly a UNION ALL chain).
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStatement {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// SELECT list.
    pub projections: Vec<Projection>,
    /// First FROM relation.
    pub from: TableRef,
    /// Subsequent JOINs in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys with `desc` flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// `UNION ALL <select>` continuation.
    pub union_all: Option<Box<SelectStatement>>,
}

/// Parses one SELECT statement (with optional UNION ALL chain) from `sql`.
pub fn parse_select(sql: &str) -> Result<SelectStatement, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_select()?;
    if p.pos != p.tokens.len() {
        return Err(SqlError::parse(
            format!(
                "unexpected trailing tokens starting with {:?}",
                p.tokens[p.pos].kind
            ),
            p.tokens[p.pos].offset,
        ));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(format!("expected {kw}"), self.offset()))
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            other => Err(SqlError::parse(
                format!("expected {kind:?}, got {other:?}"),
                self.offset(),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.bump() {
            Some(TokenKind::Ident(w)) => Ok(w),
            other => Err(SqlError::parse(
                format!("expected identifier, got {other:?}"),
                self.offset(),
            )),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = vec![self.parse_projection()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.pos += 1;
            projections.push(self.parse_projection()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let join_type = if self.peek_keyword("JOIN") || self.peek_keyword("INNER") {
                self.eat_keyword("INNER");
                self.expect_keyword("JOIN")?;
                JoinType::Inner
            } else if self.peek_keyword("LEFT") {
                self.pos += 1;
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinType::Left
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join {
                join_type,
                table,
                on,
            });
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push((e, desc));
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Some(TokenKind::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::parse(
                        format!("LIMIT expects a non-negative integer, got {other:?}"),
                        self.offset(),
                    ))
                }
            }
        } else {
            None
        };
        let union_all = if self.eat_keyword("UNION") {
            self.expect_keyword("ALL")?;
            Some(Box::new(self.parse_select()?))
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            projections,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            union_all,
        })
    }

    fn parse_projection(&mut self) -> Result<Projection, SqlError> {
        if matches!(self.peek(), Some(TokenKind::Star)) {
            self.pos += 1;
            return Ok(Projection::Star);
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else {
            // Bare alias (ident not a clause keyword) is accepted too.
            match self.peek() {
                Some(TokenKind::Ident(w)) if !is_clause_keyword(w) => Some(self.expect_ident()?),
                _ => None,
            }
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        if matches!(self.peek(), Some(TokenKind::LParen)) {
            self.pos += 1;
            let query = Box::new(self.parse_select()?);
            self.expect(&TokenKind::RParen)?;
            self.eat_keyword("AS");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Subquery { query, alias });
        }
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(TokenKind::LParen)) {
            self.pos += 1;
            let mut args = Vec::new();
            if !matches!(self.peek(), Some(TokenKind::RParen)) {
                args.push(self.parse_expr()?);
                while matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            let alias = self.parse_optional_alias()?.unwrap_or_else(|| name.clone());
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = self.parse_optional_alias()?.unwrap_or_else(|| name.clone());
        Ok(TableRef::Named { name, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.expect_ident()?));
        }
        match self.peek() {
            Some(TokenKind::Ident(w)) if !is_clause_keyword(w) => Ok(Some(self.expect_ident()?)),
            _ => Ok(None),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN ( … ) / BETWEEN … AND …
        if self.peek_keyword("NOT") {
            // Look ahead for IN/BETWEEN; plain NOT is handled higher up.
            let save = self.pos;
            self.pos += 1;
            if self.eat_keyword("IN") {
                return self.finish_in(left, true);
            }
            if self.eat_keyword("BETWEEN") {
                let b = self.finish_between(left)?;
                return Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(b),
                });
            }
            self.pos = save;
        }
        if self.eat_keyword("IN") {
            return self.finish_in(left, false);
        }
        if self.eat_keyword("BETWEEN") {
            return self.finish_between(left);
        }
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::Ne) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn finish_in(&mut self, left: Expr, negated: bool) -> Result<Expr, SqlError> {
        self.expect(&TokenKind::LParen)?;
        let mut list = vec![self.parse_expr()?];
        while matches!(self.peek(), Some(TokenKind::Comma)) {
            self.pos += 1;
            list.push(self.parse_expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    fn finish_between(&mut self, left: Expr) -> Result<Expr, SqlError> {
        let low = self.parse_additive()?;
        self.expect_keyword("AND")?;
        let high = self.parse_additive()?;
        Ok(Expr::Between {
            expr: Box::new(left),
            low: Box::new(low),
            high: Box::new(high),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        if matches!(self.peek(), Some(TokenKind::Minus)) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SqlError> {
        match self.bump() {
            Some(TokenKind::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(TokenKind::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(TokenKind::Str(s)) => Ok(Expr::Literal(Value::text(s))),
            Some(TokenKind::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(word)) => {
                if word.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                // Function call?
                if matches!(self.peek(), Some(TokenKind::LParen)) {
                    self.pos += 1;
                    // COUNT(*) special form.
                    if matches!(self.peek(), Some(TokenKind::Star)) {
                        self.pos += 1;
                        self.expect(&TokenKind::RParen)?;
                        if let Some(AggFunc::Count) = AggFunc::from_name(&word) {
                            return Ok(Expr::Aggregate {
                                func: AggFunc::Count,
                                args: vec![],
                            });
                        }
                        return Err(SqlError::parse(
                            format!("only COUNT may take '*', not {word}"),
                            self.offset(),
                        ));
                    }
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(TokenKind::RParen)) {
                        args.push(self.parse_expr()?);
                        while matches!(self.peek(), Some(TokenKind::Comma)) {
                            self.pos += 1;
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    if let Some(func) = AggFunc::from_name(&word) {
                        return Ok(Expr::Aggregate { func, args });
                    }
                    return Ok(Expr::Function {
                        name: word.to_ascii_lowercase(),
                        args,
                    });
                }
                // Qualified column?
                if matches!(self.peek(), Some(TokenKind::Dot)) {
                    self.pos += 1;
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column(format!("{word}.{col}")));
                }
                Ok(Expr::Column(word))
            }
            other => Err(SqlError::parse(
                format!("unexpected token {other:?}"),
                self.offset(),
            )),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION", "JOIN", "INNER", "LEFT",
        "OUTER", "ON", "AS", "AND", "OR", "NOT", "ASC", "DESC", "BY", "SELECT", "DISTINCT", "IS",
        "IN", "BETWEEN", "ALL", "NULL",
    ];
    KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k))
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {}", if self.distinct { "DISTINCT " } else { "" })?;
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                Projection::Star => write!(f, "*")?,
                Projection::Expr {
                    expr,
                    alias: Some(a),
                } => write!(f, "{expr} AS {a}")?,
                Projection::Expr { expr, alias: None } => write!(f, "{expr}")?,
            }
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            let kw = match j.join_type {
                JoinType::Inner => "JOIN",
                JoinType::Left => "LEFT JOIN",
            };
            write!(f, " {kw} {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, desc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}{}", if *desc { " DESC" } else { "" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if let Some(u) = &self.union_all {
            write!(f, " UNION ALL {u}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                if name == alias {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name} AS {alias}")
                }
            }
            TableRef::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
            TableRef::Function { name, args, alias } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if alias != name {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_select("SELECT id, value FROM measurements WHERE value > 80").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.from.alias(), "measurements");
    }

    #[test]
    fn aliases() {
        let s = parse_select("SELECT m.value AS v FROM measurements m").unwrap();
        assert_eq!(s.from.alias(), "m");
        let Projection::Expr { alias, .. } = &s.projections[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("v"));
    }

    #[test]
    fn joins_parse() {
        let s = parse_select(
            "SELECT s.name FROM sensors s JOIN assemblies a ON s.assembly_id = a.id \
             LEFT JOIN turbines t ON a.turbine_id = t.id",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].join_type, JoinType::Inner);
        assert_eq!(s.joins[1].join_type, JoinType::Left);
    }

    #[test]
    fn group_having_order_limit() {
        let s = parse_select(
            "SELECT sensor_id, AVG(value) FROM m GROUP BY sensor_id \
             HAVING AVG(value) > 75 ORDER BY sensor_id DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].1);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn union_all_chain() {
        let s =
            parse_select("SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION ALL SELECT a FROM t3")
                .unwrap();
        let mut n = 1;
        let mut cur = &s;
        while let Some(next) = &cur.union_all {
            n += 1;
            cur = next;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn subquery_in_from() {
        let s =
            parse_select("SELECT v FROM (SELECT value AS v FROM m) AS sub WHERE v > 1").unwrap();
        assert!(matches!(s.from, TableRef::Subquery { .. }));
    }

    #[test]
    fn table_function_in_from() {
        let s =
            parse_select("SELECT * FROM timeslidingwindow('S_Msmt', 10000, 1000) AS w").unwrap();
        let TableRef::Function { name, args, alias } = &s.from else {
            panic!()
        };
        assert_eq!(name, "timeslidingwindow");
        assert_eq!(args.len(), 3);
        assert_eq!(alias, "w");
    }

    #[test]
    fn count_star() {
        let s = parse_select("SELECT COUNT(*) FROM m").unwrap();
        let Projection::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        assert_eq!(
            expr,
            &Expr::Aggregate {
                func: AggFunc::Count,
                args: vec![]
            }
        );
    }

    #[test]
    fn corr_two_args() {
        let s = parse_select("SELECT CORR(a, b) FROM m").unwrap();
        let Projection::Expr { expr, .. } = &s.projections[0] else {
            panic!()
        };
        let Expr::Aggregate {
            func: AggFunc::Corr,
            args,
        } = expr
        else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn precedence_and_parens() {
        let s = parse_select("SELECT a FROM t WHERE a + 2 * 3 = 7 AND (b OR c)").unwrap();
        let w = s.where_clause.unwrap();
        // AND at top.
        let Expr::Binary { op: BinOp::And, .. } = w else {
            panic!("expected top-level AND")
        };
    }

    #[test]
    fn in_between_not() {
        let s = parse_select(
            "SELECT a FROM t WHERE a IN (1, 2) AND b BETWEEN 0 AND 9 AND c NOT IN (3)",
        )
        .unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn is_null_forms() {
        let s = parse_select("SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL").unwrap();
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn display_roundtrip() {
        let sql = "SELECT m.value AS v FROM measurements AS m JOIN sensors AS s ON (m.sensor_id = s.id) WHERE (m.value > 80) LIMIT 5";
        let s = parse_select(sql).unwrap();
        let re = parse_select(&s.to_string()).unwrap();
        assert_eq!(s, re);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_select("SELECT a FROM t xyzzy garbage garbage").is_err());
    }

    #[test]
    fn error_offsets() {
        let err = parse_select("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
    }
}
