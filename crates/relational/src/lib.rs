//! In-memory relational engine — the "SQLite" substrate under ExaStream.
//!
//! The paper builds EXASTREAM "as a streaming extension of the SQLite DBMS";
//! this crate is the relational core of that substitution: a self-contained
//! SQL engine the streaming layer (`optique-stream`) and the distributed
//! engine (`optique-exastream`) extend. It owns:
//!
//! * [`Value`]/[`ColumnType`] — the dynamic value model with SQL NULL
//!   semantics,
//! * [`Schema`]/[`Table`]/[`Database`] — catalogs of named, typed,
//!   row-oriented tables plus secondary [`index`]es (hash and B-tree),
//! * [`parse_select`] — a lexer + recursive-descent parser for the SQL
//!   subset that STARQL unfolding emits (SELECT / JOIN / WHERE / GROUP BY /
//!   HAVING / ORDER BY / LIMIT / UNION ALL / subqueries / table-valued
//!   functions),
//! * [`plan`] — the logical plan, name binder, and rule-based [`optimizer`]
//!   (predicate pushdown, projection pruning, constant folding),
//! * [`exec`] — a materializing executor with hash joins, grouped
//!   aggregation and an extensible scalar/aggregate function registry
//!   (including `CORR`, the Pearson-correlation aggregate the Siemens
//!   catalog uses),
//! * [`fragment`] — serializable [`PlanFragment`]s / [`ResultBatch`]es (with
//!   pushed-down [`SemiJoin`] restrictions), the wire format the federated
//!   static pipeline ships between workers,
//! * [`stats`] — the [`StatsCatalog`] of per-table row counts and distinct
//!   estimates that feeds the OBDA planner's join ordering.

pub mod dict;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fragment;
pub mod functions;
pub mod index;
pub mod lexer;
pub mod novelty;
pub mod optimizer;
pub mod panes;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use dict::{DictSnapshot, Term, TermDict};
pub use error::SqlError;
pub use exec::execute;
pub use expr::Expr;
pub use fragment::{
    execute_prepared, referenced_tables, shard_compatibility, shard_of, split_novelty_wire,
    PartitionSpec, PlanFragment, ResultBatch, SemiJoin, ShardCompatibility, WindowSlice,
};
pub use novelty::{view_at, NoveltyOverlay, NoveltyScope};
pub use panes::{
    compute_window_aggregates, merge_pane_rows, pane_width, AggAcc, PaneProbe, PaneStore,
};
pub use parser::{parse_select, SelectStatement};
pub use plan::LogicalPlan;
pub use schema::{Column, ColumnType, Schema};
pub use stats::{advise_partition_keys, StatsCatalog, TableStats};
pub use table::{Database, Table};
pub use value::Value;
