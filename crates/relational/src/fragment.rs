//! Serializable plan fragments and result batches — the wire format of the
//! federated static pipeline.
//!
//! A coordinator splits an unfolded `UNION ALL` statement into per-disjunct
//! [`PlanFragment`]s and ships them to ExaStream workers; each worker ships
//! a [`ResultBatch`] back. Workers in this repo are threads, so "shipping"
//! is an encode/decode round trip through the textual wire format below —
//! the same discipline a socket would impose, which keeps every fragment
//! and batch genuinely self-contained (no shared pointers smuggled across
//! the worker boundary).
//!
//! The wire format is line-oriented: a header line, then one line per row,
//! with `\`-escaping for newlines, carriage returns, tabs and backslashes
//! inside text values.
//!
//! Fragments may carry **semi-join restrictions** ([`SemiJoin`]): value
//! lists a coordinator learned from an already-materialized sibling of the
//! join, shipped alongside the SQL so each worker filters its disjunct down
//! to join-compatible rows *before* shipping the result batch back. The
//! restriction is applied structurally ([`restrict_statement`]), never by
//! splicing values into SQL text, so text values need no quoting rules
//! beyond the wire escaping.
//!
//! Fragments may additionally carry **partition metadata**
//! ([`PartitionSpec`]): when the coordinator's catalog hash-partitions a
//! table the fragment scans, the spec names the partition-key column so the
//! shipping layer can route the fragment. Two analyses build on it:
//!
//! * [`shard_compatibility`] decides whether a statement may run
//!   shard-locally at all — one partitioned scan always may; several may
//!   only when they are **co-partitioned** (their partition keys are
//!   equated by the join conditions, so joining rows share a shard);
//! * [`PlanFragment::shard_plan`] prunes a scatter round: when a semi-join
//!   restricts an output column derived 1:1 from the partition key (a bare
//!   column or an `iri_template` minting over it), each restriction value
//!   can only match rows on the shard it hashes to — the fragment ships
//!   only to those shards, each carrying just its shard's slice of the
//!   `IN`-list.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

use crate::error::SqlError;
use crate::expr::{BinOp, Expr};
use crate::panes::PaneProbe;
use crate::parser::{Projection, SelectStatement, TableRef};
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Database, Table};
use crate::value::Value;

/// The shard a key value routes to under hash partitioning (NULL keys live
/// on shard 0). The single source of truth: table sharding
/// (`optique-exastream`) and fragment routing must agree bit-for-bit.
pub fn shard_of(key: &Value, n: usize) -> usize {
    if key.is_null() {
        return 0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n as u64) as usize
}

/// One pushed-down semi-join: the named output column of a fragment must
/// take one of `values` (or be NULL — an unbound SPARQL position joins with
/// anything, so NULL rows must survive the filter).
#[derive(Clone, Debug, PartialEq)]
pub struct SemiJoin {
    /// The fragment output column (the projection alias) being restricted.
    pub column: String,
    /// The admissible values, as learned from the materialized side.
    pub values: Vec<Value>,
}

impl SemiJoin {
    /// A restriction of `column` to `values`. Values are canonically
    /// sorted at construction: restrictions are sets, and a canonical
    /// order makes the wire encoding (and therefore the per-worker
    /// prepared-plan cache key) stable across rounds that learned the same
    /// set in a different order.
    pub fn new(column: impl Into<String>, mut values: Vec<Value>) -> Self {
        values.sort_by(Value::total_cmp);
        SemiJoin {
            column: column.into(),
            values,
        }
    }

    /// The sorted dictionary-id slice of an all-text restriction: what
    /// ships on the wire instead of the lexical `IN`-list. `None` when any
    /// value is not interned text (mixed lists keep the tagged encoding).
    pub fn id_slice(&self) -> Option<Vec<u64>> {
        let mut ids = Vec::with_capacity(self.values.len());
        for value in &self.values {
            match value {
                Value::Text(t) => ids.push(t.id()),
                _ => return None,
            }
        }
        ids.sort_unstable();
        Some(ids)
    }
}

/// A time-slice a coordinator attaches to a **window fragment**: the
/// fragment's output keeps only rows whose `column` lies in
/// `(open_ms, close_ms]` — the CQL snapshot convention of one sliding
/// window. This is how continuous (STARQL) ticks ride the same wire format
/// as static queries: a tick ships one scan-shaped fragment per window,
/// sliced worker-side, instead of evaluating privately on the coordinator.
/// Applied structurally around the statement ([`PlanFragment::statement`]),
/// like semi-joins — never by splicing values into SQL text.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSlice {
    /// The timestamp column (by output name) the slice filters on.
    pub column: String,
    /// Exclusive lower bound (window open), in milliseconds.
    pub open_ms: i64,
    /// Inclusive upper bound (window close), in milliseconds.
    pub close_ms: i64,
}

/// Partition-layout metadata a coordinator attaches to a scatter fragment:
/// the fragment scans `table`, hash-partitioned across the workers on
/// `column` (of `column_type`). Pure routing metadata — execution ignores
/// it — but [`PlanFragment::shard_plan`] uses it to prune the scatter.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSpec {
    /// The hash-partitioned base table the fragment scans.
    pub table: String,
    /// Its partition-key column.
    pub column: String,
    /// The key column's declared type (drives `IN`-list value coercion when
    /// inverting minted IRIs back to raw keys).
    pub column_type: ColumnType,
}

/// One executable unit of a federated static query: a self-contained SQL
/// statement (typically one disjunct of an unfolded `UNION ALL`) plus the
/// cost estimate the scheduler places it by and any semi-join restrictions
/// the planner pushed down.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanFragment {
    /// Coordinator-assigned id; results are gathered back in id order.
    pub id: u64,
    /// The fragment's SQL(+) text.
    pub sql: String,
    /// Placement cost estimate in abstract work units (e.g. join count).
    pub cost: f64,
    /// Semi-join restrictions applied on top of [`Self::sql`] at execution.
    pub semi_joins: Vec<SemiJoin>,
    /// Partition layout of the scanned table, when the coordinator shards
    /// it — enables shard-pruned scatter ([`Self::shard_plan`]).
    pub partition: Option<PartitionSpec>,
    /// Time-slice of one sliding window, for fragments a continuous query
    /// ships per tick ([`WindowSlice`]).
    pub window: Option<WindowSlice>,
    /// A pane-combine probe ([`PaneProbe`]): instead of executing
    /// [`Self::sql`], each worker answers with per-key partial aggregates
    /// combined from its shard-local pane store. The SQL text still
    /// describes the equivalent scan for humans and fallback paths.
    pub pane: Option<PaneProbe>,
    /// The novelty epoch the coordinator pinned for this round (0 = no
    /// overlay): every worker resolves the same overlay
    /// ([`crate::novelty::view_at`]), so one scatter round never mixes
    /// pre- and post-append rows across workers.
    pub novelty_epoch: u64,
}

impl PlanFragment {
    /// A fragment with the given id, SQL and cost (no restrictions).
    pub fn new(id: u64, sql: impl Into<String>, cost: f64) -> Self {
        PlanFragment {
            id,
            sql: sql.into(),
            cost,
            semi_joins: Vec::new(),
            partition: None,
            window: None,
            pane: None,
            novelty_epoch: 0,
        }
    }

    /// Attaches semi-join restrictions (builder style).
    pub fn with_semi_joins(mut self, semi_joins: Vec<SemiJoin>) -> Self {
        self.semi_joins = semi_joins;
        self
    }

    /// Attaches partition metadata (builder style).
    pub fn with_partition(mut self, partition: PartitionSpec) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Attaches a window time-slice (builder style).
    pub fn with_window(mut self, window: WindowSlice) -> Self {
        self.window = Some(window);
        self
    }

    /// Attaches a pane-combine probe (builder style): the fragment answers
    /// from shard-local panes instead of executing its SQL.
    pub fn with_pane(mut self, pane: PaneProbe) -> Self {
        self.pane = Some(pane);
        self
    }

    /// Pins the fragment to a novelty epoch (builder style): workers
    /// execute it over the base catalog merged with exactly that overlay.
    pub fn at_epoch(mut self, epoch: u64) -> Self {
        self.novelty_epoch = epoch;
        self
    }

    /// The fragment's executable statement: the parsed SQL with the window
    /// time-slice (when present) and any semi-join restrictions applied
    /// around it, in that order.
    pub fn statement(&self) -> Result<SelectStatement, SqlError> {
        let mut statement = crate::parser::parse_select(&self.sql)?;
        if let Some(window) = &self.window {
            statement = slice_statement(statement, window);
        }
        Ok(restrict_statement(statement, &self.semi_joins))
    }

    /// Parses, slices, restricts and executes the fragment against `db` —
    /// the one entry point workers and coordinators share, so a window
    /// slice or restriction is never silently dropped on any execution
    /// path.
    pub fn execute(&self, db: &Database) -> Result<Table, SqlError> {
        let view = crate::novelty::view_at(db, self.novelty_epoch)?;
        let db = view.as_ref().unwrap_or(db);
        // A pane probe bypasses SQL execution entirely: the store-less
        // reference fold keeps coordinator fallbacks and single-worker
        // loopbacks bit-identical to the pane-store answers.
        if let Some(probe) = &self.pane {
            return crate::panes::compute_window_aggregates(probe, db);
        }
        execute_prepared(&self.statement()?, db)
    }

    /// A one-line human summary for trace spans and plan displays: the SQL
    /// (whitespace-collapsed, truncated) plus markers for the window slice,
    /// semi-join restrictions and partition metadata it carries.
    pub fn describe(&self) -> String {
        const SQL_PREVIEW: usize = 48;
        let mut sql = String::with_capacity(SQL_PREVIEW + 1);
        for word in self.sql.split_whitespace() {
            if !sql.is_empty() {
                sql.push(' ');
            }
            sql.push_str(word);
            if sql.len() > SQL_PREVIEW {
                break;
            }
        }
        if sql.len() > SQL_PREVIEW {
            sql.truncate(SQL_PREVIEW);
            sql.push('…');
        }
        let mut out = sql;
        if let Some(win) = &self.window {
            let _ = write!(out, " [win {}..{})", win.open_ms, win.close_ms);
        }
        if let Some(pane) = &self.pane {
            let _ = write!(
                out,
                " [pane w{} {}..{}]",
                pane.width_ms, pane.open_ms, pane.close_ms
            );
        }
        if !self.semi_joins.is_empty() {
            let keys: usize = self.semi_joins.iter().map(|s| s.values.len()).sum();
            let _ = write!(out, " [⋉ {} col, {} key]", self.semi_joins.len(), keys);
        }
        if let Some(part) = &self.partition {
            let _ = write!(out, " [part {}]", part.column);
        }
        out
    }

    /// Encodes the fragment for the wire: the header line, an optional
    /// partition-metadata line, an optional window-slice line, then one
    /// line per semi-join restriction.
    pub fn encode(&self) -> String {
        let mut out = format!("frag\t{}\t{}\t{}", self.id, self.cost, escape(&self.sql));
        if self.novelty_epoch != 0 {
            let _ = write!(out, "\nnov\t{}", self.novelty_epoch);
        }
        if let Some(win) = &self.window {
            let _ = write!(
                out,
                "\nwin\t{}\t{}\t{}",
                escape(&win.column),
                win.open_ms,
                win.close_ms
            );
        }
        if let Some(pane) = &self.pane {
            let _ = write!(
                out,
                "\npane\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(&pane.stream),
                escape(&pane.ts_col),
                escape(&pane.key_col),
                escape(&pane.val_col),
                pane.width_ms,
                pane.start_ms,
                pane.open_ms,
                pane.close_ms,
                u8::from(pane.needs_extrema),
            );
        }
        if let Some(part) = &self.partition {
            let _ = write!(
                out,
                "\npart\t{}\t{}\t{}",
                escape(&part.table),
                escape(&part.column),
                part.column_type
            );
        }
        for semi in &self.semi_joins {
            // An all-text restriction (the common case: key-derived IRI
            // lists) ships as a sorted dictionary-id slice — a fraction of
            // the lexical `IN`-list's bytes. Anything else keeps the
            // tagged value encoding.
            if let Some(ids) = semi.id_slice() {
                let _ = write!(out, "\nsemid\t{}", escape(&semi.column));
                for id in ids {
                    let _ = write!(out, "\t{id}");
                }
            } else {
                let _ = write!(out, "\nsemi\t{}", escape(&semi.column));
                for value in &semi.values {
                    let _ = write!(out, "\t{}", encode_value(value));
                }
            }
        }
        out
    }

    /// Decodes a fragment off the wire.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut lines = wire.lines();
        let header = lines
            .next()
            .ok_or_else(|| SqlError::Execution("empty plan fragment".into()))?;
        let mut parts = header.splitn(4, '\t');
        let tag = parts.next().unwrap_or_default();
        if tag != "frag" {
            return Err(SqlError::Execution(format!(
                "not a plan fragment: tag {tag:?}"
            )));
        }
        let id = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment id missing".into()))?;
        let cost = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment cost missing".into()))?;
        let sql = unescape(
            parts
                .next()
                .ok_or_else(|| SqlError::Execution("fragment SQL missing".into()))?,
        )?;
        let mut semi_joins = Vec::new();
        let mut partition = None;
        let mut window = None;
        let mut pane = None;
        let mut novelty_epoch = 0;
        for line in lines {
            let mut fields = line.split('\t');
            match fields.next() {
                Some("nov") => {
                    novelty_epoch = fields
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| SqlError::Execution("bad novelty epoch".into()))?;
                }
                Some("win") => {
                    let mut field = || {
                        fields
                            .next()
                            .ok_or_else(|| SqlError::Execution("window field missing".into()))
                    };
                    let column = unescape(field()?)?;
                    let parse = |s: &str| {
                        s.parse::<i64>()
                            .map_err(|_| SqlError::Execution(format!("bad window bound {s:?}")))
                    };
                    let open_ms = parse(field()?)?;
                    let close_ms = parse(field()?)?;
                    window = Some(WindowSlice {
                        column,
                        open_ms,
                        close_ms,
                    });
                }
                Some("semi") => {
                    let column =
                        unescape(fields.next().ok_or_else(|| {
                            SqlError::Execution("semi-join column missing".into())
                        })?)?;
                    let values: Vec<Value> = fields.map(decode_value).collect::<Result<_, _>>()?;
                    semi_joins.push(SemiJoin::new(column, values));
                }
                Some("semid") => {
                    let column =
                        unescape(fields.next().ok_or_else(|| {
                            SqlError::Execution("semi-join column missing".into())
                        })?)?;
                    let dict = crate::dict::TermDict::global();
                    let values: Vec<Value> = fields
                        .map(|c| {
                            let id: u64 = c.parse().map_err(|_| {
                                SqlError::Execution(format!("bad semi-join term id {c:?}"))
                            })?;
                            dict.resolve(id).map(Value::Text).ok_or_else(|| {
                                SqlError::Execution(format!("unknown semi-join term id {id}"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    semi_joins.push(SemiJoin::new(column, values));
                }
                Some("pane") => {
                    let mut field = || {
                        fields
                            .next()
                            .ok_or_else(|| SqlError::Execution("pane field missing".into()))
                    };
                    let stream = unescape(field()?)?;
                    let ts_col = unescape(field()?)?;
                    let key_col = unescape(field()?)?;
                    let val_col = unescape(field()?)?;
                    let parse = |s: &str| {
                        s.parse::<i64>()
                            .map_err(|_| SqlError::Execution(format!("bad pane bound {s:?}")))
                    };
                    let width_ms = parse(field()?)?;
                    let start_ms = parse(field()?)?;
                    let open_ms = parse(field()?)?;
                    let close_ms = parse(field()?)?;
                    let needs_extrema = field()? == "1";
                    pane = Some(PaneProbe {
                        stream,
                        ts_col,
                        key_col,
                        val_col,
                        width_ms,
                        start_ms,
                        open_ms,
                        close_ms,
                        needs_extrema,
                    });
                }
                Some("part") => {
                    let mut field = || {
                        fields
                            .next()
                            .ok_or_else(|| SqlError::Execution("partition field missing".into()))
                    };
                    let table = unescape(field()?)?;
                    let column = unescape(field()?)?;
                    let column_type = decode_type(field()?)?;
                    partition = Some(PartitionSpec {
                        table,
                        column,
                        column_type,
                    });
                }
                _ => {
                    return Err(SqlError::Execution(format!(
                        "bad fragment section {line:?}"
                    )))
                }
            }
        }
        Ok(PlanFragment {
            id,
            sql,
            cost,
            semi_joins,
            partition,
            window,
            pane,
            novelty_epoch,
        })
    }
}

/// Splits a fragment wire into its pinned novelty epoch and the wire with
/// the `nov` line stripped. Worker plan caches key on the stripped wire:
/// the epoch changes the *data* a fragment scans, never its plan, so
/// epoch churn must not churn the prepared-plan cache.
pub fn split_novelty_wire(wire: &str) -> (u64, std::borrow::Cow<'_, str>) {
    let Some(start) = wire.find("\nnov\t") else {
        return (0, std::borrow::Cow::Borrowed(wire));
    };
    let rest = &wire[start + 1..];
    let line_end = rest.find('\n').map_or(rest.len(), |i| i);
    let epoch = rest[4..line_end].parse().unwrap_or(0);
    let mut stripped = String::with_capacity(wire.len());
    stripped.push_str(&wire[..start]);
    stripped.push_str(&rest[line_end..]);
    (epoch, std::borrow::Cow::Owned(stripped))
}

/// Plans and executes an already-built statement against `db` — the
/// execution half of [`PlanFragment::execute`], split out so a worker-side
/// plan cache can reuse a parsed statement across shards and rounds
/// without re-paying the parse.
pub fn execute_prepared(statement: &SelectStatement, db: &Database) -> Result<Table, SqlError> {
    let plan = crate::optimizer::optimize(crate::plan::plan_select(statement, db)?);
    crate::exec::execute(&plan, db)
}

/// The base tables a statement reads, across joins, subqueries and
/// `UNION ALL` arms — what a cached result of the statement *depends on*.
/// `None` when the statement reads through a table-valued function, whose
/// data provenance the analysis cannot see (callers must treat the
/// dependency set as "anything").
pub fn referenced_tables(statement: &SelectStatement) -> Option<BTreeSet<String>> {
    fn walk(statement: &SelectStatement, out: &mut BTreeSet<String>) -> bool {
        let mut refs = vec![&statement.from];
        refs.extend(statement.joins.iter().map(|j| &j.table));
        for table_ref in refs {
            match table_ref {
                TableRef::Named { name, .. } => {
                    out.insert(name.clone());
                }
                TableRef::Subquery { query, .. } => {
                    if !walk(query, out) {
                        return false;
                    }
                }
                TableRef::Function { .. } => return false,
            }
        }
        match statement.union_all.as_deref() {
            Some(next) => walk(next, out),
            None => true,
        }
    }
    let mut out = BTreeSet::new();
    walk(statement, &mut out).then_some(out)
}

/// Applies a window time-slice around a statement: each disjunct of its
/// `UNION ALL` chain is wrapped in `SELECT * FROM (disjunct) WHERE col >
/// open AND col <= close` — the `(open, close]` half-open convention the
/// stream layer's `timeSlidingWindow` uses.
fn slice_statement(statement: SelectStatement, window: &WindowSlice) -> SelectStatement {
    let mut disjuncts: Vec<SelectStatement> = Vec::new();
    let mut cursor = Some(statement);
    while let Some(mut stmt) = cursor {
        cursor = stmt.union_all.take().map(|next| *next);
        disjuncts.push(slice_one(stmt, window));
    }
    let mut chain = disjuncts.pop().expect("at least one disjunct");
    while let Some(mut prev) = disjuncts.pop() {
        prev.union_all = Some(Box::new(chain));
        chain = prev;
    }
    chain
}

fn slice_one(statement: SelectStatement, window: &WindowSlice) -> SelectStatement {
    let column = || Box::new(Expr::Column(window.column.clone()));
    let predicate = Expr::binary(
        BinOp::And,
        Expr::binary(
            BinOp::Gt,
            *column(),
            Expr::Literal(Value::Timestamp(window.open_ms)),
        ),
        Expr::binary(
            BinOp::Le,
            *column(),
            Expr::Literal(Value::Timestamp(window.close_ms)),
        ),
    );
    SelectStatement {
        distinct: false,
        projections: vec![Projection::Star],
        from: TableRef::Subquery {
            query: Box::new(statement),
            alias: "__win".into(),
        },
        joins: Vec::new(),
        where_clause: Some(predicate),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        union_all: None,
    }
}

/// Applies semi-join restrictions around a statement: each disjunct of its
/// `UNION ALL` chain is wrapped in `SELECT * FROM (disjunct) WHERE col IN
/// (values) OR col IS NULL` for every restriction. NULL output positions
/// survive — an unbound SPARQL variable is join-compatible with anything —
/// so restricting can only drop rows that cannot contribute to the join.
pub fn restrict_statement(statement: SelectStatement, semi_joins: &[SemiJoin]) -> SelectStatement {
    if semi_joins.is_empty() {
        return statement;
    }
    // Restrict each disjunct independently, then re-chain.
    let mut disjuncts: Vec<SelectStatement> = Vec::new();
    let mut cursor = Some(statement);
    while let Some(mut stmt) = cursor {
        cursor = stmt.union_all.take().map(|next| *next);
        disjuncts.push(restrict_one(stmt, semi_joins));
    }
    let mut chain = disjuncts.pop().expect("at least one disjunct");
    while let Some(mut prev) = disjuncts.pop() {
        prev.union_all = Some(Box::new(chain));
        chain = prev;
    }
    chain
}

/// Lists longer than this restrict through a hash-set probe
/// ([`Expr::InSet`]) instead of a linear `IN` scan — pushdown can ship
/// hundreds of values per fragment, and a per-row linear probe would make
/// restricted scans quadratic.
const IN_SET_THRESHOLD: usize = 8;

fn restrict_one(statement: SelectStatement, semi_joins: &[SemiJoin]) -> SelectStatement {
    let predicate = Expr::and_all(
        semi_joins
            .iter()
            .map(|semi| {
                let column = || Box::new(Expr::Column(semi.column.clone()));
                let is_null = Expr::IsNull {
                    expr: column(),
                    negated: false,
                };
                if semi.values.is_empty() {
                    // No admissible bound value: only NULL rows can join.
                    is_null
                } else {
                    let membership = if semi.values.len() > IN_SET_THRESHOLD
                        && semi.values.iter().all(|v| !v.is_null())
                    {
                        Expr::InSet {
                            expr: column(),
                            set: std::sync::Arc::new(semi.values.iter().cloned().collect()),
                        }
                    } else {
                        Expr::InList {
                            expr: column(),
                            list: semi
                                .values
                                .iter()
                                .map(|v| Expr::Literal(v.clone()))
                                .collect(),
                            negated: false,
                        }
                    };
                    Expr::binary(crate::expr::BinOp::Or, membership, is_null)
                }
            })
            .collect(),
    )
    .expect("semi_joins is non-empty");
    SelectStatement {
        distinct: false,
        projections: vec![Projection::Star],
        from: TableRef::Subquery {
            query: Box::new(statement),
            alias: "__semi".into(),
        },
        joins: Vec::new(),
        where_clause: Some(predicate),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        union_all: None,
    }
}

// ---- shard compatibility & pruning -------------------------------------

/// How one statement may execute over a catalog whose tables in `partition`
/// are hash-partitioned (each worker holding one shard, everything else
/// replicated).
#[derive(Clone, Debug, PartialEq)]
pub enum ShardCompatibility {
    /// The statement scans no partitioned table: any single worker's
    /// replicas answer it.
    Unpartitioned,
    /// The statement may scatter: every worker runs it over its shard and
    /// the partial results concatenate to the global answer. Either exactly
    /// one partitioned scan, or several whose partition keys the join
    /// conditions equate (**co-partitioned** — joining rows share a shard).
    Scatter {
        /// The statement is DISTINCT: shard-local dedup cannot see
        /// cross-shard duplicates, so the gathered concat must be deduped.
        dedup: bool,
        /// A partitioned table the statement scans (the first occurrence) —
        /// the routing spec shard pruning keys on.
        table: String,
        /// That table's partition-key column.
        column: String,
    },
    /// Shard-local execution would be incomplete (a non-co-partitioned
    /// multi-shard join, a non-decomposable shape, or a partitioned scan
    /// buried where the analysis cannot see it): only a catalog holding the
    /// full tables answers correctly.
    Incompatible,
}

/// One resolved occurrence of a partitioned table among a statement's
/// top-level FROM/JOIN relations.
struct PartitionedOccurrence {
    table: String,
    key: String,
    /// Outer column names that read the partition key (`u0.sid`), empty
    /// when the occurrence does not project it.
    key_names: Vec<String>,
}

enum RefOutcome {
    /// Reads only replicated tables.
    Replicated,
    /// A partitioned scan the analysis fully resolved.
    Partitioned(PartitionedOccurrence),
    /// Touches a partitioned table in a shape the analysis cannot decompose
    /// (nested subqueries, subquery-local joins / modifiers / aggregates).
    Opaque,
}

/// Walks a statement tree (including subqueries and `UNION ALL`) checking
/// whether any base-table reference is partitioned.
fn references_partitioned(statement: &SelectStatement, partitioned: &[&str]) -> bool {
    let mut refs = vec![&statement.from];
    refs.extend(statement.joins.iter().map(|j| &j.table));
    for table_ref in refs {
        match table_ref {
            TableRef::Named { name, .. } => {
                if partitioned.iter().any(|t| t == name) {
                    return true;
                }
            }
            TableRef::Subquery { query, .. } => {
                if references_partitioned(query, partitioned) {
                    return true;
                }
            }
            TableRef::Function { .. } => {}
        }
    }
    statement
        .union_all
        .as_deref()
        .is_some_and(|next| references_partitioned(next, partitioned))
}

/// True when concatenating per-shard results of `statement` yields the
/// global result (modulo DISTINCT, handled by the caller): plain
/// select-project-join with no aggregation, grouping, ordering or slicing —
/// exactly the shape mapping unfolding emits.
fn concat_decomposable(statement: &SelectStatement) -> bool {
    statement.group_by.is_empty()
        && statement.having.is_none()
        && statement.order_by.is_empty()
        && statement.limit.is_none()
        && statement.union_all.is_none()
        && !statement.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.contains_aggregate(),
            Projection::Star => false,
        })
}

/// Resolves one top-level relation against the partition map.
fn analyze_ref(table_ref: &TableRef, partition: &[(String, String)], sole_ref: bool) -> RefOutcome {
    let names: Vec<&str> = partition.iter().map(|(t, _)| t.as_str()).collect();
    let key_of = |table: &str| {
        partition
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, k)| k.as_str())
    };
    match table_ref {
        TableRef::Named { name, alias } => match key_of(name) {
            None => RefOutcome::Replicated,
            Some(key) => {
                let mut key_names = vec![format!("{alias}.{key}")];
                if sole_ref {
                    key_names.push(key.to_string());
                }
                RefOutcome::Partitioned(PartitionedOccurrence {
                    table: name.clone(),
                    key: key.to_string(),
                    key_names,
                })
            }
        },
        TableRef::Subquery { query, alias } => {
            if !references_partitioned(query, &names) {
                return RefOutcome::Replicated;
            }
            // The scan must be a simple, concat-decomposable select over
            // the partitioned base table itself — a subquery-local join,
            // modifier or deeper nesting hides rows the shard analysis
            // cannot account for.
            let TableRef::Named { name, .. } = &query.from else {
                return RefOutcome::Opaque;
            };
            let Some(key) = key_of(name) else {
                // The partitioned reference sits in a join arm or deeper.
                return RefOutcome::Opaque;
            };
            // A subquery-level DISTINCT is also out: per-shard dedup misses
            // cross-shard duplicates, and the top-level dedup flag cannot
            // repair a nested one (the outer projection may widen it).
            if !query.joins.is_empty() || query.distinct || !concat_decomposable(query) {
                return RefOutcome::Opaque;
            }
            let mut key_names = Vec::new();
            for projection in &query.projections {
                match projection {
                    Projection::Star => key_names.push(format!("{alias}.{key}")),
                    Projection::Expr {
                        expr: Expr::Column(c),
                        alias: out,
                    } if last_segment(c) == key => {
                        let out = out.as_deref().unwrap_or_else(|| last_segment(c));
                        key_names.push(format!("{alias}.{out}"));
                    }
                    _ => {}
                }
            }
            RefOutcome::Partitioned(PartitionedOccurrence {
                table: name.clone(),
                key: key.to_string(),
                key_names,
            })
        }
        // Table-valued functions take literal arguments, never tables.
        TableRef::Function { .. } => RefOutcome::Replicated,
    }
}

fn last_segment(column: &str) -> &str {
    column.rsplit('.').next().unwrap_or(column)
}

/// Column-equality edges (`a.x = b.y`) from every JOIN `ON` and the WHERE
/// clause — the join graph co-partitioning is checked against.
fn equality_edges(statement: &SelectStatement) -> Vec<(String, String)> {
    let mut conjuncts: Vec<Expr> = Vec::new();
    for join in &statement.joins {
        conjuncts.extend(crate::plan::split_conjuncts(&join.on));
    }
    if let Some(where_clause) = &statement.where_clause {
        conjuncts.extend(crate::plan::split_conjuncts(where_clause));
    }
    conjuncts
        .into_iter()
        .filter_map(|conjunct| match conjunct {
            Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => match (*left, *right) {
                (Expr::Column(l), Expr::Column(r)) => Some((l, r)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

/// Union-find over column names.
struct ColumnClasses {
    parent: HashMap<String, String>,
}

impl ColumnClasses {
    fn new() -> Self {
        ColumnClasses {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, name: &str) -> String {
        let up = match self.parent.get(name) {
            None => {
                self.parent.insert(name.to_string(), name.to_string());
                return name.to_string();
            }
            Some(up) => up.clone(),
        };
        if up == name {
            return up;
        }
        let root = self.find(&up);
        self.parent.insert(name.to_string(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Decides how `statement` may execute when the tables in `partition`
/// (`(table, key_column)` pairs) are hash-partitioned across workers. See
/// [`ShardCompatibility`] for the verdicts.
pub fn shard_compatibility(
    statement: &SelectStatement,
    partition: &[(String, String)],
) -> ShardCompatibility {
    let names: Vec<&str> = partition.iter().map(|(t, _)| t.as_str()).collect();
    if partition.is_empty() || !references_partitioned(statement, &names) {
        return ShardCompatibility::Unpartitioned;
    }
    if !concat_decomposable(statement) {
        return ShardCompatibility::Incompatible;
    }
    // Outer joins are not scatter-sound once a shard is involved: a LEFT
    // JOIN preserving a replicated side would NULL-pad every replicated row
    // lacking a *shard-local* match, on every worker — spurious rows the
    // global join does not contain.
    if statement
        .joins
        .iter()
        .any(|join| join.join_type != crate::parser::JoinType::Inner)
    {
        return ShardCompatibility::Incompatible;
    }
    let sole_ref = statement.joins.is_empty();
    let mut occurrences: Vec<PartitionedOccurrence> = Vec::new();
    let mut refs = vec![&statement.from];
    refs.extend(statement.joins.iter().map(|j| &j.table));
    for table_ref in refs {
        match analyze_ref(table_ref, partition, sole_ref) {
            RefOutcome::Replicated => {}
            RefOutcome::Partitioned(occurrence) => occurrences.push(occurrence),
            RefOutcome::Opaque => return ShardCompatibility::Incompatible,
        }
    }
    let scatter = |first: &PartitionedOccurrence| ShardCompatibility::Scatter {
        dedup: statement.distinct,
        table: first.table.clone(),
        column: first.key.clone(),
    };
    match occurrences.as_slice() {
        [] => ShardCompatibility::Unpartitioned,
        [single] => scatter(single),
        several => {
            // Several partitioned scans join soundly shard-locally only
            // when co-partitioned: every occurrence's partition key sits in
            // one equality class, so joining rows hash to the same shard.
            let mut classes = ColumnClasses::new();
            for (a, b) in equality_edges(statement) {
                classes.union(&a, &b);
            }
            for occurrence in several {
                // An occurrence's aliases for its own key are one thing.
                for pair in occurrence.key_names.windows(2) {
                    classes.union(&pair[0], &pair[1]);
                }
            }
            let mut roots = several
                .iter()
                .map(|occurrence| occurrence.key_names.first().map(|name| classes.find(name)));
            let Some(Some(first_root)) = roots.next() else {
                return ShardCompatibility::Incompatible;
            };
            if roots.all(|root| root.as_deref() == Some(first_root.as_str())) {
                scatter(&several[0])
            } else {
                ShardCompatibility::Incompatible
            }
        }
    }
}

/// How a restricted output column derives from the partition key.
enum KeyDerivation {
    /// The projection is the key column itself.
    Direct,
    /// The projection mints an IRI over the key: `iri_template(pattern, key)`.
    Template(String),
}

impl PlanFragment {
    /// Shard-pruned scatter plan: when this fragment carries partition
    /// metadata and a semi-join restricts an output column derived 1:1 from
    /// the partition key, each restriction value can only match rows on the
    /// shard it hashes to. Returns the per-shard fragments to run — each
    /// carrying only its shard's slice of the key-derived `IN`-lists — for
    /// exactly the shards that can hold matching rows (shard 0 always
    /// included: NULL keys live there and NULL outputs survive every
    /// restriction). When a large list targets every shard the plan still
    /// pays off: each worker receives only its slice of the values. `None`
    /// means no key derivation applies and the fragment must scatter to
    /// all `shards` unchanged.
    pub fn shard_plan(&self, shards: usize) -> Option<Vec<(usize, PlanFragment)>> {
        let statement = crate::parser::parse_select(&self.sql).ok()?;
        self.shard_plan_with(&statement, shards)
    }

    /// [`Self::shard_plan`] over an already-parsed statement — the
    /// coordinator classifies fragments from the same text, so callers that
    /// kept the parse avoid a second one per fragment per round.
    pub fn shard_plan_with(
        &self,
        statement: &SelectStatement,
        shards: usize,
    ) -> Option<Vec<(usize, PlanFragment)>> {
        let spec = self.partition.as_ref()?;
        // Bool/Any keys cannot be routed: a minted IRI's text does not pin
        // down which variant the stored value has, and `Value`'s hash is
        // variant-sensitive for non-numerics.
        if shards <= 1
            || self.semi_joins.is_empty()
            || matches!(spec.column_type, ColumnType::Bool | ColumnType::Any)
        {
            return None;
        }
        if statement.union_all.is_some() {
            return None;
        }
        // Outer names of the partition key (co-partitioned occurrences all
        // qualify — their keys are equated, so any of them routes).
        let mut key_names: BTreeSet<String> = BTreeSet::new();
        let sole_ref = statement.joins.is_empty();
        let partition_pair = [(spec.table.clone(), spec.column.clone())];
        let mut refs = vec![&statement.from];
        refs.extend(statement.joins.iter().map(|j| &j.table));
        for table_ref in refs {
            if let RefOutcome::Partitioned(occurrence) =
                analyze_ref(table_ref, &partition_pair, sole_ref)
            {
                key_names.extend(occurrence.key_names);
            }
        }
        if key_names.is_empty() {
            return None;
        }

        // Which semi-joins restrict a key-derived output column?
        let mut derivations: Vec<(usize, KeyDerivation)> = Vec::new();
        for (idx, semi) in self.semi_joins.iter().enumerate() {
            if let Some(derivation) = key_derivation(statement, &semi.column, &key_names) {
                derivations.push((idx, derivation));
            }
        }
        if derivations.is_empty() {
            return None;
        }

        // Slice each key-derived list by target shard; intersect targets.
        let mut targets: Option<BTreeSet<usize>> = None;
        let mut slices: Vec<(usize, BTreeMap<usize, Vec<Value>>)> = Vec::new();
        for (idx, derivation) in derivations {
            let mut by_shard: BTreeMap<usize, Vec<Value>> = BTreeMap::new();
            for value in &self.semi_joins[idx].values {
                // A value the derivation cannot map to a raw key cannot be
                // minted by this fragment's scan — it matches no row on any
                // shard and is dropped from every slice.
                let Some(raw) = invert_restriction_value(value, &derivation, spec.column_type)
                else {
                    continue;
                };
                by_shard
                    .entry(shard_of(&raw, shards))
                    .or_default()
                    .push(value.clone());
            }
            let mut mine: BTreeSet<usize> = by_shard.keys().copied().collect();
            // NULL partition keys live on shard 0 and NULL outputs survive
            // every restriction.
            mine.insert(0);
            targets = Some(match targets {
                None => mine,
                Some(prev) => prev.intersection(&mine).copied().collect(),
            });
            slices.push((idx, by_shard));
        }
        let targets = targets.expect("at least one derivation");
        // Even when every shard is targeted (a large list hashing
        // everywhere), the per-shard slices still matter: each worker
        // receives ~1/shards of the values instead of the whole list —
        // exactly the promise behind the widened restriction budget.
        Some(
            targets
                .into_iter()
                .map(|shard| {
                    let mut fragment = self.clone();
                    for (idx, by_shard) in &slices {
                        fragment.semi_joins[*idx].values =
                            by_shard.get(&shard).cloned().unwrap_or_default();
                    }
                    (shard, fragment)
                })
                .collect(),
        )
    }
}

/// Finds the projection producing output column `column` and decides
/// whether it derives 1:1 from a partition-key column in `key_names`.
fn key_derivation(
    statement: &SelectStatement,
    column: &str,
    key_names: &BTreeSet<String>,
) -> Option<KeyDerivation> {
    let is_key = |c: &str| key_names.contains(c);
    for projection in &statement.projections {
        let Projection::Expr { expr, alias } = projection else {
            continue;
        };
        let output = match (alias, expr) {
            (Some(alias), _) => alias.as_str(),
            (None, Expr::Column(c)) => last_segment(c),
            _ => continue,
        };
        if output != column {
            continue;
        }
        return match expr {
            Expr::Column(c) if is_key(c) => Some(KeyDerivation::Direct),
            Expr::Function { name, args } if name == "iri_template" => match args.as_slice() {
                [Expr::Literal(Value::Text(pattern)), Expr::Column(c)] if is_key(c) => {
                    Some(KeyDerivation::Template(pattern.to_string()))
                }
                _ => None,
            },
            _ => None,
        };
    }
    None
}

/// Maps one restriction value back to the raw partition-key value it must
/// have been minted from, or `None` when no row can produce it.
fn invert_restriction_value(
    value: &Value,
    derivation: &KeyDerivation,
    key_type: ColumnType,
) -> Option<Value> {
    match derivation {
        KeyDerivation::Direct => {
            // NULL in an IN-list matches nothing (the NULL-row case is the
            // separate IS NULL branch, handled by always targeting shard 0).
            (!value.is_null()).then(|| value.clone())
        }
        KeyDerivation::Template(pattern) => {
            let text = value.as_str()?;
            let (prefix, suffix) = pattern.split_once("{}")?;
            // An empty middle is still producible: `iri_template` renders a
            // Text key of "" as the bare prefix+suffix, so it must invert —
            // only keys whose type cannot parse the middle are unproducible.
            let middle = text.strip_prefix(prefix)?.strip_suffix(suffix)?;
            match key_type {
                ColumnType::Int => middle.parse().ok().map(Value::Int),
                ColumnType::Float => middle.parse().ok().map(Value::Float),
                // `iri_template` renders values through Display, which
                // writes timestamps as `@{t}` — inversion must accept
                // exactly that form (a bare number cannot be minted from a
                // Timestamp key and is correctly unproducible).
                ColumnType::Timestamp => middle
                    .strip_prefix('@')
                    .and_then(|t| t.parse().ok())
                    .map(Value::Timestamp),
                ColumnType::Text => Some(Value::text(middle)),
                // Bool and Any keys never reach this point: `shard_plan`
                // declines up front, because the minted text does not pin
                // down the stored value's variant — Text("123") and
                // Int(123) render identically but hash to different shards.
                ColumnType::Any | ColumnType::Bool => None,
            }
        }
    }
}

/// One dictionary-encoded column of a [`ResultBatch`]: typed primitive
/// vectors for the uniform cases, dictionary ids for text, tagged cells as
/// the mixed-type fallback. The representation is chosen per column from
/// the *values* (not the declared type), so a loosely-typed `ANY` column
/// that happens to be all integers still ships as a primitive vector.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (`None` = NULL).
    Int(Vec<Option<i64>>),
    /// 64-bit floats (`None` = NULL).
    Float(Vec<Option<f64>>),
    /// Booleans (`None` = NULL).
    Bool(Vec<Option<bool>>),
    /// Millisecond timestamps (`None` = NULL).
    Timestamp(Vec<Option<i64>>),
    /// Interned text as global-dictionary ids; id 0 = NULL. The lexical
    /// term never touches the wire — decode resolves ids back through the
    /// shared [`crate::dict::TermDict`] with a refcount bump.
    Text(Vec<u64>),
    /// Mixed-type fallback: one tagged cell per row.
    Any(Vec<Value>),
}

impl ColumnData {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) | ColumnData::Timestamp(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Any(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the best representation for one column of values.
    fn from_values(values: Vec<Value>) -> ColumnData {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Bool,
            Timestamp,
            Text,
            Mixed,
        }
        let mut kind = Kind::Unknown;
        for v in &values {
            let this = match v {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Timestamp(_) => Kind::Timestamp,
                Value::Text(_) => Kind::Text,
            };
            if kind == Kind::Unknown {
                kind = this;
            } else if kind != this {
                kind = Kind::Mixed;
                break;
            }
        }
        match kind {
            // All-NULL columns ship as the cheapest primitive form.
            Kind::Unknown | Kind::Int => ColumnData::Int(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => Some(i),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Float => ColumnData::Float(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Float(f) => Some(f),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Bool => ColumnData::Bool(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Bool(b) => Some(b),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Timestamp => ColumnData::Timestamp(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Timestamp(t) => Some(t),
                        _ => None,
                    })
                    .collect(),
            ),
            Kind::Text => ColumnData::Text(
                values
                    .into_iter()
                    .map(|v| match v {
                        Value::Text(t) => t.id(),
                        _ => 0,
                    })
                    .collect(),
            ),
            Kind::Mixed => ColumnData::Any(values),
        }
    }

    /// Materializes the column back into values (text ids resolve through
    /// the global dictionary — a refcount bump per distinct term, no string
    /// copy).
    fn into_values(self) -> Result<Vec<Value>, SqlError> {
        Ok(match self {
            ColumnData::Int(v) => v
                .into_iter()
                .map(|c| c.map_or(Value::Null, Value::Int))
                .collect(),
            ColumnData::Float(v) => v
                .into_iter()
                .map(|c| c.map_or(Value::Null, Value::Float))
                .collect(),
            ColumnData::Bool(v) => v
                .into_iter()
                .map(|c| c.map_or(Value::Null, Value::Bool))
                .collect(),
            ColumnData::Timestamp(v) => v
                .into_iter()
                .map(|c| c.map_or(Value::Null, Value::Timestamp))
                .collect(),
            ColumnData::Text(ids) => {
                let dict = crate::dict::TermDict::global();
                ids.into_iter()
                    .map(|id| {
                        if id == 0 {
                            Ok(Value::Null)
                        } else {
                            dict.resolve(id).map(Value::Text).ok_or_else(|| {
                                SqlError::Execution(format!("unknown term id {id} in batch"))
                            })
                        }
                    })
                    .collect::<Result<_, _>>()?
            }
            ColumnData::Any(v) => v,
        })
    }
}

/// A self-contained result relation in **dictionary-encoded columnar**
/// form: column names/types plus one [`ColumnData`] per column, with no
/// schema qualifiers or index handles attached — exactly what survives a
/// trip over the wire. Text cells travel as `u64` dictionary ids (interned
/// once at the source, resolved once at the edge), so the wire never
/// re-ships lexical IRIs a round already moved.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultBatch {
    /// Output columns in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Column-major data, one entry per column, all the same length.
    pub data: Vec<ColumnData>,
}

impl ResultBatch {
    /// Captures a table as a columnar batch (transposes the table's
    /// row-major storage once, at the ship boundary).
    pub fn from_table(table: &Table) -> Self {
        let columns: Vec<(String, ColumnType)> = table
            .schema
            .columns()
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        let data = (0..columns.len())
            .map(|i| ColumnData::from_values(table.rows.iter().map(|row| row[i].clone()).collect()))
            .collect();
        ResultBatch { columns, data }
    }

    /// Builds a batch from row-major values (testing/bench convenience;
    /// the shipping path uses [`from_table`](Self::from_table)).
    pub fn from_rows(columns: Vec<(String, ColumnType)>, rows: Vec<Vec<Value>>) -> Self {
        let data = (0..columns.len())
            .map(|i| ColumnData::from_values(rows.iter().map(|row| row[i].clone()).collect()))
            .collect();
        ResultBatch { columns, data }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.data.first().map_or(0, ColumnData::len)
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the batch's rows (text ids decode to shared terms).
    pub fn to_rows(&self) -> Result<Vec<Vec<Value>>, SqlError> {
        let rows = self.len();
        let mut cols = Vec::with_capacity(self.data.len());
        for col in &self.data {
            cols.push(col.clone().into_values()?);
        }
        let mut out = vec![Vec::with_capacity(cols.len()); rows];
        for col in cols {
            for (row, value) in out.iter_mut().zip(col) {
                row.push(value);
            }
        }
        Ok(out)
    }

    /// Rebuilds a table from the batch — the decode edge where dictionary
    /// ids become lexical terms again.
    pub fn into_table(self) -> Result<Table, SqlError> {
        let schema = Schema::new(
            self.columns
                .iter()
                .map(|(name, ty)| Column::new(name.clone(), *ty))
                .collect(),
        );
        let rows = self.to_rows()?;
        Table::new(schema, rows)
    }

    /// Encodes the batch for the wire: a header line (row count + column
    /// signature), then **one line per column** — a representation tag and
    /// the column's packed cells. NULLs in primitive columns are empty
    /// fields; text cells are bare dictionary ids (0 = NULL).
    pub fn encode(&self) -> String {
        let mut out = format!("cbatch\t{}", self.len());
        for (name, ty) in &self.columns {
            let _ = write!(out, "\t{}:{ty}", escape(name));
        }
        out.push('\n');
        for col in &self.data {
            match col {
                ColumnData::Int(v) => {
                    out.push('i');
                    for c in v {
                        out.push('\t');
                        if let Some(i) = c {
                            let _ = write!(out, "{i}");
                        }
                    }
                }
                ColumnData::Float(v) => {
                    out.push('f');
                    for c in v {
                        out.push('\t');
                        if let Some(f) = c {
                            // `{:?}` keeps full f64 precision (shortest
                            // round-trippable form).
                            let _ = write!(out, "{f:?}");
                        }
                    }
                }
                ColumnData::Bool(v) => {
                    out.push('b');
                    for c in v {
                        out.push('\t');
                        if let Some(b) = c {
                            out.push(if *b { '1' } else { '0' });
                        }
                    }
                }
                ColumnData::Timestamp(v) => {
                    out.push('s');
                    for c in v {
                        out.push('\t');
                        if let Some(t) = c {
                            let _ = write!(out, "{t}");
                        }
                    }
                }
                ColumnData::Text(ids) => {
                    out.push('d');
                    for id in ids {
                        let _ = write!(out, "\t{id}");
                    }
                }
                ColumnData::Any(v) => {
                    out.push('a');
                    for value in v {
                        let _ = write!(out, "\t{}", encode_value(value));
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Encodes the batch in the seed's row-major tagged form. Kept as the
    /// measured baseline for the columnar-wire bench (`exp_columnar_wire`);
    /// [`decode`](Self::decode) still accepts it.
    pub fn encode_row_major(&self) -> Result<String, SqlError> {
        let mut out = String::from("batch");
        for (name, ty) in &self.columns {
            let _ = write!(out, "\t{}:{ty}", escape(name));
        }
        out.push('\n');
        for row in self.to_rows()? {
            let cells: Vec<String> = row.iter().map(encode_value).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        Ok(out)
    }

    /// Decodes a batch off the wire — the columnar `cbatch` form, or the
    /// legacy row-major `batch` form.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut lines = wire.lines();
        let header = lines
            .next()
            .ok_or_else(|| SqlError::Execution("empty result batch".into()))?;
        let mut fields = header.split('\t');
        let tag = fields.next();
        if tag == Some("batch") {
            return Self::decode_row_major(fields, lines);
        }
        if tag != Some("cbatch") {
            return Err(SqlError::Execution("not a result batch".into()));
        }
        let rows: usize = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("batch row count missing".into()))?;
        let mut columns = Vec::new();
        for field in fields {
            let (name, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| SqlError::Execution(format!("bad column field {field:?}")))?;
            columns.push((unescape(name)?, decode_type(ty)?));
        }
        let mut data = Vec::with_capacity(columns.len());
        for line in lines {
            let bad = |what: &str| SqlError::Execution(format!("bad {what} in column line"));
            let mut cells = line.split('\t');
            let tag = cells.next().unwrap_or_default();
            let col = match tag {
                "i" => ColumnData::Int(
                    cells
                        .map(|c| {
                            if c.is_empty() {
                                Ok(None)
                            } else {
                                c.parse().map(Some).map_err(|_| bad("int"))
                            }
                        })
                        .collect::<Result<_, _>>()?,
                ),
                "f" => ColumnData::Float(
                    cells
                        .map(|c| {
                            if c.is_empty() {
                                Ok(None)
                            } else {
                                c.parse().map(Some).map_err(|_| bad("float"))
                            }
                        })
                        .collect::<Result<_, _>>()?,
                ),
                "b" => ColumnData::Bool(
                    cells
                        .map(|c| match c {
                            "" => Ok(None),
                            "1" => Ok(Some(true)),
                            "0" => Ok(Some(false)),
                            _ => Err(bad("bool")),
                        })
                        .collect::<Result<_, _>>()?,
                ),
                "s" => ColumnData::Timestamp(
                    cells
                        .map(|c| {
                            if c.is_empty() {
                                Ok(None)
                            } else {
                                c.parse().map(Some).map_err(|_| bad("timestamp"))
                            }
                        })
                        .collect::<Result<_, _>>()?,
                ),
                "d" => ColumnData::Text(
                    cells
                        .map(|c| c.parse().map_err(|_| bad("term id")))
                        .collect::<Result<_, _>>()?,
                ),
                "a" => ColumnData::Any(cells.map(decode_value).collect::<Result<_, _>>()?),
                other => {
                    return Err(SqlError::Execution(format!(
                        "unknown column representation {other:?}"
                    )))
                }
            };
            if col.len() != rows {
                return Err(SqlError::Execution(format!(
                    "column length {} does not match batch row count {rows}",
                    col.len()
                )));
            }
            data.push(col);
        }
        if data.len() != columns.len() {
            return Err(SqlError::Execution(format!(
                "batch has {} column lines for {} columns",
                data.len(),
                columns.len()
            )));
        }
        Ok(ResultBatch { columns, data })
    }

    /// Decodes the legacy row-major form (`batch` header already consumed).
    fn decode_row_major<'a>(
        fields: impl Iterator<Item = &'a str>,
        lines: impl Iterator<Item = &'a str>,
    ) -> Result<Self, SqlError> {
        let mut columns = Vec::new();
        for field in fields {
            let (name, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| SqlError::Execution(format!("bad column field {field:?}")))?;
            columns.push((unescape(name)?, decode_type(ty)?));
        }
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let row: Vec<Value> = line
                .split('\t')
                .map(decode_value)
                .collect::<Result<_, _>>()?;
            if row.len() != columns.len() {
                return Err(SqlError::Execution(format!(
                    "batch row arity {} does not match {} columns",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
        }
        Ok(ResultBatch::from_rows(columns, rows))
    }
}

fn decode_type(ty: &str) -> Result<ColumnType, SqlError> {
    Ok(match ty {
        "INT" => ColumnType::Int,
        "FLOAT" => ColumnType::Float,
        "TEXT" => ColumnType::Text,
        "BOOL" => ColumnType::Bool,
        "TIMESTAMP" => ColumnType::Timestamp,
        "ANY" => ColumnType::Any,
        other => {
            return Err(SqlError::Execution(format!(
                "unknown column type {other:?}"
            )))
        }
    })
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Int(i) => format!("i{i}"),
        // `{:?}` keeps full f64 precision (shortest round-trippable form).
        Value::Float(f) => format!("f{f:?}"),
        Value::Text(s) => format!("t{}", escape(s)),
        Value::Bool(b) => format!("b{}", u8::from(*b)),
        Value::Timestamp(t) => format!("s{t}"),
    }
}

fn decode_value(cell: &str) -> Result<Value, SqlError> {
    let bad = || SqlError::Execution(format!("bad wire value {cell:?}"));
    let rest = cell.get(1..).ok_or_else(bad)?;
    Ok(match cell.as_bytes()[0] {
        b'n' => Value::Null,
        b'i' => Value::Int(rest.parse().map_err(|_| bad())?),
        b'f' => Value::Float(rest.parse().map_err(|_| bad())?),
        b't' => Value::text(unescape(rest)?),
        b'b' => Value::Bool(rest == "1"),
        b's' => Value::Timestamp(rest.parse().map_err(|_| bad())?),
        _ => return Err(bad()),
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            // `decode` splits the wire with `lines()`, which consumes a
            // `\r` before each `\n`; a literal one must not look like that.
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, SqlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(SqlError::Execution(format!(
                    "bad escape \\{} on the wire",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;

    #[test]
    fn fragment_round_trip() {
        let f = PlanFragment::new(
            7,
            "SELECT a FROM t WHERE name = 'x\ty'\n  AND a > 1 -- back\\slash",
            3.5,
        );
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn fragment_rejects_garbage() {
        assert!(PlanFragment::decode("nonsense").is_err());
        assert!(PlanFragment::decode("frag\txyz\t1.0\tSELECT 1").is_err());
        assert!(PlanFragment::decode("frag\t1\t1.0\tSELECT a FROM t\nbogus\tx").is_err());
        assert!(PlanFragment::decode("frag\t1\t1.0\tSELECT a FROM t\nnov\tx").is_err());
    }

    #[test]
    fn novelty_epoch_rides_the_wire() {
        let f = PlanFragment::new(2, "SELECT a FROM t", 1.0).at_epoch(41);
        let wire = f.encode();
        assert!(wire.contains("\nnov\t41"));
        assert_eq!(PlanFragment::decode(&wire).unwrap(), f);
        // Epoch 0 ships no section — pre-novelty wires stay byte-identical.
        let plain = PlanFragment::new(2, "SELECT a FROM t", 1.0);
        assert!(!plain.encode().contains("nov\t"));
    }

    #[test]
    fn split_novelty_wire_strips_only_the_epoch() {
        let pinned = PlanFragment::new(5, "SELECT a AS v FROM t", 1.0)
            .with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(1)])])
            .at_epoch(99);
        let pinned_wire = pinned.encode();
        let (epoch, stripped) = split_novelty_wire(&pinned_wire);
        assert_eq!(epoch, 99);
        let unpinned = PlanFragment {
            novelty_epoch: 0,
            ..pinned
        };
        let unpinned_wire = unpinned.encode();
        assert_eq!(stripped.as_ref(), unpinned_wire);
        // A wire without the section is borrowed through untouched.
        let (epoch, same) = split_novelty_wire(&unpinned_wire);
        assert_eq!(epoch, 0);
        assert!(matches!(same, std::borrow::Cow::Borrowed(_)));
    }

    #[test]
    fn execute_resolves_the_pinned_overlay() {
        let db = restricted_db();
        let overlay = crate::novelty::NoveltyOverlay::empty()
            .with_rows("t", vec![vec![Value::Int(9), Value::text("new")]]);
        let f = PlanFragment::new(0, "SELECT a AS v, b AS w FROM t", 1.0);
        assert_eq!(f.execute(&db).unwrap().len(), 4, "epoch 0 sees base only");
        let pinned = f.clone().at_epoch(overlay.epoch());
        assert_eq!(pinned.execute(&db).unwrap().len(), 5, "pinned epoch merges");
        // A newer overlay does not leak into the pinned round.
        let newer = overlay.with_rows("t", vec![vec![Value::Int(10), Value::Null]]);
        assert_eq!(pinned.execute(&db).unwrap().len(), 5);
        assert_eq!(
            f.clone()
                .at_epoch(newer.epoch())
                .execute(&db)
                .unwrap()
                .len(),
            6
        );
    }

    #[test]
    fn carriage_returns_survive_the_wire() {
        // `decode` splits on `lines()`, which would eat a trailing literal
        // `\r` before the next section line if it were not escaped.
        let f = PlanFragment::new(1, "SELECT a AS v FROM t", 1.0).with_semi_joins(vec![
            SemiJoin::new("v", vec![Value::text("abc\r")]),
            SemiJoin::new("w\r\n", vec![]),
        ]);
        assert_eq!(PlanFragment::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn semi_joins_round_trip_the_wire() {
        let f = PlanFragment::new(3, "SELECT a AS v FROM t", 1.0).with_semi_joins(vec![
            SemiJoin::new(
                "v",
                vec![
                    Value::text("http://x/tab\there"),
                    Value::Int(-7),
                    Value::Null,
                ],
            ),
            SemiJoin::new("w", vec![]),
        ]);
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    fn restricted_db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "t",
            table_of(
                "t",
                &[("a", ColumnType::Int), ("b", ColumnType::Text)],
                vec![
                    vec![Value::Int(1), Value::text("x")],
                    vec![Value::Int(2), Value::text("y")],
                    vec![Value::Int(3), Value::Null],
                    vec![Value::Null, Value::text("z")],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn execute_applies_semi_join_and_keeps_nulls() {
        let db = restricted_db();
        let unrestricted = PlanFragment::new(0, "SELECT a AS v, b AS w FROM t", 1.0);
        assert_eq!(unrestricted.execute(&db).unwrap().len(), 4);

        let restricted = unrestricted
            .clone()
            .with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(1)])]);
        let out = restricted.execute(&db).unwrap();
        // Row with v=1 matches; the v=NULL row survives (unbound positions
        // join with anything); v=2 and v=3 are filtered out.
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.header(), vec!["v", "w"]);

        // A round trip over the wire preserves the restriction's effect.
        let shipped = PlanFragment::decode(&restricted.encode()).unwrap();
        assert_eq!(shipped.execute(&db).unwrap().rows, out.rows);
    }

    #[test]
    fn empty_value_list_keeps_only_nulls() {
        let db = restricted_db();
        let f = PlanFragment::new(0, "SELECT a AS v FROM t", 1.0)
            .with_semi_joins(vec![SemiJoin::new("v", vec![])]);
        let out = f.execute(&db).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn restriction_applies_to_every_union_disjunct() {
        let db = restricted_db();
        let f = PlanFragment::new(
            0,
            "SELECT a AS v FROM t UNION ALL SELECT a AS v FROM t",
            1.0,
        )
        .with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(2)])]);
        let out = f.execute(&db).unwrap();
        // Each disjunct contributes its v=2 row and its v=NULL row.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn window_slice_round_trips_and_filters() {
        let mut db = Database::new();
        db.put_table(
            "s",
            table_of(
                "s",
                &[("ts", ColumnType::Timestamp), ("v", ColumnType::Int)],
                (0..10)
                    .map(|i| vec![Value::Timestamp(i * 1000), Value::Int(i)])
                    .collect(),
            )
            .unwrap(),
        );
        let f = PlanFragment::new(0, "SELECT ts, v FROM s", 1.0).with_window(WindowSlice {
            column: "ts".into(),
            open_ms: 2000,
            close_ms: 5000,
        });
        // Wire round trip preserves the slice.
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        // (2000, 5000] keeps ts = 3000, 4000, 5000.
        let out = decoded.execute(&db).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out
            .rows
            .iter()
            .all(|r| r[0].as_i64().unwrap() > 2000 && r[0].as_i64().unwrap() <= 5000));
        // A window combined with a semi-join applies both.
        let both = f.with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(4)])]);
        let out = PlanFragment::decode(&both.encode())
            .unwrap()
            .execute(&db)
            .unwrap();
        assert_eq!(out.rows, vec![vec![Value::Timestamp(4000), Value::Int(4)]]);
    }

    /// An integer timestamp column still slices: numeric comparison spans
    /// Int/Timestamp variants.
    #[test]
    fn window_slice_accepts_integer_time_columns() {
        let mut db = Database::new();
        db.put_table(
            "s",
            table_of(
                "s",
                &[("ts", ColumnType::Int)],
                (0..5).map(|i| vec![Value::Int(i * 10)]).collect(),
            )
            .unwrap(),
        );
        let f = PlanFragment::new(0, "SELECT ts FROM s", 1.0).with_window(WindowSlice {
            column: "ts".into(),
            open_ms: 10,
            close_ms: 30,
        });
        assert_eq!(f.execute(&db).unwrap().len(), 2, "ts = 20 and 30");
    }

    #[test]
    fn referenced_tables_walks_the_statement() {
        let deps = |sql: &str| referenced_tables(&crate::parser::parse_select(sql).unwrap());
        let named: BTreeSet<String> = ["sensors".to_string(), "turbines".to_string()]
            .into_iter()
            .collect();
        assert_eq!(
            deps("SELECT s.sid FROM sensors AS s JOIN turbines AS t ON s.tid = t.tid"),
            Some(named.clone())
        );
        assert_eq!(
            deps(
                "SELECT sid FROM (SELECT sid FROM sensors) AS u \
                 UNION ALL SELECT tid FROM turbines"
            ),
            Some(named)
        );
        // A table-valued function hides its provenance.
        assert_eq!(
            deps("SELECT * FROM timeslidingwindow('S', 0, 10, 1, 0, 0, 0) AS w"),
            None
        );
    }

    #[test]
    fn partition_spec_round_trips_the_wire() {
        let f = PlanFragment::new(4, "SELECT sid FROM sensors", 1.0)
            .with_partition(PartitionSpec {
                table: "sensors".into(),
                column: "sid".into(),
                column_type: ColumnType::Int,
            })
            .with_semi_joins(vec![SemiJoin::new("sid", vec![Value::Int(3)])]);
        assert_eq!(PlanFragment::decode(&f.encode()).unwrap(), f);
    }

    // ---- shard compatibility --------------------------------------------

    fn partition() -> Vec<(String, String)> {
        vec![("sensors".to_string(), "sid".to_string())]
    }

    fn compat(sql: &str) -> ShardCompatibility {
        shard_compatibility(&crate::parser::parse_select(sql).unwrap(), &partition())
    }

    #[test]
    fn unpartitioned_statements_are_free() {
        assert_eq!(
            compat("SELECT tid FROM turbines"),
            ShardCompatibility::Unpartitioned
        );
        assert_eq!(
            compat("SELECT COUNT(*) AS n FROM turbines"),
            ShardCompatibility::Unpartitioned,
            "shape only matters once a partitioned table is scanned"
        );
    }

    #[test]
    fn single_partitioned_scan_scatters() {
        assert!(matches!(
            compat("SELECT sid FROM sensors"),
            ShardCompatibility::Scatter { dedup: false, .. }
        ));
        assert!(matches!(
            compat("SELECT DISTINCT sid FROM sensors"),
            ShardCompatibility::Scatter { dedup: true, .. }
        ));
        assert!(matches!(
            compat("SELECT s.sid FROM (SELECT sid FROM sensors WHERE sid > 3) AS s"),
            ShardCompatibility::Scatter { .. }
        ));
    }

    #[test]
    fn non_decomposable_shapes_are_incompatible() {
        for sql in [
            "SELECT COUNT(*) AS n FROM sensors",
            "SELECT sid FROM sensors LIMIT 3",
            "SELECT sid FROM sensors ORDER BY sid",
            "SELECT sid FROM sensors UNION ALL SELECT sid FROM sensors",
            // A modifier hidden inside the subquery is just as unsound.
            "SELECT sid FROM (SELECT sid FROM sensors LIMIT 3) AS s",
            // A nested DISTINCT dedups per shard only; the global result
            // dedups across shards, and the outer statement carries no
            // DISTINCT to repair it at gather.
            "SELECT aid FROM (SELECT DISTINCT aid FROM sensors) AS s",
        ] {
            assert_eq!(compat(sql), ShardCompatibility::Incompatible, "{sql}");
        }
    }

    #[test]
    fn co_partitioned_joins_scatter() {
        // Joined on the partition key (directly or via subquery aliases):
        // matching rows share a shard.
        assert!(matches!(
            compat("SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.sid = b.sid"),
            ShardCompatibility::Scatter { .. }
        ));
        assert!(matches!(
            compat(
                "SELECT u0.sid FROM (SELECT aid, sid FROM sensors) AS u0 \
                 JOIN (SELECT sid FROM sensors WHERE aid = 1) AS u1 ON u0.sid = u1.sid"
            ),
            ShardCompatibility::Scatter { .. }
        ));
        // Transitive equating through a replicated middle table.
        assert!(matches!(
            compat(
                "SELECT a.sid FROM sensors AS a JOIN turbines AS t ON a.sid = t.tid \
                 JOIN sensors AS b ON t.tid = b.sid"
            ),
            ShardCompatibility::Scatter { .. }
        ));
    }

    /// A LEFT JOIN preserving a replicated side would NULL-pad per shard:
    /// scatter must refuse any outer join that touches a partitioned table.
    #[test]
    fn outer_joins_are_incompatible() {
        assert_eq!(
            compat("SELECT t.tid FROM turbines AS t LEFT JOIN sensors AS s ON t.tid = s.sid"),
            ShardCompatibility::Incompatible
        );
        assert_eq!(
            compat("SELECT s.sid FROM sensors AS s LEFT JOIN turbines AS t ON s.tid = t.tid"),
            ShardCompatibility::Incompatible
        );
        // Outer joins among replicated tables only are still free.
        assert_eq!(
            compat("SELECT a.tid FROM turbines AS a LEFT JOIN turbines AS b ON a.tid = b.tid"),
            ShardCompatibility::Unpartitioned
        );
    }

    #[test]
    fn non_key_joins_are_incompatible() {
        // Joined on a non-key column: cross-shard pairs would be missed.
        assert_eq!(
            compat("SELECT a.sid FROM sensors AS a JOIN sensors AS b ON a.aid = b.aid"),
            ShardCompatibility::Incompatible
        );
        // A key that one side does not even project cannot be checked.
        assert_eq!(
            compat(
                "SELECT u0.sid FROM (SELECT sid FROM sensors) AS u0 \
                 JOIN (SELECT aid FROM sensors) AS u1 ON u0.sid = u1.aid"
            ),
            ShardCompatibility::Incompatible
        );
    }

    // ---- shard pruning --------------------------------------------------

    fn pruned_fragment(values: Vec<Value>) -> PlanFragment {
        PlanFragment::new(
            0,
            "SELECT iri_template('http://x/sensor/{}', u0.sid) AS s, u0.aid AS a \
             FROM (SELECT sid, aid FROM sensors) AS u0",
            1.0,
        )
        .with_partition(PartitionSpec {
            table: "sensors".into(),
            column: "sid".into(),
            column_type: ColumnType::Int,
        })
        .with_semi_joins(vec![SemiJoin::new("s", values)])
    }

    #[test]
    fn shard_plan_routes_template_minted_keys() {
        let shards = 8;
        let f = pruned_fragment(vec![
            Value::text("http://x/sensor/1"),
            Value::text("http://x/sensor/2"),
        ]);
        let plan = f.shard_plan(shards).expect("prunable");
        // At most shard(1), shard(2) and the NULL home shard 0.
        assert!(plan.len() <= 3, "{plan:?}");
        let mut shipped: Vec<Value> = Vec::new();
        for (shard, fragment) in &plan {
            assert!(*shard < shards);
            for v in &fragment.semi_joins[0].values {
                // Each value rides exactly the shard its raw key hashes to.
                assert_eq!(
                    shard_of(
                        &Value::Int(v.as_str().unwrap()[16..].parse().unwrap()),
                        shards
                    ),
                    *shard
                );
                shipped.push(v.clone());
            }
        }
        assert_eq!(shipped.len(), 2, "every value ships exactly once");
        // Shard 0 is always targeted (NULL keys live there).
        assert!(plan.iter().any(|(s, _)| *s == 0));
    }

    #[test]
    fn shard_plan_declines_when_not_applicable() {
        // No semi-join, single shard, or a non-key-derived restriction.
        assert!(pruned_fragment(vec![]).shard_plan(1).is_none());
        let no_semi =
            PlanFragment::new(0, "SELECT sid FROM sensors", 1.0).with_partition(PartitionSpec {
                table: "sensors".into(),
                column: "sid".into(),
                column_type: ColumnType::Int,
            });
        assert!(no_semi.shard_plan(4).is_none());
        let non_key =
            pruned_fragment(vec![]).with_semi_joins(vec![SemiJoin::new("a", vec![Value::Int(1)])]);
        assert!(non_key.shard_plan(4).is_none());
    }

    /// Regression: a Text partition key holding `""` mints the bare
    /// prefix IRI — such a restriction value must target that row's shard,
    /// not be dropped as unproducible.
    #[test]
    fn shard_plan_routes_empty_text_keys() {
        let shards = 8;
        let f = PlanFragment::new(
            0,
            "SELECT iri_template('http://x/sensor/{}', u0.sid) AS s \
             FROM (SELECT sid FROM sensors) AS u0",
            1.0,
        )
        .with_partition(PartitionSpec {
            table: "sensors".into(),
            column: "sid".into(),
            column_type: ColumnType::Text,
        })
        .with_semi_joins(vec![SemiJoin::new(
            "s",
            vec![Value::text("http://x/sensor/")],
        )]);
        let plan = f.shard_plan(shards).expect("prunable");
        let home = shard_of(&Value::text(""), shards);
        assert!(
            plan.iter().any(|(shard, fragment)| *shard == home
                && fragment.semi_joins[0].values == vec![Value::text("http://x/sensor/")]),
            "the empty-key shard must execute with the value: {plan:?}"
        );
    }

    /// Regression: Timestamp keys mint through Display as `@{t}` — the
    /// inversion must route `…/@5` to Timestamp(5)'s shard, never drop it
    /// as unparseable.
    #[test]
    fn shard_plan_routes_timestamp_keys() {
        let shards = 8;
        let f = PlanFragment::new(
            0,
            "SELECT iri_template('http://x/e/{}', u0.ts) AS e \
             FROM (SELECT ts FROM events) AS u0",
            1.0,
        )
        .with_partition(PartitionSpec {
            table: "events".into(),
            column: "ts".into(),
            column_type: ColumnType::Timestamp,
        })
        .with_semi_joins(vec![SemiJoin::new("e", vec![Value::text("http://x/e/@5")])]);
        let plan = f.shard_plan(shards).expect("prunable");
        let home = shard_of(&Value::Timestamp(5), shards);
        assert!(
            plan.iter().any(|(shard, fragment)| *shard == home
                && fragment.semi_joins[0].values == vec![Value::text("http://x/e/@5")]),
            "the timestamp's home shard must execute with the value: {plan:?}"
        );
        // A bare number cannot be minted from a Timestamp key: it is
        // unproducible and pins the plan to the NULL home only.
        let bare = f.with_semi_joins(vec![SemiJoin::new("e", vec![Value::text("http://x/e/5")])]);
        let plan = bare.shard_plan(shards).expect("prunable");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].0, 0);
    }

    /// Bool/Any partition keys decline pruning entirely: minted text does
    /// not pin down the stored variant, and Text("1") hashes differently
    /// from Int(1).
    #[test]
    fn shard_plan_declines_untyped_keys() {
        for ty in [ColumnType::Any, ColumnType::Bool] {
            let f = pruned_fragment(vec![Value::text("http://x/sensor/1")]);
            let f = PlanFragment {
                partition: Some(PartitionSpec {
                    column_type: ty,
                    ..f.partition.clone().unwrap()
                }),
                ..f
            };
            assert!(f.shard_plan(8).is_none(), "{ty:?} keys must not route");
        }
    }

    #[test]
    fn shard_plan_drops_foreign_template_values() {
        // A value from an incompatible template cannot be minted by this
        // scan: it targets no shard (only the NULL home remains).
        let f = pruned_fragment(vec![Value::text("http://x/turbine/1")]);
        let plan = f.shard_plan(8).expect("prunable");
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].0, 0);
        assert!(plan[0].1.semi_joins[0].values.is_empty());
    }

    #[test]
    fn shard_plan_execution_matches_unpruned_union() {
        // Differential check: executing the per-shard fragments over the
        // matching shards returns exactly what the unpruned fragment
        // returns over the whole table.
        let mut db = Database::new();
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("sid", ColumnType::Int), ("aid", ColumnType::Int)],
                (0..64)
                    .map(|i| vec![Value::Int(i), Value::Int(i % 5)])
                    .chain(std::iter::once(vec![Value::Null, Value::Int(99)]))
                    .collect(),
            )
            .unwrap(),
        );
        let shards = 8;
        let shard_tables: Vec<Table> = {
            let t = db.table("sensors").unwrap();
            let col = t.schema.index_of("sid").unwrap();
            let mut out: Vec<Table> = (0..shards)
                .map(|_| Table::empty(t.schema.clone()))
                .collect();
            for row in &t.rows {
                out[shard_of(&row[col], shards)].rows.push(row.clone());
            }
            out
        };
        let values: Vec<Value> = (0..3)
            .map(|i| Value::text(format!("http://x/sensor/{}", i * 7)))
            .collect();
        let fragment = pruned_fragment(values);

        let unpruned = fragment.execute(&db).unwrap();
        let plan = fragment.shard_plan(shards).expect("prunable");
        assert!(plan.len() < shards || shards == 1);

        let mut gathered: Vec<Vec<Value>> = Vec::new();
        for (shard, shard_fragment) in plan {
            let mut shard_db = Database::new();
            shard_db.put_table("sensors", shard_tables[shard].clone());
            gathered.extend(shard_fragment.execute(&shard_db).unwrap().rows);
        }
        let canon = |mut rows: Vec<Vec<Value>>| {
            rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            rows
        };
        assert_eq!(canon(gathered), canon(unpruned.rows));
    }

    #[test]
    fn batch_round_trip_all_types() {
        let t = table_of(
            "t",
            &[
                ("i", ColumnType::Int),
                ("f", ColumnType::Float),
                ("s", ColumnType::Text),
                ("b", ColumnType::Bool),
                ("ts", ColumnType::Timestamp),
            ],
            vec![
                vec![
                    Value::Int(-4),
                    Value::Float(0.1),
                    Value::text("tab\there\nand \\ there"),
                    Value::Bool(true),
                    Value::Timestamp(600_000),
                ],
                vec![
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap();
        let batch = ResultBatch::from_table(&t);
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        let back = decoded.into_table().unwrap();
        assert_eq!(back.rows, t.rows);
        // Qualifiers are a binder-local concern and do not cross the wire;
        // the column names and types themselves must.
        assert_eq!(back.schema.header(), vec!["i", "f", "s", "b", "ts"]);
    }

    #[test]
    fn float_precision_survives_the_wire() {
        let batch = ResultBatch::from_rows(
            vec![("x".into(), ColumnType::Float)],
            vec![vec![Value::Float(1.0 / 3.0)], vec![Value::Float(1e300)]],
        );
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(
            decoded.to_rows().unwrap(),
            vec![vec![Value::Float(1.0 / 3.0)], vec![Value::Float(1e300)]]
        );
    }

    #[test]
    fn empty_batch_round_trip() {
        let batch = ResultBatch::from_rows(vec![("only".into(), ColumnType::Int)], vec![]);
        assert_eq!(ResultBatch::decode(&batch.encode()).unwrap(), batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn arity_mismatch_rejected() {
        // Legacy row-major form: short row.
        assert!(ResultBatch::decode("batch\ta:INT\ti1\ti2").is_err());
        let wire = "batch\ta:INT\tb:INT\ni1\n";
        assert!(ResultBatch::decode(wire).is_err());
        // Columnar form: column shorter than the declared row count, and a
        // missing column line.
        assert!(ResultBatch::decode("cbatch\t2\ta:INT\ni\t1\n").is_err());
        assert!(ResultBatch::decode("cbatch\t1\ta:INT\tb:INT\ni\t1\n").is_err());
    }

    /// Text columns ship dictionary ids, not lexical terms: the wire line
    /// for a text column is digits only, and decode resolves the ids back
    /// to the exact interned strings.
    #[test]
    fn text_columns_ship_dictionary_ids() {
        let iri = "http://example.org/sensor/wire-id-test";
        let t = table_of(
            "r",
            &[("s", ColumnType::Text)],
            vec![vec![Value::text(iri)], vec![Value::Null]],
        )
        .unwrap();
        let batch = ResultBatch::from_table(&t);
        let wire = batch.encode();
        assert!(
            !wire.contains("example.org"),
            "lexical term must not cross the wire: {wire:?}"
        );
        let id = match &batch.data[0] {
            ColumnData::Text(ids) => ids[0],
            other => panic!("expected a text column, got {other:?}"),
        };
        assert!(wire.contains(&format!("d\t{id}\t0")), "{wire:?}");
        let back = ResultBatch::decode(&wire).unwrap().into_table().unwrap();
        assert_eq!(back.rows, t.rows);
    }

    /// The row-major legacy encoding is still accepted by `decode` and
    /// describes the same relation — the baseline the columnar-wire bench
    /// compares byte counts against.
    #[test]
    fn legacy_row_major_encoding_round_trips() {
        let t = table_of(
            "r",
            &[("s", ColumnType::Text), ("n", ColumnType::Int)],
            vec![
                vec![Value::text("http://example.org/a"), Value::Int(1)],
                vec![Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let batch = ResultBatch::from_table(&t);
        let legacy = batch.encode_row_major().unwrap();
        assert!(legacy.contains("example.org"), "legacy ships lexical text");
        let decoded = ResultBatch::decode(&legacy).unwrap();
        assert_eq!(decoded, batch);
        assert!(
            batch.encode().len() < legacy.len(),
            "columnar wire must be smaller than the row-major baseline"
        );
    }

    /// A column whose values mix variants falls back to tagged cells and
    /// still round-trips exactly.
    #[test]
    fn mixed_type_columns_round_trip() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::text("two")],
            vec![Value::Bool(true)],
            vec![Value::Null],
        ];
        let batch = ResultBatch::from_rows(vec![("v".into(), ColumnType::Any)], rows.clone());
        assert!(matches!(batch.data[0], ColumnData::Any(_)));
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        assert_eq!(decoded.to_rows().unwrap(), rows);
    }

    /// `PROPTEST_CASES` dials generative coverage, as in the integration
    /// suites (tests/common reads the same variable).
    fn proptest_cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig { cases: proptest_cases() })]

        /// Satellite coverage: columnar encode → decode is the identity
        /// over generated batches — NULLs, every variant, mixed-type
        /// columns, empty batches — and materialized rows match the
        /// originals exactly.
        #[test]
        fn columnar_wire_round_trip(
            raw in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 1..5),
                0..12,
            ),
            seed in 0u64..u64::MAX,
        ) {
            // Shape the raw matrix into a rectangle: the first row fixes
            // the arity; every row is cycled/truncated to it.
            let arity = raw.first().map_or(1, Vec::len);
            let value_of = |tag: u8, r: usize, c: usize| match tag {
                0 => Value::Null,
                1 => Value::Int((seed as i64).wrapping_add((r * 7 + c) as i64)),
                2 => Value::Float((seed % 1000) as f64 / 3.0 + r as f64),
                3 => Value::text(format!("term-{seed}-{}", (r + c) % 5)),
                4 => Value::Bool((r + c).is_multiple_of(2)),
                _ => Value::Timestamp((seed % 1_000_000) as i64 + r as i64),
            };
            let rows: Vec<Vec<Value>> = raw
                .iter()
                .enumerate()
                .map(|(r, tags)| {
                    (0..arity)
                        .map(|c| value_of(tags[c % tags.len()], r, c))
                        .collect()
                })
                .collect();
            let columns: Vec<(String, ColumnType)> =
                (0..arity).map(|i| (format!("c{i}"), ColumnType::Any)).collect();
            let batch = ResultBatch::from_rows(columns, rows.clone());
            let decoded = ResultBatch::decode(&batch.encode()).unwrap();
            proptest::prop_assert_eq!(&decoded, &batch);
            proptest::prop_assert_eq!(decoded.to_rows().unwrap(), rows);
        }
    }
}
