//! Serializable plan fragments and result batches — the wire format of the
//! federated static pipeline.
//!
//! A coordinator splits an unfolded `UNION ALL` statement into per-disjunct
//! [`PlanFragment`]s and ships them to ExaStream workers; each worker ships
//! a [`ResultBatch`] back. Workers in this repo are threads, so "shipping"
//! is an encode/decode round trip through the textual wire format below —
//! the same discipline a socket would impose, which keeps every fragment
//! and batch genuinely self-contained (no shared pointers smuggled across
//! the worker boundary).
//!
//! The wire format is line-oriented: a header line, then one line per row,
//! with `\`-escaping for newlines, carriage returns, tabs and backslashes
//! inside text values.
//!
//! Fragments may carry **semi-join restrictions** ([`SemiJoin`]): value
//! lists a coordinator learned from an already-materialized sibling of the
//! join, shipped alongside the SQL so each worker filters its disjunct down
//! to join-compatible rows *before* shipping the result batch back. The
//! restriction is applied structurally ([`restrict_statement`]), never by
//! splicing values into SQL text, so text values need no quoting rules
//! beyond the wire escaping.

use std::fmt::Write as _;

use crate::error::SqlError;
use crate::expr::Expr;
use crate::parser::{Projection, SelectStatement, TableRef};
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Database, Table};
use crate::value::Value;

/// One pushed-down semi-join: the named output column of a fragment must
/// take one of `values` (or be NULL — an unbound SPARQL position joins with
/// anything, so NULL rows must survive the filter).
#[derive(Clone, Debug, PartialEq)]
pub struct SemiJoin {
    /// The fragment output column (the projection alias) being restricted.
    pub column: String,
    /// The admissible values, as learned from the materialized side.
    pub values: Vec<Value>,
}

impl SemiJoin {
    /// A restriction of `column` to `values`.
    pub fn new(column: impl Into<String>, values: Vec<Value>) -> Self {
        SemiJoin {
            column: column.into(),
            values,
        }
    }
}

/// One executable unit of a federated static query: a self-contained SQL
/// statement (typically one disjunct of an unfolded `UNION ALL`) plus the
/// cost estimate the scheduler places it by and any semi-join restrictions
/// the planner pushed down.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanFragment {
    /// Coordinator-assigned id; results are gathered back in id order.
    pub id: u64,
    /// The fragment's SQL(+) text.
    pub sql: String,
    /// Placement cost estimate in abstract work units (e.g. join count).
    pub cost: f64,
    /// Semi-join restrictions applied on top of [`Self::sql`] at execution.
    pub semi_joins: Vec<SemiJoin>,
}

impl PlanFragment {
    /// A fragment with the given id, SQL and cost (no restrictions).
    pub fn new(id: u64, sql: impl Into<String>, cost: f64) -> Self {
        PlanFragment {
            id,
            sql: sql.into(),
            cost,
            semi_joins: Vec::new(),
        }
    }

    /// Attaches semi-join restrictions (builder style).
    pub fn with_semi_joins(mut self, semi_joins: Vec<SemiJoin>) -> Self {
        self.semi_joins = semi_joins;
        self
    }

    /// The fragment's executable statement: the parsed SQL with any
    /// semi-join restrictions applied around it.
    pub fn statement(&self) -> Result<SelectStatement, SqlError> {
        let statement = crate::parser::parse_select(&self.sql)?;
        Ok(restrict_statement(statement, &self.semi_joins))
    }

    /// Parses, restricts and executes the fragment against `db` — the one
    /// entry point workers and coordinators share, so a restriction is never
    /// silently dropped on any execution path.
    pub fn execute(&self, db: &Database) -> Result<Table, SqlError> {
        let statement = self.statement()?;
        let plan = crate::optimizer::optimize(crate::plan::plan_select(&statement, db)?);
        crate::exec::execute(&plan, db)
    }

    /// Encodes the fragment for the wire: the header line, then one line
    /// per semi-join restriction.
    pub fn encode(&self) -> String {
        let mut out = format!("frag\t{}\t{}\t{}", self.id, self.cost, escape(&self.sql));
        for semi in &self.semi_joins {
            let _ = write!(out, "\nsemi\t{}", escape(&semi.column));
            for value in &semi.values {
                let _ = write!(out, "\t{}", encode_value(value));
            }
        }
        out
    }

    /// Decodes a fragment off the wire.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut lines = wire.lines();
        let header = lines
            .next()
            .ok_or_else(|| SqlError::Execution("empty plan fragment".into()))?;
        let mut parts = header.splitn(4, '\t');
        let tag = parts.next().unwrap_or_default();
        if tag != "frag" {
            return Err(SqlError::Execution(format!(
                "not a plan fragment: tag {tag:?}"
            )));
        }
        let id = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment id missing".into()))?;
        let cost = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment cost missing".into()))?;
        let sql = unescape(
            parts
                .next()
                .ok_or_else(|| SqlError::Execution("fragment SQL missing".into()))?,
        )?;
        let mut semi_joins = Vec::new();
        for line in lines {
            let mut fields = line.split('\t');
            if fields.next() != Some("semi") {
                return Err(SqlError::Execution(format!(
                    "bad fragment section {line:?}"
                )));
            }
            let column = unescape(
                fields
                    .next()
                    .ok_or_else(|| SqlError::Execution("semi-join column missing".into()))?,
            )?;
            let values: Vec<Value> = fields.map(decode_value).collect::<Result<_, _>>()?;
            semi_joins.push(SemiJoin { column, values });
        }
        Ok(PlanFragment {
            id,
            sql,
            cost,
            semi_joins,
        })
    }
}

/// Applies semi-join restrictions around a statement: each disjunct of its
/// `UNION ALL` chain is wrapped in `SELECT * FROM (disjunct) WHERE col IN
/// (values) OR col IS NULL` for every restriction. NULL output positions
/// survive — an unbound SPARQL variable is join-compatible with anything —
/// so restricting can only drop rows that cannot contribute to the join.
pub fn restrict_statement(statement: SelectStatement, semi_joins: &[SemiJoin]) -> SelectStatement {
    if semi_joins.is_empty() {
        return statement;
    }
    // Restrict each disjunct independently, then re-chain.
    let mut disjuncts: Vec<SelectStatement> = Vec::new();
    let mut cursor = Some(statement);
    while let Some(mut stmt) = cursor {
        cursor = stmt.union_all.take().map(|next| *next);
        disjuncts.push(restrict_one(stmt, semi_joins));
    }
    let mut chain = disjuncts.pop().expect("at least one disjunct");
    while let Some(mut prev) = disjuncts.pop() {
        prev.union_all = Some(Box::new(chain));
        chain = prev;
    }
    chain
}

fn restrict_one(statement: SelectStatement, semi_joins: &[SemiJoin]) -> SelectStatement {
    let predicate = Expr::and_all(
        semi_joins
            .iter()
            .map(|semi| {
                let column = || Box::new(Expr::Column(semi.column.clone()));
                let is_null = Expr::IsNull {
                    expr: column(),
                    negated: false,
                };
                if semi.values.is_empty() {
                    // No admissible bound value: only NULL rows can join.
                    is_null
                } else {
                    Expr::binary(
                        crate::expr::BinOp::Or,
                        Expr::InList {
                            expr: column(),
                            list: semi
                                .values
                                .iter()
                                .map(|v| Expr::Literal(v.clone()))
                                .collect(),
                            negated: false,
                        },
                        is_null,
                    )
                }
            })
            .collect(),
    )
    .expect("semi_joins is non-empty");
    SelectStatement {
        distinct: false,
        projections: vec![Projection::Star],
        from: TableRef::Subquery {
            query: Box::new(statement),
            alias: "__semi".into(),
        },
        joins: Vec::new(),
        where_clause: Some(predicate),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        union_all: None,
    }
}

/// A self-contained result relation: column names and types plus rows, with
/// no schema qualifiers or index handles attached — exactly what survives a
/// trip over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultBatch {
    /// Output columns in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Row-major values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultBatch {
    /// Captures a table as a batch.
    pub fn from_table(table: &Table) -> Self {
        ResultBatch {
            columns: table
                .schema
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty))
                .collect(),
            rows: table.rows.clone(),
        }
    }

    /// Rebuilds a table from the batch.
    pub fn into_table(self) -> Result<Table, SqlError> {
        let schema = Schema::new(
            self.columns
                .into_iter()
                .map(|(name, ty)| Column::new(name, ty))
                .collect(),
        );
        Table::new(schema, self.rows)
    }

    /// Encodes the batch for the wire.
    pub fn encode(&self) -> String {
        let mut out = String::from("batch");
        for (name, ty) in &self.columns {
            let _ = write!(out, "\t{}:{ty}", escape(name));
        }
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(encode_value).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Decodes a batch off the wire.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut lines = wire.lines();
        let header = lines
            .next()
            .ok_or_else(|| SqlError::Execution("empty result batch".into()))?;
        let mut fields = header.split('\t');
        if fields.next() != Some("batch") {
            return Err(SqlError::Execution("not a result batch".into()));
        }
        let mut columns = Vec::new();
        for field in fields {
            let (name, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| SqlError::Execution(format!("bad column field {field:?}")))?;
            columns.push((unescape(name)?, decode_type(ty)?));
        }
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let row: Vec<Value> = line
                .split('\t')
                .map(decode_value)
                .collect::<Result<_, _>>()?;
            if row.len() != columns.len() {
                return Err(SqlError::Execution(format!(
                    "batch row arity {} does not match {} columns",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
        }
        Ok(ResultBatch { columns, rows })
    }
}

fn decode_type(ty: &str) -> Result<ColumnType, SqlError> {
    Ok(match ty {
        "INT" => ColumnType::Int,
        "FLOAT" => ColumnType::Float,
        "TEXT" => ColumnType::Text,
        "BOOL" => ColumnType::Bool,
        "TIMESTAMP" => ColumnType::Timestamp,
        "ANY" => ColumnType::Any,
        other => {
            return Err(SqlError::Execution(format!(
                "unknown column type {other:?}"
            )))
        }
    })
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Int(i) => format!("i{i}"),
        // `{:?}` keeps full f64 precision (shortest round-trippable form).
        Value::Float(f) => format!("f{f:?}"),
        Value::Text(s) => format!("t{}", escape(s)),
        Value::Bool(b) => format!("b{}", u8::from(*b)),
        Value::Timestamp(t) => format!("s{t}"),
    }
}

fn decode_value(cell: &str) -> Result<Value, SqlError> {
    let bad = || SqlError::Execution(format!("bad wire value {cell:?}"));
    let rest = cell.get(1..).ok_or_else(bad)?;
    Ok(match cell.as_bytes()[0] {
        b'n' => Value::Null,
        b'i' => Value::Int(rest.parse().map_err(|_| bad())?),
        b'f' => Value::Float(rest.parse().map_err(|_| bad())?),
        b't' => Value::text(unescape(rest)?),
        b'b' => Value::Bool(rest == "1"),
        b's' => Value::Timestamp(rest.parse().map_err(|_| bad())?),
        _ => return Err(bad()),
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            // `decode` splits the wire with `lines()`, which consumes a
            // `\r` before each `\n`; a literal one must not look like that.
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, SqlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(SqlError::Execution(format!(
                    "bad escape \\{} on the wire",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;

    #[test]
    fn fragment_round_trip() {
        let f = PlanFragment::new(
            7,
            "SELECT a FROM t WHERE name = 'x\ty'\n  AND a > 1 -- back\\slash",
            3.5,
        );
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn fragment_rejects_garbage() {
        assert!(PlanFragment::decode("nonsense").is_err());
        assert!(PlanFragment::decode("frag\txyz\t1.0\tSELECT 1").is_err());
        assert!(PlanFragment::decode("frag\t1\t1.0\tSELECT a FROM t\nbogus\tx").is_err());
    }

    #[test]
    fn carriage_returns_survive_the_wire() {
        // `decode` splits on `lines()`, which would eat a trailing literal
        // `\r` before the next section line if it were not escaped.
        let f = PlanFragment::new(1, "SELECT a AS v FROM t", 1.0).with_semi_joins(vec![
            SemiJoin::new("v", vec![Value::text("abc\r")]),
            SemiJoin::new("w\r\n", vec![]),
        ]);
        assert_eq!(PlanFragment::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn semi_joins_round_trip_the_wire() {
        let f = PlanFragment::new(3, "SELECT a AS v FROM t", 1.0).with_semi_joins(vec![
            SemiJoin::new(
                "v",
                vec![
                    Value::text("http://x/tab\there"),
                    Value::Int(-7),
                    Value::Null,
                ],
            ),
            SemiJoin::new("w", vec![]),
        ]);
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    fn restricted_db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "t",
            table_of(
                "t",
                &[("a", ColumnType::Int), ("b", ColumnType::Text)],
                vec![
                    vec![Value::Int(1), Value::text("x")],
                    vec![Value::Int(2), Value::text("y")],
                    vec![Value::Int(3), Value::Null],
                    vec![Value::Null, Value::text("z")],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn execute_applies_semi_join_and_keeps_nulls() {
        let db = restricted_db();
        let unrestricted = PlanFragment::new(0, "SELECT a AS v, b AS w FROM t", 1.0);
        assert_eq!(unrestricted.execute(&db).unwrap().len(), 4);

        let restricted = unrestricted
            .clone()
            .with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(1)])]);
        let out = restricted.execute(&db).unwrap();
        // Row with v=1 matches; the v=NULL row survives (unbound positions
        // join with anything); v=2 and v=3 are filtered out.
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.header(), vec!["v", "w"]);

        // A round trip over the wire preserves the restriction's effect.
        let shipped = PlanFragment::decode(&restricted.encode()).unwrap();
        assert_eq!(shipped.execute(&db).unwrap().rows, out.rows);
    }

    #[test]
    fn empty_value_list_keeps_only_nulls() {
        let db = restricted_db();
        let f = PlanFragment::new(0, "SELECT a AS v FROM t", 1.0)
            .with_semi_joins(vec![SemiJoin::new("v", vec![])]);
        let out = f.execute(&db).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Null]]);
    }

    #[test]
    fn restriction_applies_to_every_union_disjunct() {
        let db = restricted_db();
        let f = PlanFragment::new(
            0,
            "SELECT a AS v FROM t UNION ALL SELECT a AS v FROM t",
            1.0,
        )
        .with_semi_joins(vec![SemiJoin::new("v", vec![Value::Int(2)])]);
        let out = f.execute(&db).unwrap();
        // Each disjunct contributes its v=2 row and its v=NULL row.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn batch_round_trip_all_types() {
        let t = table_of(
            "t",
            &[
                ("i", ColumnType::Int),
                ("f", ColumnType::Float),
                ("s", ColumnType::Text),
                ("b", ColumnType::Bool),
                ("ts", ColumnType::Timestamp),
            ],
            vec![
                vec![
                    Value::Int(-4),
                    Value::Float(0.1),
                    Value::text("tab\there\nand \\ there"),
                    Value::Bool(true),
                    Value::Timestamp(600_000),
                ],
                vec![
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap();
        let batch = ResultBatch::from_table(&t);
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        let back = decoded.into_table().unwrap();
        assert_eq!(back.rows, t.rows);
        // Qualifiers are a binder-local concern and do not cross the wire;
        // the column names and types themselves must.
        assert_eq!(back.schema.header(), vec!["i", "f", "s", "b", "ts"]);
    }

    #[test]
    fn float_precision_survives_the_wire() {
        let batch = ResultBatch {
            columns: vec![("x".into(), ColumnType::Float)],
            rows: vec![vec![Value::Float(1.0 / 3.0)], vec![Value::Float(1e300)]],
        };
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded.rows, batch.rows);
    }

    #[test]
    fn empty_batch_round_trip() {
        let batch = ResultBatch {
            columns: vec![("only".into(), ColumnType::Int)],
            rows: vec![],
        };
        assert_eq!(ResultBatch::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(ResultBatch::decode("batch\ta:INT\ti1\ti2").is_err());
        let wire = "batch\ta:INT\tb:INT\ni1\n";
        assert!(ResultBatch::decode(wire).is_err());
    }
}
