//! Serializable plan fragments and result batches — the wire format of the
//! federated static pipeline.
//!
//! A coordinator splits an unfolded `UNION ALL` statement into per-disjunct
//! [`PlanFragment`]s and ships them to ExaStream workers; each worker ships
//! a [`ResultBatch`] back. Workers in this repo are threads, so "shipping"
//! is an encode/decode round trip through the textual wire format below —
//! the same discipline a socket would impose, which keeps every fragment
//! and batch genuinely self-contained (no shared pointers smuggled across
//! the worker boundary).
//!
//! The wire format is line-oriented: a header line, then one line per row,
//! with `\`-escaping for newlines, tabs and backslashes inside text values.

use std::fmt::Write as _;

use crate::error::SqlError;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

/// One executable unit of a federated static query: a self-contained SQL
/// statement (typically one disjunct of an unfolded `UNION ALL`) plus the
/// cost estimate the scheduler places it by.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanFragment {
    /// Coordinator-assigned id; results are gathered back in id order.
    pub id: u64,
    /// The fragment's SQL(+) text.
    pub sql: String,
    /// Placement cost estimate in abstract work units (e.g. join count).
    pub cost: f64,
}

impl PlanFragment {
    /// A fragment with the given id, SQL and cost.
    pub fn new(id: u64, sql: impl Into<String>, cost: f64) -> Self {
        PlanFragment {
            id,
            sql: sql.into(),
            cost,
        }
    }

    /// Encodes the fragment for the wire.
    pub fn encode(&self) -> String {
        format!("frag\t{}\t{}\t{}", self.id, self.cost, escape(&self.sql))
    }

    /// Decodes a fragment off the wire.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut parts = wire.splitn(4, '\t');
        let tag = parts.next().unwrap_or_default();
        if tag != "frag" {
            return Err(SqlError::Execution(format!(
                "not a plan fragment: tag {tag:?}"
            )));
        }
        let id = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment id missing".into()))?;
        let cost = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SqlError::Execution("fragment cost missing".into()))?;
        let sql = unescape(
            parts
                .next()
                .ok_or_else(|| SqlError::Execution("fragment SQL missing".into()))?,
        )?;
        Ok(PlanFragment { id, sql, cost })
    }
}

/// A self-contained result relation: column names and types plus rows, with
/// no schema qualifiers or index handles attached — exactly what survives a
/// trip over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultBatch {
    /// Output columns in order.
    pub columns: Vec<(String, ColumnType)>,
    /// Row-major values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultBatch {
    /// Captures a table as a batch.
    pub fn from_table(table: &Table) -> Self {
        ResultBatch {
            columns: table
                .schema
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.ty))
                .collect(),
            rows: table.rows.clone(),
        }
    }

    /// Rebuilds a table from the batch.
    pub fn into_table(self) -> Result<Table, SqlError> {
        let schema = Schema::new(
            self.columns
                .into_iter()
                .map(|(name, ty)| Column::new(name, ty))
                .collect(),
        );
        Table::new(schema, self.rows)
    }

    /// Encodes the batch for the wire.
    pub fn encode(&self) -> String {
        let mut out = String::from("batch");
        for (name, ty) in &self.columns {
            let _ = write!(out, "\t{}:{ty}", escape(name));
        }
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(encode_value).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Decodes a batch off the wire.
    pub fn decode(wire: &str) -> Result<Self, SqlError> {
        let mut lines = wire.lines();
        let header = lines
            .next()
            .ok_or_else(|| SqlError::Execution("empty result batch".into()))?;
        let mut fields = header.split('\t');
        if fields.next() != Some("batch") {
            return Err(SqlError::Execution("not a result batch".into()));
        }
        let mut columns = Vec::new();
        for field in fields {
            let (name, ty) = field
                .rsplit_once(':')
                .ok_or_else(|| SqlError::Execution(format!("bad column field {field:?}")))?;
            columns.push((unescape(name)?, decode_type(ty)?));
        }
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let row: Vec<Value> = line
                .split('\t')
                .map(decode_value)
                .collect::<Result<_, _>>()?;
            if row.len() != columns.len() {
                return Err(SqlError::Execution(format!(
                    "batch row arity {} does not match {} columns",
                    row.len(),
                    columns.len()
                )));
            }
            rows.push(row);
        }
        Ok(ResultBatch { columns, rows })
    }
}

fn decode_type(ty: &str) -> Result<ColumnType, SqlError> {
    Ok(match ty {
        "INT" => ColumnType::Int,
        "FLOAT" => ColumnType::Float,
        "TEXT" => ColumnType::Text,
        "BOOL" => ColumnType::Bool,
        "TIMESTAMP" => ColumnType::Timestamp,
        "ANY" => ColumnType::Any,
        other => {
            return Err(SqlError::Execution(format!(
                "unknown column type {other:?}"
            )))
        }
    })
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Int(i) => format!("i{i}"),
        // `{:?}` keeps full f64 precision (shortest round-trippable form).
        Value::Float(f) => format!("f{f:?}"),
        Value::Text(s) => format!("t{}", escape(s)),
        Value::Bool(b) => format!("b{}", u8::from(*b)),
        Value::Timestamp(t) => format!("s{t}"),
    }
}

fn decode_value(cell: &str) -> Result<Value, SqlError> {
    let bad = || SqlError::Execution(format!("bad wire value {cell:?}"));
    let rest = cell.get(1..).ok_or_else(bad)?;
    Ok(match cell.as_bytes()[0] {
        b'n' => Value::Null,
        b'i' => Value::Int(rest.parse().map_err(|_| bad())?),
        b'f' => Value::Float(rest.parse().map_err(|_| bad())?),
        b't' => Value::text(unescape(rest)?),
        b'b' => Value::Bool(rest == "1"),
        b's' => Value::Timestamp(rest.parse().map_err(|_| bad())?),
        _ => return Err(bad()),
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, SqlError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            other => {
                return Err(SqlError::Execution(format!(
                    "bad escape \\{} on the wire",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;

    #[test]
    fn fragment_round_trip() {
        let f = PlanFragment::new(
            7,
            "SELECT a FROM t WHERE name = 'x\ty'\n  AND a > 1 -- back\\slash",
            3.5,
        );
        let decoded = PlanFragment::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn fragment_rejects_garbage() {
        assert!(PlanFragment::decode("nonsense").is_err());
        assert!(PlanFragment::decode("frag\txyz\t1.0\tSELECT 1").is_err());
    }

    #[test]
    fn batch_round_trip_all_types() {
        let t = table_of(
            "t",
            &[
                ("i", ColumnType::Int),
                ("f", ColumnType::Float),
                ("s", ColumnType::Text),
                ("b", ColumnType::Bool),
                ("ts", ColumnType::Timestamp),
            ],
            vec![
                vec![
                    Value::Int(-4),
                    Value::Float(0.1),
                    Value::text("tab\there\nand \\ there"),
                    Value::Bool(true),
                    Value::Timestamp(600_000),
                ],
                vec![
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            ],
        )
        .unwrap();
        let batch = ResultBatch::from_table(&t);
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded, batch);
        let back = decoded.into_table().unwrap();
        assert_eq!(back.rows, t.rows);
        // Qualifiers are a binder-local concern and do not cross the wire;
        // the column names and types themselves must.
        assert_eq!(back.schema.header(), vec!["i", "f", "s", "b", "ts"]);
    }

    #[test]
    fn float_precision_survives_the_wire() {
        let batch = ResultBatch {
            columns: vec![("x".into(), ColumnType::Float)],
            rows: vec![vec![Value::Float(1.0 / 3.0)], vec![Value::Float(1e300)]],
        };
        let decoded = ResultBatch::decode(&batch.encode()).unwrap();
        assert_eq!(decoded.rows, batch.rows);
    }

    #[test]
    fn empty_batch_round_trip() {
        let batch = ResultBatch {
            columns: vec![("only".into(), ColumnType::Int)],
            rows: vec![],
        };
        assert_eq!(ResultBatch::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(ResultBatch::decode("batch\ta:INT\ti1\ti2").is_err());
        let wire = "batch\ta:INT\tb:INT\ni1\n";
        assert!(ResultBatch::decode(wire).is_err());
    }
}
