//! Expression AST, name binding and evaluation.
//!
//! Expressions exist in two phases sharing one enum: *unbound* trees out of
//! the parser reference columns by name ([`Expr::Column`]); [`Expr::bind`]
//! resolves every name against a [`Schema`] producing a tree whose leaves
//! are positional [`Expr::ColumnIdx`] references, which is what the executor
//! evaluates — no per-row string lookups on the hot path.

use std::fmt;

use crate::error::SqlError;
use crate::functions::{call_scalar, AggFunc};
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators, in SQL surface syntax.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// An SQL expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// Unresolved (possibly qualified) column reference.
    Column(String),
    /// Resolved positional column reference; display keeps the original name.
    ColumnIdx {
        /// Position in the input row.
        index: usize,
        /// Original surface name, for display.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Scalar function call.
    Function {
        /// Function name (case-insensitive, stored lowercase).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call; only valid inside aggregation contexts.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Arguments (empty for `COUNT(*)`).
        args: Vec<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v₁, …, vₙ)` over literal values.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// Hash-set membership over non-NULL literal values — the O(1)-probe
    /// form of a non-negated [`Expr::InList`], built for the large
    /// `IN`-lists semi-join pushdown ships (a linear probe per row turns
    /// restricted scans quadratic). `NULL IN {…}` is `NULL`, as in SQL.
    InSet {
        /// Tested expression.
        expr: Box<Expr>,
        /// The admissible values (none NULL).
        set: std::sync::Arc<std::collections::HashSet<Value>>,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
}

impl Expr {
    /// Column-by-name shorthand.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column(name.into())
    }

    /// Literal shorthand.
    pub fn lit(value: impl Into<Value>) -> Self {
        Expr::Literal(value.into())
    }

    /// Binary-op shorthand.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Self {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Equality shorthand.
    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(BinOp::Eq, left, right)
    }

    /// Conjunction of a non-empty expression list. Folds by consuming the
    /// iterator in place — no front-removal shifting, so a conjunction of
    /// `n` terms builds in O(n).
    pub fn and_all(exprs: Vec<Expr>) -> Option<Expr> {
        let mut exprs = exprs.into_iter();
        let first = exprs.next()?;
        Some(exprs.fold(first, |acc, e| Expr::binary(BinOp::And, acc, e)))
    }

    /// Resolves all column names against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, SqlError> {
        self.transform(&mut |e| match e {
            Expr::Column(name) => {
                let index = schema.resolve(name)?;
                Ok(Some(Expr::ColumnIdx {
                    index,
                    name: name.clone(),
                }))
            }
            _ => Ok(None),
        })
    }

    /// Bottom-up transformation: `f` returns `Some(replacement)` to rewrite a
    /// node (children already transformed), `None` to keep it.
    pub fn transform(
        &self,
        f: &mut impl FnMut(&Expr) -> Result<Option<Expr>, SqlError>,
    ) -> Result<Expr, SqlError> {
        let rebuilt = match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::ColumnIdx { .. } => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.transform(f)?),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)?),
                right: Box::new(right.transform(f)?),
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| a.transform(f))
                    .collect::<Result<_, _>>()?,
            },
            Expr::Aggregate { func, args } => Expr::Aggregate {
                func: *func,
                args: args
                    .iter()
                    .map(|a| a.transform(f))
                    .collect::<Result<_, _>>()?,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)?),
                list: list
                    .iter()
                    .map(|a| a.transform(f))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::InSet { expr, set } => Expr::InSet {
                expr: Box::new(expr.transform(f)?),
                set: std::sync::Arc::clone(set),
            },
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.transform(f)?),
                low: Box::new(low.transform(f)?),
                high: Box::new(high.transform(f)?),
            },
        };
        Ok(f(&rebuilt)?.unwrap_or(rebuilt))
    }

    /// Visits every node; used by analyses (aggregate detection, column use).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::ColumnIdx { .. } => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::InSet { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Function { args, .. } | Expr::Aggregate { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for a in list {
                    a.walk(f);
                }
            }
            Expr::Between { expr, low, high } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
        }
    }

    /// True when the tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// Column positions referenced by this (bound) expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let Expr::ColumnIdx { index, .. } = e {
                cols.push(*index);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Evaluates a bound expression against a row. Aggregates and unresolved
    /// columns are evaluation errors — they must be compiled away first.
    pub fn eval(&self, row: &[Value]) -> Result<Value, SqlError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(name) => Err(SqlError::Binding(format!(
                "unbound column {name} at evaluation time"
            ))),
            Expr::ColumnIdx { index, name } => row
                .get(*index)
                .cloned()
                .ok_or_else(|| SqlError::Execution(format!("row too short for column {name}"))),
            Expr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        other => Ok(Value::Bool(!other.is_truthy())),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SqlError::Type(format!("cannot negate {other}"))),
                    },
                }
            }
            Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            Expr::Function { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row)?);
                }
                call_scalar(name, &values)
            }
            Expr::Aggregate { .. } => Err(SqlError::Execution(
                "aggregate evaluated outside aggregation context".into(),
            )),
            Expr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.eval(row)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = item.eval(row)?;
                    match needle.sql_eq(&v) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::InSet { expr, set } => {
                let needle = expr.eval(row)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                // `Value`'s Eq/Hash agree with `sql_eq` on non-NULL values
                // (numerics hash through their f64 bits), so one probe
                // equals the `InList` linear scan.
                Ok(Value::Bool(set.contains(&needle)))
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => Ok(Value::Bool(
                        a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
                    )),
                    _ => Ok(Value::Null),
                }
            }
        }
    }

    /// A display name for projection output when no alias is given.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(name) | Expr::ColumnIdx { name, .. } => {
                name.rsplit('.').next().unwrap_or(name).to_string()
            }
            Expr::Aggregate { func, .. } => format!("{func}").to_ascii_lowercase(),
            Expr::Function { name, .. } => name.clone(),
            other => format!("{other}"),
        }
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, row: &[Value]) -> Result<Value, SqlError> {
    // AND/OR use three-valued logic with short-circuiting.
    if op == BinOp::And {
        let l = left.eval(row)?;
        if !l.is_null() && !l.is_truthy() {
            return Ok(Value::Bool(false));
        }
        let r = right.eval(row)?;
        return Ok(match (l.is_null(), r.is_null()) {
            (false, false) => Value::Bool(l.is_truthy() && r.is_truthy()),
            _ => {
                if !r.is_null() && !r.is_truthy() {
                    Value::Bool(false)
                } else {
                    Value::Null
                }
            }
        });
    }
    if op == BinOp::Or {
        let l = left.eval(row)?;
        if !l.is_null() && l.is_truthy() {
            return Ok(Value::Bool(true));
        }
        let r = right.eval(row)?;
        return Ok(match (l.is_null(), r.is_null()) {
            (false, false) => Value::Bool(l.is_truthy() || r.is_truthy()),
            _ => {
                if !r.is_null() && r.is_truthy() {
                    Value::Bool(true)
                } else {
                    Value::Null
                }
            }
        });
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &l, &r),
        BinOp::Eq => Ok(l.sql_eq(&r).map(Value::Bool).unwrap_or(Value::Null)),
        BinOp::Ne => Ok(l.sql_eq(&r).map(|b| Value::Bool(!b)).unwrap_or(Value::Null)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(ord) = l.sql_cmp(&r) else {
                return Ok(Value::Null);
            };
            use std::cmp::Ordering::*;
            let b = match op {
                BinOp::Lt => ord == Less,
                BinOp::Le => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are integers (except division by
    // zero, which is NULL as in SQLite); otherwise float.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        // Checked, never wrapped: i64 overflow is a typed error so single-node
        // and distributed execution agree instead of one path silently
        // returning a wrapped value. `/` and `%` also catch `i64::MIN / -1`.
        let overflow = || SqlError::Overflow(format!("{a} {} {b}", op.symbol()));
        return Ok(match op {
            BinOp::Add => Value::Int(a.checked_add(*b).ok_or_else(overflow)?),
            BinOp::Sub => Value::Int(a.checked_sub(*b).ok_or_else(overflow)?),
            BinOp::Mul => Value::Int(a.checked_mul(*b).ok_or_else(overflow)?),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.checked_div(*b).ok_or_else(overflow)?)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.checked_rem(*b).ok_or_else(overflow)?)
                }
            }
            _ => unreachable!(),
        });
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(SqlError::Type(format!(
            "arithmetic on non-numeric values {l} and {r}"
        )));
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a % b)
            }
        }
        _ => unreachable!(),
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(name) | Expr::ColumnIdx { name, .. } => write!(f, "{name}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
            },
            Expr::Binary { op, left, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, args } => {
                write!(f, "{func}(")?;
                if args.is_empty() {
                    write!(f, "*")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, a) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "))")
            }
            Expr::InSet { expr, set } => {
                // Render as a plain sorted IN list so the text stays valid,
                // deterministic SQL.
                let mut values: Vec<&Value> = set.iter().collect();
                values.sort();
                write!(f, "({expr} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", Expr::Literal((*v).clone()))?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high } => write!(f, "({expr} BETWEEN {low} AND {high})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::qualified(
            "m",
            vec![
                Column::new("sensor_id", ColumnType::Int),
                Column::new("value", ColumnType::Float),
            ],
        )
    }

    fn row() -> Vec<Value> {
        vec![Value::Int(7), Value::Float(81.5)]
    }

    #[test]
    fn bind_then_eval() {
        let e = Expr::binary(BinOp::Gt, Expr::col("value"), Expr::lit(80.0));
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unbound_column_fails_at_eval() {
        let e = Expr::col("value");
        assert!(matches!(e.eval(&row()), Err(SqlError::Binding(_))));
    }

    #[test]
    fn qualified_binding() {
        let e = Expr::col("m.sensor_id").bind(&schema()).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(7));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let e = Expr::binary(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(5));
        let d = Expr::binary(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64));
        assert_eq!(d.eval(&[]).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::binary(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        let f = Expr::binary(BinOp::Div, Expr::lit(1.0), Expr::lit(0.0));
        assert_eq!(f.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn overflow_is_a_typed_error() {
        for op in [BinOp::Add, BinOp::Mul] {
            let e = Expr::binary(op, Expr::lit(i64::MAX), Expr::lit(2i64));
            assert!(matches!(e.eval(&[]), Err(SqlError::Overflow(_))));
        }
        let e = Expr::binary(BinOp::Sub, Expr::lit(i64::MIN), Expr::lit(1i64));
        assert!(matches!(e.eval(&[]), Err(SqlError::Overflow(_))));
        let e = Expr::binary(BinOp::Div, Expr::lit(i64::MIN), Expr::lit(-1i64));
        assert!(matches!(e.eval(&[]), Err(SqlError::Overflow(_))));
    }

    /// Regression for the front-removal fold: a long conjunction must build
    /// linearly and evaluate left-to-right. (The old `remove(0)` shifted the
    /// whole tail per unfolded disjunct's condition list.) Depth is bounded
    /// by eval/Drop recursion on the left-deep tree, not by build cost.
    #[test]
    fn and_all_folds_long_chains_in_order() {
        let n = 300;
        let mut terms: Vec<Expr> = std::iter::repeat_n(Expr::lit(true), n).collect();
        terms.push(Expr::lit(false));
        let folded = Expr::and_all(terms).unwrap();
        assert_eq!(folded.eval(&[]).unwrap(), Value::Bool(false));
        assert!(Expr::and_all(Vec::new()).is_none());
        // A single term folds to itself, no wrapping AND node.
        assert_eq!(
            Expr::and_all(vec![Expr::lit(7i64)]).unwrap(),
            Expr::lit(7i64)
        );
    }

    #[test]
    fn three_valued_and() {
        let null = Expr::lit(Value::Null);
        let t = Expr::lit(true);
        let fa = Expr::lit(false);
        assert_eq!(
            Expr::binary(BinOp::And, null.clone(), fa.clone())
                .eval(&[])
                .unwrap(),
            Value::Bool(false),
            "NULL AND FALSE = FALSE"
        );
        assert_eq!(
            Expr::binary(BinOp::And, null.clone(), t.clone())
                .eval(&[])
                .unwrap(),
            Value::Null,
            "NULL AND TRUE = NULL"
        );
        assert_eq!(
            Expr::binary(BinOp::Or, null.clone(), t).eval(&[]).unwrap(),
            Value::Bool(true),
            "NULL OR TRUE = TRUE"
        );
        assert_eq!(
            Expr::binary(BinOp::Or, null.clone(), fa).eval(&[]).unwrap(),
            Value::Null,
            "NULL OR FALSE = NULL"
        );
    }

    #[test]
    fn comparisons_propagate_null() {
        let e = Expr::binary(BinOp::Lt, Expr::lit(Value::Null), Expr::lit(1i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_forms() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(Value::Null)),
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(1i64)),
            negated: true,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        let e = Expr::InList {
            expr: Box::new(Expr::lit(2i64)),
            list: vec![Expr::lit(1i64), Expr::lit(2i64)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
        // 3 NOT IN (1, NULL) → NULL (unknown membership).
        let e = Expr::InList {
            expr: Box::new(Expr::lit(3i64)),
            list: vec![Expr::lit(1i64), Expr::lit(Value::Null)],
            negated: true,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn between_inclusive() {
        let e = Expr::Between {
            expr: Box::new(Expr::lit(10i64)),
            low: Box::new(Expr::lit(10i64)),
            high: Box::new(Expr::lit(20i64)),
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::col("value"),
            Expr::binary(BinOp::Mul, Expr::col("value"), Expr::col("sensor_id")),
        )
        .bind(&schema())
        .unwrap();
        assert_eq!(e.referenced_columns(), vec![0, 1]);
    }

    #[test]
    fn display_roundtrippable_shape() {
        let e = Expr::binary(BinOp::Gt, Expr::col("value"), Expr::lit(80.0));
        assert_eq!(e.to_string(), "(value > 80)");
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        let e = Expr::Aggregate {
            func: AggFunc::Count,
            args: vec![],
        };
        assert!(matches!(e.eval(&[]), Err(SqlError::Execution(_))));
    }
}
