//! Logical plans and the name binder.
//!
//! [`plan_select`] turns a parsed [`SelectStatement`] into a [`LogicalPlan`]
//! whose expressions are fully bound (positional column references), ready
//! for the [`crate::optimizer`] and [`crate::exec`] stages. Table-valued
//! functions in FROM are evaluated eagerly at planning time — SQL(+) uses
//! them for window materialization over archived stream batches, which is a
//! planning-time operation in the CQL execution model.

use std::sync::Arc;

use crate::error::SqlError;
use crate::expr::Expr;
use crate::functions::AggFunc;
use crate::parser::{Join as AstJoin, JoinType, Projection, SelectStatement, TableRef};
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Database, Table};

/// A bound logical plan node. Every node knows its output schema.
#[derive(Clone, Debug)]
pub enum LogicalPlan {
    /// Base-table scan with optional pushed filter and column projection.
    Scan {
        /// Catalog table name.
        table: String,
        /// Binding alias.
        alias: String,
        /// Output schema (post-projection).
        schema: Schema,
        /// Pushed-down predicate over the *full* table schema.
        filter: Option<Expr>,
        /// Kept column positions (None = all).
        projection: Option<Vec<usize>>,
    },
    /// An already-materialized relation (table-function output).
    Materialized {
        /// Display name.
        name: String,
        /// The data.
        table: Arc<Table>,
        /// Output schema (re-qualified by the alias).
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions with names.
        exprs: Vec<(Expr, String)>,
        /// Output schema.
        schema: Schema,
    },
    /// Join of two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// INNER or LEFT.
        join_type: JoinType,
        /// Equi-join pairs: (left expr, right expr), each bound against its
        /// own side's schema.
        equi: Vec<(Expr, Expr)>,
        /// Residual ON predicate over the concatenated schema.
        residual: Option<Expr>,
        /// Output schema = left ⊕ right.
        schema: Schema,
    },
    /// Grouped aggregation; output = group keys then aggregate results.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-key expressions over the input schema.
        group_exprs: Vec<Expr>,
        /// Aggregates: function + bound argument expressions.
        aggregates: Vec<(AggFunc, Vec<Expr>)>,
        /// Output schema.
        schema: Schema,
    },
    /// Sort by keys (expr, desc).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: usize,
    },
    /// UNION ALL of schema-compatible inputs.
    Union {
        /// The branches.
        inputs: Vec<LogicalPlan>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Materialized { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Union { inputs } => inputs[0].schema(),
        }
    }

    /// Counts nodes, for plan-shape assertions in tests and benches.
    pub fn node_count(&self) -> usize {
        1 + match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Materialized { .. } => 0,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.node_count(),
            LogicalPlan::Aggregate { input, .. } => input.node_count(),
            LogicalPlan::Join { left, right, .. } => left.node_count() + right.node_count(),
            LogicalPlan::Union { inputs } => inputs.iter().map(|p| p.node_count()).sum(),
        }
    }

    /// Pretty multi-line plan rendering (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                alias,
                filter,
                projection,
                ..
            } => {
                out.push_str(&format!("{pad}Scan {table} AS {alias}"));
                if let Some(f) = filter {
                    out.push_str(&format!(" [filter: {f}]"));
                }
                if let Some(p) = projection {
                    out.push_str(&format!(" [cols: {p:?}]"));
                }
                out.push('\n');
            }
            LogicalPlan::Materialized { name, table, .. } => {
                out.push_str(&format!(
                    "{pad}Materialized {name} ({} rows)\n",
                    table.len()
                ));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                equi,
                residual,
                ..
            } => {
                let kind = match join_type {
                    JoinType::Inner => "InnerJoin",
                    JoinType::Left => "LeftJoin",
                };
                let keys: Vec<String> = equi.iter().map(|(l, r)| format!("{l}={r}")).collect();
                out.push_str(&format!("{pad}{kind} on [{}]", keys.join(", ")));
                if let Some(r) = residual {
                    out.push_str(&format!(" residual: {r}"));
                }
                out.push('\n');
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
                ..
            } => {
                let groups: Vec<String> = group_exprs.iter().map(|e| e.to_string()).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|(f, args)| {
                        let a: Vec<String> = args.iter().map(|e| e.to_string()).collect();
                        format!("{f}({})", a.join(", "))
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate groups=[{}] aggs=[{}]\n",
                    groups.join(", "),
                    aggs.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, d)| format!("{e}{}", if *d { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort {}\n", ks.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Union { inputs } => {
                out.push_str(&format!("{pad}UnionAll ({} branches)\n", inputs.len()));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Plans (binds) a parsed statement against the catalog.
pub fn plan_select(stmt: &SelectStatement, db: &Database) -> Result<LogicalPlan, SqlError> {
    let mut plan = plan_single(stmt, db)?;
    // UNION ALL chain.
    if stmt.union_all.is_some() {
        let mut branches = vec![plan];
        let mut cur = &stmt.union_all;
        while let Some(next) = cur {
            let branch = plan_single(next, db)?;
            if branch.schema().len() != branches[0].schema().len() {
                return Err(SqlError::Binding(format!(
                    "UNION ALL arity mismatch: {} vs {}",
                    branches[0].schema().len(),
                    branch.schema().len()
                )));
            }
            branches.push(branch);
            cur = &next.union_all;
        }
        plan = LogicalPlan::Union { inputs: branches };
    }
    Ok(plan)
}

fn plan_single(stmt: &SelectStatement, db: &Database) -> Result<LogicalPlan, SqlError> {
    // FROM + JOINs.
    let mut plan = plan_table_ref(&stmt.from, db)?;
    for AstJoin {
        join_type,
        table,
        on,
    } in &stmt.joins
    {
        let right = plan_table_ref(table, db)?;
        plan = build_join(plan, right, *join_type, on)?;
    }

    // WHERE.
    if let Some(w) = &stmt.where_clause {
        if w.contains_aggregate() {
            return Err(SqlError::Binding(
                "aggregates are not allowed in WHERE".into(),
            ));
        }
        let predicate = w.bind(plan.schema())?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // Aggregation?
    let has_aggs = stmt.projections.iter().any(|p| match p {
        Projection::Expr { expr, .. } => expr.contains_aggregate(),
        Projection::Star => false,
    }) || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());

    let (mut plan, projections): (LogicalPlan, Vec<(Expr, String)>) =
        if !stmt.group_by.is_empty() || has_aggs {
            plan_aggregate(stmt, plan)?
        } else {
            if stmt.having.is_some() {
                return Err(SqlError::Binding(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            let mut out = Vec::new();
            for p in &stmt.projections {
                match p {
                    Projection::Star => {
                        for (i, name) in plan.schema().header().into_iter().enumerate() {
                            let short = name.rsplit('.').next().unwrap_or(&name).to_string();
                            out.push((Expr::ColumnIdx { index: i, name }, short));
                        }
                    }
                    Projection::Expr { expr, alias } => {
                        let bound = expr.bind(plan.schema())?;
                        let name = alias.clone().unwrap_or_else(|| expr.default_name());
                        out.push((bound, name));
                    }
                }
            }
            (plan, out)
        };

    // ORDER BY keys resolve against the projection output when possible;
    // otherwise against the pre-projection input (standard SQL permits
    // `SELECT value FROM m ORDER BY ts`), in which case the sort runs
    // below the projection.
    let mut sort_below: Option<Vec<(Expr, bool)>> = None;
    let mut sort_above: Option<Vec<(Expr, bool)>> = None;
    if !stmt.order_by.is_empty() {
        let out_schema = Schema::new(
            projections
                .iter()
                .map(|(_, name)| Column::new(name.clone(), ColumnType::Any))
                .collect(),
        );
        let above: Result<Vec<_>, SqlError> = stmt
            .order_by
            .iter()
            .map(|(e, desc)| Ok((e.bind(&out_schema)?, *desc)))
            .collect();
        match above {
            Ok(keys) => sort_above = Some(keys),
            Err(_) => {
                let below = stmt
                    .order_by
                    .iter()
                    .map(|(e, desc)| Ok((e.bind(plan.schema())?, *desc)))
                    .collect::<Result<Vec<_>, SqlError>>()?;
                sort_below = Some(below);
            }
        }
    }
    if let Some(keys) = sort_below {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    // Final projection node.
    let schema = Schema::new(
        projections
            .iter()
            .map(|(_, name)| Column::new(name.clone(), ColumnType::Any))
            .collect(),
    );
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: projections,
        schema,
    };

    if stmt.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }

    if let Some(keys) = sort_above {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

fn plan_table_ref(table_ref: &TableRef, db: &Database) -> Result<LogicalPlan, SqlError> {
    match table_ref {
        TableRef::Named { name, alias } => {
            let table = db.table(name)?;
            let schema = table.schema.with_qualifier(alias);
            Ok(LogicalPlan::Scan {
                table: name.clone(),
                alias: alias.clone(),
                schema,
                filter: None,
                projection: None,
            })
        }
        TableRef::Subquery { query, alias } => {
            let inner = plan_select(query, db)?;
            let schema = inner.schema().with_qualifier(alias);
            // Re-qualification is a schema-only change: wrap in a Project
            // that renames (identity expressions).
            let exprs: Vec<(Expr, String)> = inner
                .schema()
                .columns()
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    (
                        Expr::ColumnIdx {
                            index: i,
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    )
                })
                .collect();
            Ok(LogicalPlan::Project {
                input: Box::new(inner),
                exprs,
                schema,
            })
        }
        TableRef::Function { name, args, alias } => {
            let f = db
                .table_function(name)
                .ok_or_else(|| SqlError::Binding(format!("unknown table function {name}")))?
                .clone();
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                // Arguments must be constant at planning time.
                let bound = a.bind(&Schema::new(vec![])).map_err(|_| {
                    SqlError::Binding(format!("table function {name} arguments must be constants"))
                })?;
                values.push(bound.eval(&[])?);
            }
            let table = f(&values, db)?;
            let schema = table.schema.with_qualifier(alias);
            Ok(LogicalPlan::Materialized {
                name: name.clone(),
                table: Arc::new(table),
                schema,
            })
        }
    }
}

/// Splits an ON condition into equi-join pairs and a residual, binding each
/// piece appropriately.
fn build_join(
    left: LogicalPlan,
    right: LogicalPlan,
    join_type: JoinType,
    on: &Expr,
) -> Result<LogicalPlan, SqlError> {
    let joint = left.schema().join(right.schema());
    let left_len = left.schema().len();
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for conjunct in split_conjuncts(on) {
        if let Expr::Binary {
            op: crate::expr::BinOp::Eq,
            left: l,
            right: r,
        } = &conjunct
        {
            // Try binding each side exclusively to one input.
            let ll = l.bind(left.schema());
            let lr = l.bind(right.schema());
            let rl = r.bind(left.schema());
            let rr = r.bind(right.schema());
            match (ll, rr, lr, rl) {
                (Ok(lb), Ok(rb), _, _) => {
                    equi.push((lb, rb));
                    continue;
                }
                (_, _, Ok(rb), Ok(lb)) => {
                    equi.push((lb, rb));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(conjunct.bind(&joint)?);
    }
    let residual = Expr::and_all(residual);
    let _ = left_len;
    Ok(LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        join_type,
        equi,
        residual,
        schema: joint,
    })
}

/// Flattens nested ANDs into a conjunct list.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            op: crate::expr::BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Builds the Aggregate node and the post-aggregation projection list.
fn plan_aggregate(
    stmt: &SelectStatement,
    input: LogicalPlan,
) -> Result<(LogicalPlan, Vec<(Expr, String)>), SqlError> {
    let input_schema = input.schema().clone();

    // Collect distinct aggregate calls from projections and HAVING.
    let mut agg_calls: Vec<Expr> = Vec::new();
    let mut collect = |e: &Expr| {
        e.walk(&mut |n| {
            if matches!(n, Expr::Aggregate { .. }) && !agg_calls.contains(n) {
                agg_calls.push(n.clone());
            }
        });
    };
    for p in &stmt.projections {
        if let Projection::Expr { expr, .. } = p {
            collect(expr);
        }
    }
    if let Some(h) = &stmt.having {
        collect(h);
    }

    // Bind group keys and aggregate arguments over the input.
    let group_bound = stmt
        .group_by
        .iter()
        .map(|e| e.bind(&input_schema))
        .collect::<Result<Vec<_>, _>>()?;
    let aggregates = agg_calls
        .iter()
        .map(|call| {
            let Expr::Aggregate { func, args } = call else {
                unreachable!()
            };
            let bound_args = args
                .iter()
                .map(|a| a.bind(&input_schema))
                .collect::<Result<Vec<_>, _>>()?;
            Ok((*func, bound_args))
        })
        .collect::<Result<Vec<_>, SqlError>>()?;

    // Aggregate output schema: group keys then aggregate slots.
    let mut columns = Vec::new();
    for (i, g) in stmt.group_by.iter().enumerate() {
        let name = g.default_name();
        columns.push(Column::new(
            if name.is_empty() {
                format!("g{i}")
            } else {
                name
            },
            ColumnType::Any,
        ));
    }
    for (j, call) in agg_calls.iter().enumerate() {
        let _ = call;
        columns.push(Column::new(format!("agg{j}"), ColumnType::Any));
    }
    let agg_schema = Schema::new(columns);

    let plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group_exprs: group_bound,
        aggregates,
        schema: agg_schema.clone(),
    };

    // Rewrites a post-aggregation expression: group-by subtrees and aggregate
    // calls become positional references into the aggregate output.
    let group_len = stmt.group_by.len();
    fn rewrite_post_agg(
        e: &Expr,
        group_by: &[Expr],
        agg_calls: &[Expr],
        group_len: usize,
    ) -> Result<Expr, SqlError> {
        if let Some(i) = group_by.iter().position(|g| g == e) {
            return Ok(Expr::ColumnIdx {
                index: i,
                name: e.default_name(),
            });
        }
        if let Some(j) = agg_calls.iter().position(|a| a == e) {
            return Ok(Expr::ColumnIdx {
                index: group_len + j,
                name: format!("agg{j}"),
            });
        }
        match e {
            Expr::Column(name) => Err(SqlError::Binding(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            ))),
            Expr::Literal(_) | Expr::ColumnIdx { .. } => Ok(e.clone()),
            Expr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(rewrite_post_agg(expr, group_by, agg_calls, group_len)?),
            }),
            Expr::Binary { op, left, right } => Ok(Expr::Binary {
                op: *op,
                left: Box::new(rewrite_post_agg(left, group_by, agg_calls, group_len)?),
                right: Box::new(rewrite_post_agg(right, group_by, agg_calls, group_len)?),
            }),
            Expr::Function { name, args } => Ok(Expr::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| rewrite_post_agg(a, group_by, agg_calls, group_len))
                    .collect::<Result<_, _>>()?,
            }),
            Expr::Aggregate { .. } => Err(SqlError::Binding(
                "nested aggregates are not supported".into(),
            )),
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(rewrite_post_agg(expr, group_by, agg_calls, group_len)?),
                negated: *negated,
            }),
            Expr::InSet { expr, set } => Ok(Expr::InSet {
                expr: Box::new(rewrite_post_agg(expr, group_by, agg_calls, group_len)?),
                set: std::sync::Arc::clone(set),
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(Expr::InList {
                expr: Box::new(rewrite_post_agg(expr, group_by, agg_calls, group_len)?),
                list: list
                    .iter()
                    .map(|a| rewrite_post_agg(a, group_by, agg_calls, group_len))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            }),
            Expr::Between { expr, low, high } => Ok(Expr::Between {
                expr: Box::new(rewrite_post_agg(expr, group_by, agg_calls, group_len)?),
                low: Box::new(rewrite_post_agg(low, group_by, agg_calls, group_len)?),
                high: Box::new(rewrite_post_agg(high, group_by, agg_calls, group_len)?),
            }),
        }
    }

    let mut plan = plan;
    if let Some(h) = &stmt.having {
        let predicate = rewrite_post_agg(h, &stmt.group_by, &agg_calls, group_len)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    let mut projections = Vec::new();
    for p in &stmt.projections {
        match p {
            Projection::Star => {
                return Err(SqlError::Binding(
                    "SELECT * is not valid with GROUP BY".into(),
                ))
            }
            Projection::Expr { expr, alias } => {
                let rewritten = rewrite_post_agg(expr, &stmt.group_by, &agg_calls, group_len)?;
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                projections.push((rewritten, name));
            }
        }
    }
    Ok((plan, projections))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::table::table_of;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "m",
            table_of(
                "m",
                &[
                    ("sensor_id", ColumnType::Int),
                    ("ts", ColumnType::Timestamp),
                    ("value", ColumnType::Float),
                ],
                vec![
                    vec![Value::Int(1), Value::Timestamp(0), Value::Float(70.0)],
                    vec![Value::Int(1), Value::Timestamp(1000), Value::Float(75.0)],
                    vec![Value::Int(2), Value::Timestamp(0), Value::Float(60.0)],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[("id", ColumnType::Int), ("name", ColumnType::Text)],
                vec![
                    vec![Value::Int(1), Value::text("inlet")],
                    vec![Value::Int(2), Value::text("outlet")],
                ],
            )
            .unwrap(),
        );
        db
    }

    fn plan(sql: &str) -> LogicalPlan {
        plan_select(&parse_select(sql).unwrap(), &db()).unwrap()
    }

    #[test]
    fn star_projects_all() {
        let p = plan("SELECT * FROM m");
        assert_eq!(p.schema().len(), 3);
    }

    #[test]
    fn where_binds() {
        let p = plan("SELECT value FROM m WHERE sensor_id = 1");
        assert!(p.explain().contains("Filter"));
    }

    #[test]
    fn join_splits_equi_keys() {
        let p = plan("SELECT name FROM m JOIN sensors s ON m.sensor_id = s.id");
        let ex = p.explain();
        assert!(ex.contains("InnerJoin"), "{ex}");
        assert!(
            ex.contains("m.sensor_id=s.id") || ex.contains("sensor_id=id"),
            "{ex}"
        );
    }

    #[test]
    fn aggregate_schema_and_having() {
        let p = plan(
            "SELECT sensor_id, AVG(value) AS a FROM m GROUP BY sensor_id HAVING AVG(value) > 60",
        );
        let ex = p.explain();
        assert!(ex.contains("Aggregate"), "{ex}");
        assert!(ex.contains("Filter"), "having became a filter: {ex}");
        assert_eq!(p.schema().header(), vec!["sensor_id", "a"]);
    }

    #[test]
    fn global_aggregate_without_group() {
        let p = plan("SELECT COUNT(*) FROM m");
        assert!(p.explain().contains("Aggregate"));
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = plan_select(
            &parse_select("SELECT value, COUNT(*) FROM m GROUP BY sensor_id").unwrap(),
            &db(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Binding(_)));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let err = plan_select(
            &parse_select("SELECT sensor_id FROM m WHERE COUNT(*) > 1").unwrap(),
            &db(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Binding(_)));
    }

    #[test]
    fn union_arity_checked() {
        let err = plan_select(
            &parse_select("SELECT sensor_id FROM m UNION ALL SELECT sensor_id, value FROM m")
                .unwrap(),
            &db(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Binding(_)));
    }

    #[test]
    fn subquery_planned() {
        let p = plan("SELECT v FROM (SELECT value AS v FROM m) sub WHERE v > 60");
        assert!(p.explain().contains("Project"));
    }

    #[test]
    fn unknown_table_function_rejected() {
        let err = plan_select(
            &parse_select("SELECT * FROM nosuchfn(1) AS w").unwrap(),
            &db(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Binding(_)));
    }
}
