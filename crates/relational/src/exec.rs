//! Volcano-style materializing executor.
//!
//! Every node materializes its output rows. Joins with equi-keys run as hash
//! joins (build on the smaller side for inner joins); other joins fall back
//! to nested loops. Aggregation is hash-grouped. This is deliberately simple
//! and allocation-conscious rather than vectorized — the distribution layer
//! in `optique-exastream` provides the parallelism the paper's numbers come
//! from.

use std::collections::HashMap;

use crate::error::SqlError;
use crate::expr::Expr;
use crate::functions::AggState;
use crate::parser::JoinType;
use crate::plan::LogicalPlan;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::{Database, Table};
use crate::value::Value;

/// Executes a bound (optionally optimized) logical plan.
pub fn execute(plan: &LogicalPlan, db: &Database) -> Result<Table, SqlError> {
    let rows = run(plan, db)?;
    Ok(Table {
        schema: plan.schema().clone(),
        rows,
    })
}

/// Convenience: parse, plan, optimize, execute.
pub fn query(sql: &str, db: &Database) -> Result<Table, SqlError> {
    let stmt = crate::parser::parse_select(sql)?;
    let plan = crate::plan::plan_select(&stmt, db)?;
    let plan = crate::optimizer::optimize(plan);
    execute(&plan, db)
}

fn run(plan: &LogicalPlan, db: &Database) -> Result<Vec<Vec<Value>>, SqlError> {
    match plan {
        LogicalPlan::Scan {
            table,
            filter,
            projection,
            ..
        } => {
            let t = db.table(table)?;
            let mut out = Vec::new();
            // Base rows first, then the novelty overlay's appended rows —
            // the same order a merged table would scan in, so overlay and
            // post-merge answers are row-for-row identical.
            for row in t.rows.iter().chain(db.novelty_rows(table)) {
                if let Some(f) = filter {
                    if !f.eval(row)?.is_truthy() {
                        continue;
                    }
                }
                match projection {
                    Some(cols) => out.push(cols.iter().map(|&c| row[c].clone()).collect()),
                    None => out.push(row.clone()),
                }
            }
            Ok(out)
        }
        LogicalPlan::Materialized { table, .. } => Ok(table.rows.clone()),
        LogicalPlan::Filter { input, predicate } => {
            let rows = run(input, db)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if predicate.eval(&row)?.is_truthy() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = run(input, db)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(e.eval(&row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
            ..
        } => exec_join(left, right, *join_type, equi, residual.as_ref(), db),
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            let rows = run(input, db)?;
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            // Preserve first-seen group order for deterministic output.
            let mut order: Vec<Vec<Value>> = Vec::new();
            for row in &rows {
                let mut key = Vec::with_capacity(group_exprs.len());
                for g in group_exprs {
                    key.push(g.eval(row)?);
                }
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups.entry(key.clone()).or_insert_with(|| {
                            aggregates.iter().map(|(f, _)| f.new_state()).collect()
                        })
                    }
                };
                for ((_, args), state) in aggregates.iter().zip(states.iter_mut()) {
                    let mut values = Vec::with_capacity(args.len());
                    for a in args {
                        values.push(a.eval(row)?);
                    }
                    state.update(&values)?;
                }
            }
            // Global aggregate over empty input still yields one row.
            if groups.is_empty() && group_exprs.is_empty() {
                let states: Vec<AggState> = aggregates.iter().map(|(f, _)| f.new_state()).collect();
                let row: Vec<Value> = states.iter().map(AggState::finish).collect();
                return Ok(vec![row]);
            }
            let mut out = Vec::with_capacity(order.len());
            for key in order {
                let states = &groups[&key];
                let mut row = key.clone();
                row.extend(states.iter().map(AggState::finish));
                out.push(row);
            }
            Ok(out)
        }
        LogicalPlan::Sort { input, keys } => {
            let mut rows = run(input, db)?;
            // Pre-compute key tuples to avoid re-evaluating during comparison.
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
            for row in rows.drain(..) {
                let mut k = Vec::with_capacity(keys.len());
                for (e, _) in keys {
                    k.push(e.eval(&row)?);
                }
                keyed.push((k, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, row)| row).collect())
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = run(input, db)?;
            rows.truncate(*n);
            Ok(rows)
        }
        LogicalPlan::Union { inputs } => {
            let mut out = Vec::new();
            for branch in inputs {
                out.extend(run(branch, db)?);
            }
            Ok(out)
        }
        LogicalPlan::Distinct { input } => {
            let rows = run(input, db)?;
            let mut seen = std::collections::BTreeSet::new();
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

fn exec_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    join_type: JoinType,
    equi: &[(Expr, Expr)],
    residual: Option<&Expr>,
    db: &Database,
) -> Result<Vec<Vec<Value>>, SqlError> {
    let left_rows = run(left, db)?;
    let right_rows = run(right, db)?;
    let right_width = right.schema().len();

    if equi.is_empty() {
        // Nested loop join.
        let mut out = Vec::new();
        for l in &left_rows {
            let mut matched = false;
            for r in &right_rows {
                let mut joined = l.clone();
                joined.extend(r.iter().cloned());
                let pass = match residual {
                    Some(p) => p.eval(&joined)?.is_truthy(),
                    None => true,
                };
                if pass {
                    matched = true;
                    out.push(joined);
                }
            }
            if !matched && join_type == JoinType::Left {
                let mut padded = l.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(padded);
            }
        }
        return Ok(out);
    }

    // Hash join: build on the right side (for LEFT joins the right side must
    // be the build side anyway to preserve left rows). Keys are extracted
    // **column-at-a-time** — one pass per equi term over each batch — so the
    // probe loop works on contiguous key vectors; with interned text, each
    // hash/equality is an O(1) dictionary-id operation, never a string walk.
    let right_keys = key_columns(&right_rows, equi.iter().map(|(_, r)| r))?;
    let left_keys = key_columns(&left_rows, equi.iter().map(|(l, _)| l))?;

    let mut out = Vec::new();
    let emit =
        |l: &Vec<Value>, ids: &[usize], out: &mut Vec<Vec<Value>>| -> Result<bool, SqlError> {
            let mut matched = false;
            for &i in ids {
                let mut joined = l.clone();
                joined.extend(right_rows[i].iter().cloned());
                let pass = match residual {
                    Some(p) => p.eval(&joined)?.is_truthy(),
                    None => true,
                };
                if pass {
                    matched = true;
                    out.push(joined);
                }
            }
            Ok(matched)
        };

    if equi.len() == 1 {
        // Single-key fast path (the dominant shape for unfolded OBDA
        // joins): scalar keys, no per-row key-tuple allocation.
        let rkeys = &right_keys[0];
        let mut build: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(right_rows.len());
        for (i, key) in rkeys.iter().enumerate() {
            if !key.is_null() {
                build.entry(key).or_default().push(i);
            }
        }
        for (l, key) in left_rows.iter().zip(&left_keys[0]) {
            let mut matched = false;
            if !key.is_null() {
                if let Some(ids) = build.get(key) {
                    matched = emit(l, ids, &mut out)?;
                }
            }
            if !matched && join_type == JoinType::Left {
                let mut padded = l.clone();
                padded.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(padded);
            }
        }
        return Ok(out);
    }

    let key_at = |cols: &[Vec<Value>], i: usize| -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(cols.len());
        for col in cols {
            if col[i].is_null() {
                return None;
            }
            key.push(col[i].clone());
        }
        Some(key)
    };
    let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    for i in 0..right_rows.len() {
        if let Some(key) = key_at(&right_keys, i) {
            build.entry(key).or_default().push(i);
        }
    }
    for (i, l) in left_rows.iter().enumerate() {
        let mut matched = false;
        if let Some(key) = key_at(&left_keys, i) {
            if let Some(ids) = build.get(&key) {
                matched = emit(l, ids, &mut out)?;
            }
        }
        if !matched && join_type == JoinType::Left {
            let mut padded = l.clone();
            padded.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(padded);
        }
    }
    Ok(out)
}

/// Evaluates each key expression over the whole batch, yielding one
/// contiguous key column per expression (NULLs stay in place; the join
/// loops skip them).
fn key_columns<'a>(
    rows: &[Vec<Value>],
    exprs: impl Iterator<Item = &'a Expr>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    exprs
        .map(|e| rows.iter().map(|row| e.eval(row)).collect())
        .collect()
}

/// Builds a one-column table — handy in tests and benches.
pub fn column_table(name: &str, column: &str, ty: ColumnType, values: Vec<Value>) -> Table {
    let schema = Schema::qualified(name, vec![Column::new(column, ty)]);
    Table {
        schema,
        rows: values.into_iter().map(|v| vec![v]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of;

    fn db() -> Database {
        let mut db = Database::new();
        db.put_table(
            "m",
            table_of(
                "m",
                &[
                    ("sensor_id", ColumnType::Int),
                    ("ts", ColumnType::Timestamp),
                    ("value", ColumnType::Float),
                ],
                vec![
                    vec![Value::Int(1), Value::Timestamp(0), Value::Float(70.0)],
                    vec![Value::Int(1), Value::Timestamp(1000), Value::Float(75.0)],
                    vec![Value::Int(1), Value::Timestamp(2000), Value::Float(80.0)],
                    vec![Value::Int(2), Value::Timestamp(0), Value::Float(60.0)],
                    vec![Value::Int(2), Value::Timestamp(1000), Value::Float(58.0)],
                    vec![Value::Int(3), Value::Timestamp(0), Value::Null],
                ],
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[
                    ("id", ColumnType::Int),
                    ("name", ColumnType::Text),
                    ("assembly", ColumnType::Text),
                ],
                vec![
                    vec![Value::Int(1), Value::text("inlet"), Value::text("burner")],
                    vec![Value::Int(2), Value::text("outlet"), Value::text("burner")],
                    vec![Value::Int(9), Value::text("spare"), Value::text("none")],
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn select_where() {
        let t = query(
            "SELECT value FROM m WHERE sensor_id = 1 AND value >= 75",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn projection_expressions() {
        let t = query(
            "SELECT value * 2 AS double FROM m WHERE sensor_id = 2 ORDER BY double",
            &db(),
        )
        .unwrap();
        assert_eq!(t.rows[0][0], Value::Float(116.0));
        assert_eq!(t.schema.header(), vec!["double"]);
    }

    #[test]
    fn inner_join_matches() {
        let t = query(
            "SELECT s.name, m.value FROM m JOIN sensors s ON m.sensor_id = s.id WHERE m.ts = 0",
            &db(),
        )
        .unwrap();
        assert_eq!(
            t.len(),
            2,
            "sensor 3 has no match; sensor 9 has no measurements"
        );
    }

    #[test]
    fn left_join_pads() {
        let t = query(
            "SELECT s.id, m.value FROM sensors s LEFT JOIN m ON m.sensor_id = s.id AND m.ts = 0",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        let spare = t.rows.iter().find(|r| r[0] == Value::Int(9)).unwrap();
        assert!(spare[1].is_null());
    }

    #[test]
    fn join_on_null_never_matches() {
        let mut db = db();
        db.put_table(
            "n",
            table_of(
                "n",
                &[("k", ColumnType::Int)],
                vec![vec![Value::Null], vec![Value::Int(1)]],
            )
            .unwrap(),
        );
        let t = query("SELECT m.value FROM n JOIN m ON n.k = m.sensor_id", &db).unwrap();
        assert_eq!(t.len(), 3, "only k=1 matches its three measurements");
    }

    #[test]
    fn group_by_aggregates() {
        let t = query(
            "SELECT sensor_id, COUNT(*) AS n, AVG(value) AS a FROM m GROUP BY sensor_id ORDER BY sensor_id",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.rows[0],
            vec![Value::Int(1), Value::Int(3), Value::Float(75.0)]
        );
        // Sensor 3's AVG over a single NULL is NULL.
        assert_eq!(t.rows[2][2], Value::Null);
    }

    #[test]
    fn having_filters_groups() {
        let t = query(
            "SELECT sensor_id FROM m GROUP BY sensor_id HAVING AVG(value) > 70",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0][0], Value::Int(1));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let t = query("SELECT COUNT(*) AS n FROM m WHERE value > 1000", &db()).unwrap();
        assert_eq!(t.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn arithmetic_on_aggregates() {
        let t = query(
            "SELECT sensor_id, MAX(value) - MIN(value) AS spread FROM m GROUP BY sensor_id ORDER BY sensor_id",
            &db(),
        )
        .unwrap();
        assert_eq!(t.rows[0][1], Value::Float(10.0));
    }

    #[test]
    fn corr_via_self_join() {
        // Correlation of sensor 1 vs sensor 2 values at matching timestamps.
        let t = query(
            "SELECT CORR(a.value, b.value) AS c FROM m a JOIN m b ON a.ts = b.ts \
             WHERE a.sensor_id = 1 AND b.sensor_id = 2",
            &db(),
        )
        .unwrap();
        let Value::Float(c) = t.rows[0][0] else {
            panic!("got {:?}", t.rows[0][0])
        };
        // Sensor1 rises (70,75) while sensor2 falls (60,58): perfect anticorrelation.
        assert!((c + 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_all_concatenates() {
        let t = query(
            "SELECT value FROM m WHERE sensor_id = 1 UNION ALL SELECT value FROM m WHERE sensor_id = 2",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn distinct_dedups() {
        let t = query("SELECT DISTINCT sensor_id FROM m", &db()).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn order_desc_and_limit() {
        let t = query(
            "SELECT value FROM m WHERE value IS NOT NULL ORDER BY value DESC LIMIT 2",
            &db(),
        )
        .unwrap();
        assert_eq!(t.rows[0][0], Value::Float(80.0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn subquery_pipeline() {
        let t = query(
            "SELECT a FROM (SELECT AVG(value) AS a, sensor_id FROM m GROUP BY sensor_id) x \
             WHERE x.sensor_id = 2",
            &db(),
        )
        .unwrap();
        assert_eq!(t.rows[0][0], Value::Float(59.0));
    }

    #[test]
    fn table_function_executes() {
        let mut db = db();
        db.register_table_function(
            "constant_table",
            std::sync::Arc::new(|args, _db| {
                let n = args[0].as_i64().unwrap_or(0);
                Ok(column_table(
                    "c",
                    "x",
                    ColumnType::Int,
                    (0..n).map(Value::Int).collect(),
                ))
            }),
        );
        let t = query("SELECT x FROM constant_table(4) AS c WHERE x > 0", &db).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn scalar_functions_in_queries() {
        let t = query("SELECT UPPER(name) AS u FROM sensors ORDER BY u", &db()).unwrap();
        assert_eq!(t.rows[0][0], Value::text("INLET"));
    }

    #[test]
    fn nested_loop_join_with_inequality() {
        let t = query(
            "SELECT a.value FROM m a JOIN m b ON a.value < b.value WHERE a.sensor_id = 2 AND b.sensor_id = 2",
            &db(),
        )
        .unwrap();
        assert_eq!(t.len(), 1, "58 < 60 only");
    }

    #[test]
    fn optimized_equals_unoptimized() {
        let sql = "SELECT s.name, AVG(m.value) AS a FROM m JOIN sensors s ON m.sensor_id = s.id \
                   WHERE m.ts >= 0 GROUP BY s.name HAVING COUNT(*) > 1 ORDER BY a DESC";
        let stmt = crate::parser::parse_select(sql).unwrap();
        let raw = crate::plan::plan_select(&stmt, &db()).unwrap();
        let unopt = execute(&raw, &db()).unwrap();
        let opt = execute(&crate::optimizer::optimize(raw.clone()), &db()).unwrap();
        assert_eq!(unopt.rows, opt.rows);
    }
}
