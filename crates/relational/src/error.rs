//! Engine-wide error type.

use std::fmt;

/// Errors produced by parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical or grammatical error, with byte offset context.
    Parse {
        /// Description of the problem.
        message: String,
        /// Byte offset in the input where it was detected.
        offset: usize,
    },
    /// Name resolution failed (unknown table/column/function, ambiguity).
    Binding(String),
    /// A type rule was violated while evaluating an expression.
    Type(String),
    /// Runtime execution failure (bad arguments, exhausted resources…).
    Execution(String),
    /// Integer arithmetic left the i64 range. Checked everywhere — scalar
    /// `+`/`-`/`*`/`/`/`%`, `SUM`, and distributed partial-merge — so a
    /// query overflows identically on one node and on a federation instead
    /// of silently wrapping on whichever path it took.
    Overflow(String),
    /// Referenced catalog object is missing.
    UnknownTable(String),
}

impl SqlError {
    /// Shorthand for a parse error.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        SqlError::Parse {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::Binding(m) => write!(f, "binding error: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::Overflow(m) => write!(f, "integer overflow: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table: {t}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SqlError::parse("unexpected ')'", 17);
        assert!(e.to_string().contains("byte 17"));
        assert!(SqlError::UnknownTable("t".into()).to_string().contains("t"));
    }
}
