//! Distributed-vs-single-node answer equivalence: partitioned execution on
//! the simulated cluster must return exactly the answers of one node.

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::exchange::{merge_partial_aggregates, MergeOp};
use optique_relational::{Database, Value};
use optique_siemens::{FleetConfig, StreamConfig};

fn single_node_db() -> Database {
    let mut db = Database::new();
    let sensors = optique_siemens::fleet::build_fleet(&mut db, &FleetConfig::small()).unwrap();
    optique_siemens::streamgen::build_stream(&mut db, &StreamConfig::small(sensors)).unwrap();
    optique_stream::register_stream_functions(&mut db);
    db
}

fn cluster_of(db: &Database, workers: usize) -> Cluster {
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let shards = hash_partition(&stream, 1, workers);
    Cluster::provision(workers, |id| {
        let mut wdb = Database::new();
        wdb.put_table("S_Msmt", shards[id].clone());
        optique_stream::register_stream_functions(&mut wdb);
        wdb
    })
}

/// Shard-local per-sensor aggregates merged globally must equal the
/// single-node result.
#[test]
fn per_sensor_aggregates_match() {
    let db = single_node_db();
    let sql = "SELECT sensor_id, COUNT(*) AS n, MAX(value) AS mx FROM S_Msmt GROUP BY sensor_id";
    let single = optique_relational::exec::query(sql, &db).unwrap();

    for workers in [2usize, 4, 8] {
        let cluster = cluster_of(&db, workers);
        let partials = cluster.parallel_query(sql).unwrap();
        let merged = merge_partial_aggregates(partials, 1, &[MergeOp::Sum, MergeOp::Max]).unwrap();

        let canon = |t: &optique_relational::Table| {
            let mut rows = t.rows.clone();
            rows.sort();
            rows
        };
        assert_eq!(canon(&single), canon(&merged), "workers={workers}");
    }
}

/// Global (non-grouped) counts distribute as sums.
#[test]
fn global_count_matches() {
    let db = single_node_db();
    let sql = "SELECT COUNT(*) AS n FROM S_Msmt WHERE value >= 60";
    let single = optique_relational::exec::query(sql, &db).unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let cluster = cluster_of(&db, 4);
    let distributed: i64 = cluster
        .parallel_query(sql)
        .unwrap()
        .iter()
        .map(|t| t.rows[0][0].as_i64().unwrap())
        .sum();
    assert_eq!(single, distributed);
}

/// Windowed per-sensor aggregation is shard-local (the partition key is the
/// group key), so concatenation suffices — no combine step.
#[test]
fn windowed_per_sensor_results_match() {
    let db = single_node_db();
    let sql = "SELECT window_id, sensor_id, AVG(value) AS a FROM \
               timeslidingwindow('S_Msmt', 0, 10000, 5000, 600000, 0, 5) AS w \
               GROUP BY window_id, sensor_id";
    let single = optique_relational::exec::query(sql, &db).unwrap();
    let cluster = cluster_of(&db, 4);
    let parts = cluster.parallel_query(sql).unwrap();
    let mut combined: Vec<Vec<Value>> = parts.into_iter().flat_map(|t| t.rows).collect();
    let mut expected = single.rows.clone();
    combined.sort();
    expected.sort();
    assert_eq!(expected, combined);
}

/// Repartitioning by a different key keeps every row exactly once.
#[test]
fn repartition_conserves_rows() {
    let db = single_node_db();
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let total = stream.len();
    // Partition by timestamp instead of sensor.
    let buckets = optique_exastream::exchange::repartition(stream.rows, 0, 8);
    assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), total);
}
