//! Distributed query tracing, end to end: cross-worker span-tree
//! stitching at every worker count, the EXPLAIN ANALYZE rendering, the
//! dashboard's latency percentiles and slow-query log, streaming tick
//! spans, the metrics exporters — and the **tracing differential guard**:
//! a traced run must return exactly the untraced answer set, over the
//! shared fixed suite and the shared property-based query generator.

mod common;

use std::sync::OnceLock;

use common::{canon, proptest_cases, query_strategy, FIXED_QUERIES};
use optique::telemetry::{render_tree, Span, Tracer};
use optique::{Federation, FederationTopology, OptiquePlatform};
use optique_siemens::SiemensDeployment;
use optique_sparql::{parse_sparql, StaticPipeline};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A query whose enrichment fans out into several disjuncts, so every
/// worker count genuinely ships multiple fragments.
const FAN_OUT: &str = "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }";

fn platform() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| OptiquePlatform::from_siemens(SiemensDeployment::small()))
}

/// Runs `text` through a traced federated pipeline and returns the
/// stitched span tree.
fn traced_spans(text: &str, workers: usize) -> Vec<Span> {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    let stats = p.table_stats();
    let federation = Federation::for_deployment(
        p.db(),
        workers,
        FederationTopology::default(),
        &stats,
        &p.mappings,
        &[],
    );
    let tracer = Tracer::new();
    let query = parse_sparql(text, &p.namespaces).unwrap();
    let db = p.db();
    let pipeline = StaticPipeline::new(&p.ontology, &p.mappings, &db)
        .with_executor(&federation)
        .with_tracer(&tracer, None);
    pipeline.answer(&query).unwrap();
    tracer.spans()
}

// ---- cross-worker span-tree stitching ----------------------------------

/// At 1, 2, 4 and 8 workers the worker-side records graft into the
/// coordinator's tree: every `fragment` span hangs under a `worker` span,
/// every `worker` span hangs under the coordinator's `exec` span, and the
/// per-fragment attributes (worker id, rows, wire bytes) survive the wire.
#[test]
fn worker_spans_stitch_under_exec_at_every_worker_count() {
    for workers in WORKER_COUNTS {
        let spans = traced_spans(FAN_OUT, workers);
        let find = |id| spans.iter().find(|s: &&Span| s.id == id).unwrap();

        let exec_ids: Vec<_> = spans
            .iter()
            .filter(|s| s.label == "exec")
            .map(|s| s.id)
            .collect();
        assert!(!exec_ids.is_empty(), "{workers} workers: no exec span");

        let worker_spans: Vec<&Span> = spans.iter().filter(|s| s.label == "worker").collect();
        let fragment_spans: Vec<&Span> = spans.iter().filter(|s| s.label == "fragment").collect();
        assert!(
            !worker_spans.is_empty() && !fragment_spans.is_empty(),
            "{workers} workers: worker/fragment spans missing"
        );
        assert!(
            worker_spans.len() <= workers,
            "{workers} workers but {} worker spans",
            worker_spans.len()
        );

        for w in &worker_spans {
            let parent = w.parent.expect("worker spans are grafted, never roots");
            assert_eq!(
                find(parent).label,
                "exec",
                "{workers} workers: worker span not under exec"
            );
        }
        for f in &fragment_spans {
            let parent = f.parent.expect("fragment spans hang under their worker");
            assert_eq!(find(parent).label, "worker");
            for key in ["op", "worker", "rows", "bytes", "queue_us", "cache"] {
                assert!(
                    f.attrs.iter().any(|(k, _)| k == key),
                    "{workers} workers: fragment span lacks {key}: {f:?}"
                );
            }
        }
    }
}

// ---- EXPLAIN ANALYZE ---------------------------------------------------

/// The acceptance shape: a 4-worker distributed query renders one stitched
/// tree with the coordinator stage spans *and* the per-fragment worker
/// child spans, carrying worker id, row and wire-byte attributes.
#[test]
fn explain_analyze_renders_one_stitched_tree() {
    let p = platform();
    let out = p.explain_analyze(FAN_OUT, Some(4)).unwrap();
    assert!(out.starts_with("EXPLAIN ANALYZE"), "{out}");
    for label in [
        "static_query",
        "parse",
        "rewrite",
        "unfold",
        "exec",
        "worker",
        "fragment",
    ] {
        assert!(out.contains(label), "missing {label} span:\n{out}");
    }
    for attr in ["worker=", "rows=", "bytes=", "time="] {
        assert!(out.contains(attr), "missing {attr} attribute:\n{out}");
    }
    assert!(
        out.contains("├──") || out.contains("└──"),
        "no tree structure:\n{out}"
    );
    // One stitched tree, not a forest: exactly one top-level span (the
    // root line carries no branch prefix).
    let roots = out
        .lines()
        .skip(1) // the EXPLAIN ANALYZE banner
        .filter(|l| {
            !l.is_empty()
                && !l.starts_with(' ')
                && !l.starts_with('│')
                && !l.starts_with('├')
                && !l.starts_with('└')
        })
        .count();
    assert_eq!(roots, 1, "expected a single stitched root:\n{out}");

    // Single-node EXPLAIN ANALYZE falls back to the `sql` leaf spans
    // (cold cache — a warm BGP entry would short-circuit execution).
    p.bgp_cache().invalidate();
    let single = p.explain_analyze(FAN_OUT, None).unwrap();
    assert!(single.contains("sql"), "{single}");
    assert!(!single.contains("worker="), "{single}");
}

// ---- dashboard latency percentiles + slow-query log --------------------

#[test]
fn dashboard_shows_latency_percentiles_after_32_queries() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    p.set_slow_query_threshold_us(1); // everything lands on the slow log
    for _ in 0..32 {
        p.query_static("SELECT ?s WHERE { ?s a sie:Sensor }")
            .unwrap();
    }
    let dash = p.dashboard();
    assert!(dash.static_p50_us > 0, "{dash:?}");
    assert!(dash.static_p95_us >= dash.static_p50_us);
    assert!(dash.static_p99_us >= dash.static_p95_us);
    assert!(!dash.slow_queries.is_empty());
    assert!(dash.slow_queries.iter().all(|s| s.total_us >= 1));
    let r = dash.render();
    assert!(r.contains("p50/p95/p99"), "{r}");
    assert!(r.contains("slow queries ─ ≥ 1 µs"), "{r}");

    // The metrics snapshot exports the same histogram both ways.
    let snap = p.metrics_snapshot();
    let summary = snap.histogram("static.query_us").unwrap();
    assert_eq!(summary.count, 32);
    assert_eq!(summary.p50, dash.static_p50_us);
    assert!(snap.to_json().contains("static.query_us"));
    assert!(snap.to_prometheus().contains("static_query_us"));

    // Raising the threshold silences the log for fast queries.
    let quiet = OptiquePlatform::from_siemens(SiemensDeployment::small());
    quiet.set_slow_query_threshold_us(u64::MAX);
    quiet
        .query_static("SELECT ?s WHERE { ?s a sie:Sensor }")
        .unwrap();
    assert!(quiet.dashboard().slow_queries.is_empty());
}

#[test]
fn tick_percentiles_populate_per_query() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    p.register_starql(optique_starql::FIGURE1).unwrap();
    for tick in (600_000..=632_000).step_by(1_000) {
        p.tick_all(tick).unwrap();
    }
    let dash = p.dashboard();
    assert_eq!(dash.panels[0].ticks, 33);
    assert!(dash.panels[0].tick_p50_us > 0, "{:?}", dash.panels[0]);
    assert!(dash.panels[0].tick_p99_us >= dash.panels[0].tick_p50_us);
    let snap = p.metrics_snapshot();
    assert!(snap.histogram("tick.q1.us").is_some());
}

// ---- streaming tick spans ----------------------------------------------

#[test]
fn tick_spans_cover_the_streaming_path() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    p.register_starql(optique_starql::FIGURE1).unwrap();
    let mut labels: Vec<String> = Vec::new();
    for tick in (600_000..=612_000).step_by(1_000) {
        let out = p.tick_all(tick).unwrap();
        let spans = &out[0].1.spans;
        if spans.is_empty() {
            continue; // no window closed at this tick
        }
        labels = spans.iter().map(|s| s.label.clone()).collect();
        // The records graft into one renderable tree.
        let tracer = Tracer::new();
        tracer.graft(None, 0, spans);
        let rendered = render_tree(&tracer.spans());
        for label in ["tick", "window_build", "wcache_lookup", "r2s"] {
            assert!(rendered.contains(label), "missing {label}:\n{rendered}");
        }
        break;
    }
    assert!(!labels.is_empty(), "no tick ever closed a window");

    // A distributed registration's wcache misses record scatter spans.
    let pd = OptiquePlatform::from_siemens(SiemensDeployment::small());
    pd.register_starql_distributed(optique_starql::FIGURE1, 4)
        .unwrap();
    let mut saw_scatter = false;
    for tick in (600_000..=612_000).step_by(1_000) {
        let out = pd.tick_all(tick).unwrap();
        saw_scatter |= out[0].1.spans.iter().any(|s| s.label == "scatter");
    }
    assert!(
        saw_scatter,
        "distributed ticks never recorded a scatter span"
    );
}

// ---- tracing differential guard ----------------------------------------

fn traced_untraced_pair() -> &'static (OptiquePlatform, OptiquePlatform) {
    static PAIR: OnceLock<(OptiquePlatform, OptiquePlatform)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let traced = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let untraced = OptiquePlatform::from_siemens(SiemensDeployment::small());
        untraced.set_tracing(false);
        (traced, untraced)
    })
}

fn assert_tracing_invisible(text: &str) {
    let (traced, untraced) = traced_untraced_pair();
    assert!(traced.tracing_enabled() && !untraced.tracing_enabled());
    traced.bgp_cache().invalidate();
    untraced.bgp_cache().invalidate();
    let a = traced
        .query_static(text)
        .unwrap_or_else(|e| panic!("traced failed for {text}: {e}"));
    let b = untraced
        .query_static(text)
        .unwrap_or_else(|e| panic!("untraced failed for {text}: {e}"));
    assert_eq!(canon(&a), canon(&b), "tracing changed answers for {text}");
    traced.bgp_cache().invalidate();
    untraced.bgp_cache().invalidate();
    let a = traced.query_static_distributed(text, 4).unwrap();
    let b = untraced.query_static_distributed(text, 4).unwrap();
    assert_eq!(
        canon(&a),
        canon(&b),
        "tracing changed distributed answers for {text}"
    );
}

#[test]
fn tracing_differential_fixed_suite() {
    for text in FIXED_QUERIES {
        assert_tracing_invisible(text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(16)))]

    #[test]
    fn tracing_differential_generated(text in query_strategy()) {
        assert_tracing_invisible(&text);
    }
}
