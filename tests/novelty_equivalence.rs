//! Novelty-overlay differential oracle: the write-heavy equivalence suite
//! for the incremental write path.
//!
//! **The oracle:** a platform running the default
//! [`WritePolicy::NoveltyOverlay`] — inserts land in the in-memory novelty
//! log, merges fold it into the base catalog at arbitrary points — must be
//! answer-indistinguishable from a stop-the-world replica that rebuilds
//! its catalog on every insert and treats merges as no-ops. The property
//! suites generate interleavings of `insert → query → merge → query …`
//! and check every answer (single-node and across 1/2/4/8-worker pools,
//! direct and through the `optique::server` front door) against the
//! replica's reference single-node answer.
//!
//! A separate property pins the statistics side: the incrementally
//! maintained [`StatsCatalog`] (O(1) row-count deltas on append, per-table
//! re-analyze on merge) must equal a from-scratch analyze after any
//! append/merge history — so the partition-key advisor makes the same
//! choices it would have made with exact statistics.
//!
//! Generated-case count comes from `PROPTEST_CASES` (CI runs at 64).

mod common;

use std::sync::Arc;

use common::{canon, proptest_cases, streaming};
use optique::{OptiquePlatform, Server, ServerConfig, WritePolicy};
use optique_relational::{advise_partition_keys, StatsCatalog, Value};
use proptest::prelude::*;

use streaming::SIE;

/// Worker-pool choices a query op draws from (`None` = single-node).
const POOLS: [Option<usize>; 5] = [None, Some(1), Some(2), Some(4), Some(8)];

/// First inserted sensor id (the fixture's base sensors stop at 63).
const FRESH_SID: i64 = 2_000;

/// The query corpus: a plain cached BGP, a two-entry UNION, a
/// planner-reordered join with a semi-join seam, an aggregate, and ASK.
fn corpus() -> Vec<String> {
    vec![
        format!("SELECT ?x WHERE {{ ?x a <{SIE}Sensor> }}"),
        format!(
            "SELECT DISTINCT ?x WHERE {{ {{ ?x a <{SIE}TemperatureSensor> }} \
             UNION {{ ?x a <{SIE}PressureSensor> }} }}"
        ),
        format!(
            "SELECT ?x ?s WHERE {{ {{ ?x <{SIE}inAssembly> ?s }} \
             {{ ?s a <{SIE}TemperatureSensor> }} }}"
        ),
        format!(
            "SELECT ?a (COUNT(?s) AS ?n) WHERE {{ ?a <{SIE}inAssembly> ?s }} \
             GROUP BY ?a ORDER BY DESC(?n) LIMIT 4"
        ),
        format!("ASK {{ ?x a <{SIE}PressureSensor> }}"),
    ]
}

/// One step of a generated interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// Append `rows` fresh sensors (sequential sids, alternating kinds).
    Insert { rows: usize },
    /// Answer `corpus()[query]` on the subject over `workers` and compare
    /// with the replica's single-node answer.
    Query {
        query: usize,
        workers: Option<usize>,
    },
    /// Fold the subject's overlay now (a no-op on the replica).
    Merge,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    // The vendored prop_oneof! is uniform; repeating options weights the
    // mix toward the write/query churn the oracle is about (~3:4:1).
    let insert = || (1usize..4usize).prop_map(|rows| Op::Insert { rows });
    let query = || {
        (0usize..5usize, 0usize..POOLS.len()).prop_map(|(query, p)| Op::Query {
            query,
            workers: POOLS[p],
        })
    };
    proptest::collection::vec(
        prop_oneof![
            insert(),
            insert(),
            insert(),
            query(),
            query(),
            query(),
            query(),
            Just(Op::Merge),
        ],
        1..16,
    )
}

/// The `k`-th fresh sensor row: `(sid, aid, kind)` with kinds alternating
/// so both UNION branches keep growing.
fn sensor_row(sid: i64) -> Vec<Value> {
    vec![
        Value::Int(sid),
        Value::Int(sid % 8),
        Value::text(if sid % 2 == 0 {
            "temperature"
        } else {
            "pressure"
        }),
    ]
}

/// Runs one interleaving: subject on the overlay write path (optionally
/// behind a server), replica on stop-the-world; every query answer must
/// match, and after a final fold the whole corpus must still agree.
fn run_case(ops: &[Op], served: bool) {
    let subject = Arc::new(streaming::deployment(streaming::ramp_stream()));
    let replica = streaming::deployment(streaming::ramp_stream());
    replica.set_write_policy(WritePolicy::StopTheWorld).unwrap();
    assert_eq!(subject.write_policy(), WritePolicy::NoveltyOverlay);
    let server = served.then(|| Server::serve(Arc::clone(&subject), ServerConfig::default()));
    let client = server.as_ref().map(|s| s.client("oracle"));
    let corpus = corpus();
    let mut next_sid = FRESH_SID;
    for op in ops {
        match op {
            Op::Insert { rows } => {
                let batch: Vec<Vec<Value>> = (0..*rows)
                    .map(|_| {
                        let row = sensor_row(next_sid);
                        next_sid += 1;
                        row
                    })
                    .collect();
                let inserted = match &client {
                    Some(c) => c.insert("sensors", batch.clone()).unwrap(),
                    None => subject.insert_static("sensors", batch.clone()).unwrap(),
                };
                assert_eq!(inserted, *rows);
                assert_eq!(replica.insert_static("sensors", batch).unwrap(), *rows);
            }
            Op::Query { query, workers } => {
                let text = &corpus[*query];
                let got = match (&client, workers) {
                    (Some(c), None) => c.query(text).unwrap(),
                    (Some(c), Some(w)) => c.query_distributed(text, *w).unwrap(),
                    (None, None) => subject.query_static(text).unwrap(),
                    (None, Some(w)) => subject.query_static_distributed(text, *w).unwrap(),
                };
                let want = replica.query_static(text).unwrap();
                assert_eq!(
                    canon(&got),
                    canon(&want),
                    "query {query} (workers {workers:?}) diverged from the \
                     stop-the-world replay"
                );
            }
            Op::Merge => {
                match &client {
                    Some(c) => {
                        c.merge().unwrap();
                    }
                    None => {
                        subject.merge_now().unwrap();
                    }
                }
                assert_eq!(subject.novelty_depth(), 0);
            }
        }
    }
    // Fold whatever is left and sweep the whole corpus one last time —
    // single-node and sharded — against the replica.
    subject.merge_now().unwrap();
    for (i, text) in corpus.iter().enumerate() {
        let want = canon(&replica.query_static(text).unwrap());
        assert_eq!(
            canon(&subject.query_static(text).unwrap()),
            want,
            "final sweep q{i}"
        );
        assert_eq!(
            canon(&subject.query_static_distributed(text, 2).unwrap()),
            want,
            "final distributed sweep q{i}"
        );
    }
}

/// A history of append batches with optional merges in between, applied to
/// an overlay platform; returns it ready for the stats comparison.
fn apply_history(history: &[(usize, bool)]) -> OptiquePlatform {
    let p = streaming::deployment(streaming::ramp_stream());
    let mut next_sid = FRESH_SID;
    for (rows, merge_after) in history {
        let batch: Vec<Vec<Value>> = (0..*rows)
            .map(|_| {
                let row = sensor_row(next_sid);
                next_sid += 1;
                row
            })
            .collect();
        p.insert_static("sensors", batch).unwrap();
        if *merge_after {
            p.merge_now().unwrap();
        }
    }
    p.merge_now().unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(16)))]

    #[test]
    fn interleaved_writes_match_stop_the_world_replay_direct(ops in ops_strategy()) {
        run_case(&ops, false);
    }

    #[test]
    fn interleaved_writes_match_stop_the_world_replay_served(ops in ops_strategy()) {
        run_case(&ops, true);
    }

    /// After any append/merge history, the incrementally maintained stats
    /// equal a from-scratch analyze of the folded catalog — so the
    /// partition-key advisor's choices are identical to what exact
    /// statistics would produce.
    #[test]
    fn incremental_stats_never_drift_from_scratch_analyze(
        history in proptest::collection::vec((1usize..6usize, any::<bool>()), 1..10)
    ) {
        let p = apply_history(&history);
        let incremental = p.table_stats();
        let fresh = StatsCatalog::analyze(&p.db());
        prop_assert_eq!(&*incremental, &fresh);
        // The advisor sees the same world through either catalog.
        let usage = [
            ("sensors".to_string(), "sid".to_string(), 3usize),
            ("sensors".to_string(), "aid".to_string(), 2usize),
            ("assemblies".to_string(), "aid".to_string(), 1usize),
        ];
        prop_assert_eq!(
            advise_partition_keys(&incremental, &usage, 16),
            advise_partition_keys(&fresh, &usage, 16)
        );
    }
}
