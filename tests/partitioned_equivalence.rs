//! Partition-routed federation, proven by a **three-way differential
//! oracle**: for every query — the shared fixed suite plus the shared
//! property-based generator (`tests/common`) — the answer set must be
//! identical across
//!
//! 1. **single-node** execution (`query_static`),
//! 2. **replicated** pools (every worker holds the full catalog), and
//! 3. **auto-partitioned** pools (advisor-picked hash partitioning, with
//!    the sharded → replicated → coordinator per-fragment fallback ladder
//!    and shard-pruned semi-join routing),
//!
//! at 1, 2, 4 and 8 workers. Alongside the oracle, the suite pins down
//! that the machinery actually engages (fragments shard, pruning fires on
//! a fixed case), that per-fragment fallback never changes answers, and
//! that the BGP cache stays correct across topology switches and
//! re-partitioning writes.
//!
//! Two shared platforms (one pinned to each topology) keep the comparison
//! race-free under the parallel test runner — no test ever flips a shared
//! platform's topology mid-flight.

mod common;

use std::sync::OnceLock;

use common::{canon, proptest_cases, query_strategy, DATA_NS, FIXED_QUERIES};
use optique::{FederationTopology, OptiquePlatform};
use optique_relational::Value;
use optique_siemens::SiemensDeployment;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Replicated-pool platform (also serves the single-node reference).
fn replicated() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        p.set_federation_topology(FederationTopology::Replicated);
        p
    })
}

/// Auto-partitioned platform (the smart default under test).
fn partitioned() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| OptiquePlatform::from_siemens(SiemensDeployment::small()))
}

/// Asserts the three-way equivalence for one query at every worker count.
/// Caches are invalidated around every run so each execution exercises its
/// own routing, not a cached solution set.
fn assert_three_way_equivalent(text: &str) {
    let r = replicated();
    r.bgp_cache().invalidate();
    let reference = r
        .query_static(text)
        .unwrap_or_else(|e| panic!("single-node run failed for {text}: {e}"));

    let p = partitioned();
    for workers in WORKER_COUNTS {
        r.bgp_cache().invalidate();
        let over_replicas = r
            .query_static_distributed(text, workers)
            .unwrap_or_else(|e| panic!("{workers}-worker replicated run failed for {text}: {e}"));
        assert_eq!(
            canon(&reference),
            canon(&over_replicas),
            "replicated ≠ single-node at {workers} workers for {text}"
        );

        p.bgp_cache().invalidate();
        let (over_shards, stats) = p
            .query_static_distributed_with_stats(text, workers)
            .unwrap_or_else(|e| panic!("{workers}-worker partitioned run failed for {text}: {e}"));
        assert_eq!(
            canon(&reference),
            canon(&over_shards),
            "partitioned ≠ single-node at {workers} workers for {text}"
        );
        assert!(
            stats.fragments >= stats.sql_disjuncts.min(1),
            "no fragments shipped at {workers} workers for {text}: {stats:?}"
        );
    }
    r.bgp_cache().invalidate();
    p.bgp_cache().invalidate();
}

// Tests live in a module named after the suite so a bare
// `cargo test partitioned_equivalence` filter selects them all.
mod partitioned_equivalence {
    use super::*;

    // ---- fixed suite ---------------------------------------------------

    #[test]
    fn fixed_suite_is_three_way_equivalent() {
        for text in FIXED_QUERIES {
            assert_three_way_equivalent(text);
        }
    }

    /// The advisor must actually partition the Siemens deployment (sensors on
    /// `sid`) and fragments must actually shard — otherwise the oracle above
    /// proves nothing about partition routing.
    #[test]
    fn auto_partitioning_actually_engages() {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        assert_eq!(p.federation_topology(), FederationTopology::AutoPartitioned);
        let (_, stats) = p
            .query_static_distributed_with_stats("SELECT ?s WHERE { ?s a sie:Sensor }", 4)
            .unwrap();
        assert!(
            stats.partitioned_fragments >= 1,
            "sensor scans must shard: {stats:?}"
        );
        assert_eq!(stats.coordinator_fallbacks, 0, "{stats:?}");
        let dash = p.dashboard();
        assert!(dash.total_partitioned_fragments() >= 1);
        let panel = dash.static_queries.last().unwrap();
        assert!(panel.partitioned_fragments >= 1);
    }

    /// Shard pruning must fire on a selective fixed case: a constant assembly
    /// binds ≤ 3 sensors, and pushing those keys into the sharded sensor scan
    /// routes each fragment to at most 4 of 8 shards.
    #[test]
    fn shard_pruning_fires_on_selective_join() {
        let text = format!(
            "SELECT ?s WHERE {{ {{ <{DATA_NS}assembly/0> sie:inAssembly ?s }} \
         {{ ?s a sie:Sensor }} }}"
        );
        // Own platform: the shared one's BGP cache is filled/invalidated
        // concurrently by the oracle tests, and a cache hit would skip
        // fragment shipping and zero every routing counter.
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let (results, stats) = p.query_static_distributed_with_stats(&text, 8).unwrap();
        assert!(
            stats.shards_pruned > 0,
            "≤ 4 of 8 shards can hold the 3 anchored sensors: {stats:?}"
        );
        assert!(stats.semi_joins_pushed >= 1, "{stats:?}");
        assert_eq!(results.len(), 3, "assembly 0 has exactly 3 sensors");

        // The same query, replicated and single-node, agrees — pruning must
        // not drop answers.
        assert_three_way_equivalent(&text);

        // And the dashboard surfaces the pruning.
        let dash = p.dashboard();
        assert!(dash.total_shards_pruned() > 0);
    }

    /// Per-fragment fallback: one query whose unfolded fragments hit all three
    /// rungs of the ladder — sensors⋈sensors on a non-key column falls back to
    /// the coordinator, regional⋈sensors scatters, regional⋈regional places on
    /// a replica — and the answers still match the other backends exactly.
    #[test]
    fn per_fragment_fallback_never_changes_answers() {
        let text = "SELECT ?s1 ?s2 WHERE { ?a sie:inAssembly ?s1 . ?a sie:inAssembly ?s2 }";
        // Own platform: counter assertions must not race the shared cache.
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let (_, stats) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert!(
            stats.coordinator_fallbacks >= 1,
            "sensors⋈sensors joined on the assembly (non-key) column must fall \
         back: {stats:?}"
        );
        assert!(
            stats.partitioned_fragments >= 1,
            "mixed regional⋈sensors fragments must still shard: {stats:?}"
        );
        assert!(
            stats.replicated_fallbacks >= 1,
            "regional⋈regional fragments run on a single replica: {stats:?}"
        );
        assert_three_way_equivalent(text);
    }

    /// Co-partitioned fragments (sensors⋈sensors on the partition key) must
    /// ship — zero coordinator fallbacks — and still answer exactly.
    #[test]
    fn co_partitioned_joins_ship_without_fallback() {
        let text = "SELECT ?x ?s WHERE { ?x sie:inAssembly ?s . ?s a sie:TemperatureSensor }";
        // Own platform: counter assertions must not race the shared cache.
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let (_, stats) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert_eq!(
            stats.coordinator_fallbacks, 0,
            "key-joined sensor fragments are co-partitioned: {stats:?}"
        );
        assert!(stats.partitioned_fragments >= 1, "{stats:?}");
        assert_three_way_equivalent(text);
    }

    // ---- BGP cache across topology switches --------------------------------

    /// A solution set cached under one topology may serve the other — results
    /// are a function of the relational snapshot alone, which the three-way
    /// oracle proves — and the warm run must return the identical answer.
    #[test]
    fn cache_fills_cross_topologies_when_results_identical() {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let text = "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }";

        p.set_federation_topology(FederationTopology::Replicated);
        let (cold_results, cold) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert_eq!(cold.cache_hits, 0);

        p.set_federation_topology(FederationTopology::AutoPartitioned);
        let (warm_results, warm) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert!(
            warm.cache_hits >= 1,
            "partitioned run reuses the replicated fill: {warm:?}"
        );
        assert_eq!(canon(&cold_results), canon(&warm_results));
    }

    /// Restricted executions cache under restriction-fingerprinted keys; the
    /// fingerprints match across topologies exactly when the restriction (and
    /// therefore the result subset) is identical — so a topology switch hits
    /// the warm entries and answers identically.
    #[test]
    fn restricted_cache_entries_survive_topology_switch() {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let text = "SELECT ?x ?s WHERE { { ?s a sie:TemperatureSensor } { ?x sie:inAssembly ?s } }";

        p.set_federation_topology(FederationTopology::Replicated);
        let (cold_results, cold) = p.query_static_distributed_with_stats(text, 2).unwrap();
        assert!(cold.semi_joins_pushed >= 1, "{cold:?}");

        p.set_federation_topology(FederationTopology::AutoPartitioned);
        let (warm_results, warm) = p.query_static_distributed_with_stats(text, 2).unwrap();
        assert_eq!(canon(&cold_results), canon(&warm_results));
        assert!(
            warm.cache_hits >= 1,
            "identical restriction → identical fingerprint → warm hit: {warm:?}"
        );
    }

    /// `insert_static` re-partitions: pools drop, stats refresh, the cache
    /// generation bumps. A solution set cached under the old shards must never
    /// be served afterwards — the next partitioned run recomputes over the new
    /// snapshot and sees the new rows.
    #[test]
    fn insert_static_repartitions_without_stale_cache() {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        let text = "SELECT ?s WHERE { ?s a sie:Sensor }";
        let (before, cold) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert!(cold.cache_misses >= 1);

        // Insert a sensor row (new sid → lands on some shard after the
        // re-partition).
        let sensors = p.db().table("sensors").unwrap().clone();
        let sid_col = sensors.schema.index_of("sid").expect("sensors.sid");
        let mut row = sensors.rows[0].clone();
        row[sid_col] = Value::Int(77_777);
        p.insert_static("sensors", vec![row]).unwrap();

        let (after, fresh) = p.query_static_distributed_with_stats(text, 4).unwrap();
        assert_eq!(fresh.cache_hits, 0, "stale cache served: {fresh:?}");
        assert_eq!(
            after.len(),
            before.len() + 1,
            "the inserted sensor is visible through the re-partitioned shards"
        );
        assert_eq!(p.dashboard().bgp_cache_invalidations, 1);

        // And the re-partitioned pool still agrees with single-node.
        let single = p.query_static(text).unwrap();
        let distributed = p.query_static_distributed(text, 4).unwrap();
        assert_eq!(canon(&single), canon(&distributed));
    }

    // ---- property-based suite ----------------------------------------------

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(proptest_cases(32)))]
        #[test]
        fn generated_queries_are_three_way_equivalent(text in query_strategy()) {
            let r = replicated();
            r.bgp_cache().invalidate();
            let reference = r.query_static(&text);
            prop_assert!(reference.is_ok(), "single-node failed for {}: {:?}", text, reference.err());
            let reference = reference.unwrap();

            let p = partitioned();
            for workers in WORKER_COUNTS {
                r.bgp_cache().invalidate();
                let over_replicas = r.query_static_distributed(&text, workers);
                prop_assert!(
                    over_replicas.is_ok(),
                    "{} workers replicated failed for {}: {:?}", workers, text, over_replicas.err()
                );
                prop_assert_eq!(
                    canon(&reference),
                    canon(&over_replicas.unwrap()),
                    "replicated ≠ single-node at {} workers for {}", workers, text
                );

                p.bgp_cache().invalidate();
                let over_shards = p.query_static_distributed(&text, workers);
                prop_assert!(
                    over_shards.is_ok(),
                    "{} workers partitioned failed for {}: {:?}", workers, text, over_shards.err()
                );
                prop_assert_eq!(
                    canon(&reference),
                    canon(&over_shards.unwrap()),
                    "partitioned ≠ single-node at {} workers for {}", workers, text
                );
            }
            r.bgp_cache().invalidate();
            p.bgp_cache().invalidate();
        }
    }
}
