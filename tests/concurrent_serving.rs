//! Concurrent serving smoke suite: the differential oracle for the
//! multi-tenant write path.
//!
//! N reader threads hammer `query_static` / `query_static_distributed`
//! (across 1/2/4/8-worker pools) while a single writer appends sentinel
//! sensors and a ticker drives the streaming pipeline — first directly
//! against the platform, then through the `optique::server` front-end.
//!
//! **The oracle:** each sentinel write adds exactly one sensor with a
//! unique, recognizable IRI, and there is one writer, so the writes have a
//! total order. Every concurrent answer must then equal the answer of a
//! *serialized replay*: a fresh platform that applies some prefix of the
//! write sequence and runs the same query alone. Which prefix a given
//! answer observed is recoverable from the sentinels it contains — and if
//! an answer mixes pre- and post-write state (the `insert_static` races
//! this PR fixes: stale BGP-cache entries, old-shard pools, torn
//! db/stats), its sentinel set is *not* a prefix or its rows diverge from
//! the replay, and the oracle fails.
//!
//! Thread count comes from `CONCURRENT_THREADS` (default 4); CI runs the
//! suite at a reduced count.

mod common;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use common::canon;
use common::streaming::{self, SIE};
use optique::{OptiquePlatform, Server, ServerConfig};
use optique_relational::Value;

/// Sentinel sensors the writer appends, in order: sids `1000..1000+W`.
const WRITES: usize = 10;
/// Queries each reader thread issues.
const READER_ITERS: usize = 15;
/// First sentinel sid (4 digits, same width for all sentinels, so a
/// substring check on `sensor/<sid>` is collision-free).
const SENTINEL_BASE: usize = 1000;

fn reader_threads() -> usize {
    std::env::var("CONCURRENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The reader query corpus: a single cached BGP, a two-branch UNION (two
/// cache entries — the shape that exposes mixed-generation answers), and a
/// planner-reordered join over two separately-unfolded groups.
fn queries() -> Vec<String> {
    vec![
        format!("SELECT ?x WHERE {{ ?x a <{SIE}Sensor> }}"),
        format!(
            "SELECT DISTINCT ?x WHERE {{ {{ ?x a <{SIE}TemperatureSensor> }} \
             UNION {{ ?x a <{SIE}PressureSensor> }} }}"
        ),
        format!(
            "SELECT ?x ?s WHERE {{ {{ ?x <{SIE}inAssembly> ?s }} \
             {{ ?s a <{SIE}TemperatureSensor> }} }}"
        ),
    ]
}

/// The `k`-th sentinel write: one temperature sensor with sid
/// `SENTINEL_BASE + k` (temperature, so every corpus query surfaces it).
fn sentinel_row(k: usize) -> Vec<Value> {
    vec![
        Value::Int((SENTINEL_BASE + k) as i64),
        Value::Int((k % 8) as i64),
        Value::text("temperature"),
    ]
}

/// Which write-prefix an answer observed: `Some(j)` when exactly the first
/// `j` sentinels are present, `None` when the sentinel set is not a prefix
/// of the write order — a torn (non-serializable) answer.
fn observed_prefix(rows: &[String]) -> Option<usize> {
    let present: Vec<bool> = (0..WRITES)
        .map(|k| {
            let needle = format!("sensor/{}", SENTINEL_BASE + k);
            rows.iter().any(|r| r.contains(&needle))
        })
        .collect();
    let j = present.iter().take_while(|&&p| p).count();
    if present[j..].iter().any(|&p| p) {
        None
    } else {
        Some(j)
    }
}

/// One recorded concurrent answer.
struct Observation {
    query: usize,
    workers: Option<usize>,
    rows: Vec<String>,
}

/// How the schedule talks to the platform.
#[derive(Clone, Copy)]
enum Mode {
    /// Straight `&self` calls on the shared platform.
    Direct,
    /// Through `Server` clients, one tenant per thread.
    Served,
}

/// Runs the mixed schedule — readers × {single-node, 1/2/4/8-worker
/// pools}, one sentinel writer, one ticker — and returns every answer
/// observed mid-flight.
fn run_schedule(platform: &Arc<OptiquePlatform>, mode: Mode) -> Vec<Observation> {
    let server = match mode {
        Mode::Direct => None,
        Mode::Served => Some(Server::serve(
            Arc::clone(platform),
            ServerConfig {
                workers: (reader_threads() + 2).max(4),
                queue_capacity: 256,
                ..ServerConfig::default()
            },
        )),
    };
    let corpus = queries();
    let observations = Mutex::new(Vec::new());
    let writer_done = AtomicBool::new(false);
    let pools: [Option<usize>; 5] = [None, Some(1), Some(2), Some(4), Some(8)];

    std::thread::scope(|scope| {
        // The single writer: sentinel sensors land in program order.
        let writer_client = server.as_ref().map(|s| s.client("writer"));
        let writer_done = &writer_done;
        let platform_ref = platform;
        scope.spawn(move || {
            for k in 0..WRITES {
                let inserted = match &writer_client {
                    Some(client) => client.insert("sensors", vec![sentinel_row(k)]).unwrap(),
                    None => platform_ref
                        .insert_static("sensors", vec![sentinel_row(k)])
                        .unwrap(),
                };
                assert_eq!(inserted, 1);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            writer_done.store(true, Ordering::Release);
        });

        // The ticker: every pulse must execute cleanly mid-write.
        let ticker_client = server.as_ref().map(|s| s.client("ticker"));
        scope.spawn(move || {
            let mut tick = 600_000;
            while !writer_done.load(Ordering::Acquire) {
                match &ticker_client {
                    Some(client) => {
                        client.tick(tick).unwrap();
                    }
                    None => {
                        platform_ref.tick_all(tick).unwrap();
                    }
                }
                tick += 1_000;
            }
        });

        // The readers: every thread cycles queries and pool sizes.
        for t in 0..reader_threads() {
            let client = server.as_ref().map(|s| s.client(&format!("tenant-{t}")));
            let corpus = &corpus;
            let observations = &observations;
            let pools = &pools;
            scope.spawn(move || {
                for i in 0..READER_ITERS {
                    let query = (t + i) % corpus.len();
                    let workers = pools[(t + i) % pools.len()];
                    let text = &corpus[query];
                    let results = match (&client, workers) {
                        (Some(c), None) => c.query(text).unwrap(),
                        (Some(c), Some(w)) => c.query_distributed(text, w).unwrap(),
                        (None, None) => platform_ref.query_static(text).unwrap(),
                        (None, Some(w)) => platform_ref.query_static_distributed(text, w).unwrap(),
                    };
                    observations.lock().unwrap().push(Observation {
                        query,
                        workers,
                        rows: canon(&results).1,
                    });
                }
            });
        }
    });
    observations.into_inner().unwrap()
}

/// Serialized replay: answers of `query` on a fresh platform after the
/// first `prefix` writes, computed alone on the reference single-node
/// path. Memoized per `(query, prefix)`.
fn replay_answers(
    cache: &mut HashMap<(usize, usize), Vec<String>>,
    query: usize,
    prefix: usize,
) -> Vec<String> {
    if let Some(rows) = cache.get(&(query, prefix)) {
        return rows.clone();
    }
    let replay = streaming::deployment(streaming::ramp_stream());
    for k in 0..prefix {
        replay
            .insert_static("sensors", vec![sentinel_row(k)])
            .unwrap();
    }
    let rows = canon(&replay.query_static(&queries()[query]).unwrap()).1;
    cache.insert((query, prefix), rows.clone());
    rows
}

/// Checks every observation against its serialized replay.
fn check_oracle(observations: Vec<Observation>) {
    assert!(!observations.is_empty());
    let mut cache = HashMap::new();
    for obs in observations {
        let prefix = observed_prefix(&obs.rows).unwrap_or_else(|| {
            panic!(
                "torn answer: query {} (workers {:?}) observed a non-prefix \
                 sentinel set in {:?}",
                obs.query, obs.workers, obs.rows
            )
        });
        let expected = replay_answers(&mut cache, obs.query, prefix);
        assert_eq!(
            obs.rows, expected,
            "query {} (workers {:?}) diverged from the serialized replay \
             of its observed {prefix}-write prefix",
            obs.query, obs.workers
        );
    }
}

/// A platform with one registered continuous query for the ticker to pump.
fn oracle_platform() -> Arc<OptiquePlatform> {
    let platform = streaming::deployment(streaming::ramp_stream());
    platform
        .register_starql(&streaming::program(2, 5, 1, false, 0))
        .unwrap();
    Arc::new(platform)
}

#[test]
fn concurrent_schedule_matches_serialized_replay_direct() {
    let platform = oracle_platform();
    check_oracle(run_schedule(&platform, Mode::Direct));
}

#[test]
fn concurrent_schedule_matches_serialized_replay_through_server() {
    let platform = oracle_platform();
    let observations = run_schedule(&platform, Mode::Served);
    check_oracle(observations);
    // The serving layer metered every request and is quiescent.
    let snap = platform.metrics_snapshot();
    let admitted = snap.counter("server.admitted").unwrap_or(0);
    let completed = snap.counter("server.completed").unwrap_or(0);
    assert!(admitted > 0);
    assert_eq!(admitted, completed, "all admitted requests completed");
    assert_eq!(snap.counter("server.errors"), None);
    assert_eq!(snap.gauge("server.queue_depth"), Some(0));
}

/// Snapshot-coherence hammer: while the writer appends, every pinned
/// snapshot's stats must describe exactly its own catalog (regression for
/// the db/stats tear `PlatformSnapshot` closes).
#[test]
fn snapshots_stay_coherent_under_concurrent_writes() {
    let platform = oracle_platform();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let p = &platform;
        let done = &done;
        scope.spawn(move || {
            for k in 0..WRITES {
                p.insert_static("sensors", vec![sentinel_row(k)]).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..reader_threads().max(2) {
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let snap = p.snapshot();
                    // Under the novelty-overlay write path a snapshot's
                    // rows are base + its own overlay log; the stats must
                    // describe exactly that sum, never a torn mix.
                    let rows = snap.db.table("sensors").unwrap().rows.len()
                        + snap.novelty.rows("sensors").map_or(0, |r| r.len());
                    assert_eq!(
                        snap.stats.row_count("sensors"),
                        Some(rows),
                        "snapshot stats describe a different catalog than its db"
                    );
                }
            });
        }
    });
    let last = platform.snapshot();
    assert_eq!(
        last.db.table("sensors").unwrap().rows.len()
            + last.novelty.rows("sensors").map_or(0, |r| r.len()),
        streaming::SENSORS as usize + WRITES
    );
    // Folding the overlay lands every write in the base table.
    platform.merge_now().unwrap();
    assert_eq!(
        platform.snapshot().db.table("sensors").unwrap().rows.len(),
        streaming::SENSORS as usize + WRITES
    );
}
