//! Demo scenario S1: the whole 20-task Siemens catalog registered and
//! monitored over one deployment.

use optique::OptiquePlatform;
use optique_siemens::catalog::TaskQuery;
use optique_siemens::{diagnostic_tasks, SiemensDeployment};

#[test]
fn all_tasks_register_and_tick() {
    let deployment = SiemensDeployment::small();
    let start = deployment.stream_config.start_ms;
    let end = start + deployment.stream_config.duration_ms;
    let hot_sensors: Vec<i64> = deployment
        .ground_truth
        .hot_bursts
        .iter()
        .map(|(s, _)| *s)
        .collect();
    let platform = OptiquePlatform::from_siemens(deployment);

    let mut starql_count = 0;
    for task in diagnostic_tasks() {
        match &task.query {
            TaskQuery::StarQl(_) => {
                platform
                    .register_task(&task)
                    .unwrap_or_else(|e| panic!("{}: {e}", task.id));
                starql_count += 1;
            }
            TaskQuery::SqlPlus(sql) => {
                // UDF-style tasks run directly on the engine.
                optique_relational::exec::query(sql, &platform.db())
                    .unwrap_or_else(|e| panic!("{}: {e}", task.id));
            }
        }
    }
    assert_eq!(starql_count, 18);
    assert_eq!(platform.registered(), 18);

    // Tick the full replay window every 5 s.
    let mut overheat_alarms: Vec<String> = Vec::new();
    for tick in (start..=end).step_by(5_000) {
        for (id, out) in platform.tick_all(tick).unwrap() {
            let dash = platform.dashboard();
            let panel = dash.panels.iter().find(|p| p.id == id).unwrap();
            if panel.name.contains("overheat") {
                for t in &out.triples {
                    if let optique_rdf::Term::Iri(iri) = &t.subject {
                        overheat_alarms.push(iri.as_str().to_string());
                    }
                }
            }
        }
    }

    // The planted hot burst must trigger at least one overheat task.
    for sensor in &hot_sensors {
        let iri = format!("http://siemens.example/data/sensor/{sensor}");
        assert!(
            overheat_alarms.contains(&iri),
            "hot burst on sensor {sensor} undetected; alarms: {overheat_alarms:?}"
        );
    }

    // Monitoring totals are consistent.
    let dash = platform.dashboard();
    assert_eq!(dash.panels.len(), 18);
    assert!(dash.total_tuples() > 0);
    let rendered = dash.render();
    assert!(rendered.contains("OPTIQUE monitoring"));
    assert!(rendered.lines().count() >= 20);
}

#[test]
fn pearson_task_finds_planted_pair() {
    let deployment = SiemensDeployment::small();
    let (a, b) = deployment.ground_truth.correlated_pairs[0];
    let task = diagnostic_tasks()
        .into_iter()
        .find(|t| t.name == "pearson-correlation")
        .expect("task T19 exists");
    let TaskQuery::SqlPlus(sql) = &task.query else {
        panic!("T19 is SQL(+)")
    };
    let table = optique_relational::exec::query(sql, &deployment.db).unwrap();
    let hit = table.rows.iter().any(|row| {
        let (s1, s2) = (row[0].as_i64().unwrap(), row[1].as_i64().unwrap());
        (s1.min(s2), s1.max(s2)) == (a.min(b), a.max(b))
    });
    assert!(hit, "planted pair ({a},{b}) not in:\n{}", table.render(20));
}

#[test]
fn window_statistics_task_reports_each_window() {
    let deployment = SiemensDeployment::small();
    let task = diagnostic_tasks()
        .into_iter()
        .find(|t| t.name == "window-statistics")
        .expect("task T20 exists");
    let TaskQuery::SqlPlus(sql) = &task.query else {
        panic!("T20 is SQL(+)")
    };
    let table = optique_relational::exec::query(sql, &deployment.db).unwrap();
    assert_eq!(table.len(), 6, "windows 0..=5");
    for row in &table.rows {
        let n = row[1].as_i64().unwrap();
        let (lo, hi) = (row[3].as_f64().unwrap(), row[4].as_f64().unwrap());
        assert!(lo <= hi);
        assert!(n >= 0);
    }
}

#[test]
fn wcache_pays_off_across_the_catalog() {
    let deployment = SiemensDeployment::small();
    let start = deployment.stream_config.start_ms;
    let platform = OptiquePlatform::from_siemens(deployment);
    // Register the four monotonic tasks — same 10 s / 1 s window spec.
    for task in diagnostic_tasks().into_iter().take(4) {
        platform.register_task(&task).unwrap();
    }
    platform.tick_all(start + 10_000).unwrap();
    let dash = platform.dashboard();
    assert!(
        dash.wcache_hits >= 3,
        "three of four same-window queries reuse the materialization: {dash:?}"
    );
}
