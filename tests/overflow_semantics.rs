//! Integer-overflow semantics: arithmetic and SUM that leave the i64 range
//! must raise a typed [`SqlError::Overflow`] — never wrap — and they must do
//! so identically on a single node and on the distributed path (worker
//! partials + partial-merge), so answers can't silently diverge by topology.

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::exchange::{merge_partial_aggregates, MergeOp};
use optique_relational::{Column, ColumnType, Database, Schema, SqlError, Table, Value};

/// A table of one INT column `v` holding `values`, keyed for partitioning by
/// a leading `k` column.
fn int_db(values: &[i64]) -> Database {
    let schema = Schema::new(vec![
        Column::new("k", ColumnType::Int),
        Column::new("v", ColumnType::Int),
    ]);
    let rows = values
        .iter()
        .enumerate()
        .map(|(i, &v)| vec![Value::Int(i as i64), Value::Int(v)])
        .collect();
    let mut db = Database::new();
    db.put_table("t", Table::new(schema, rows).unwrap());
    db
}

fn cluster_of(db: &Database, workers: usize) -> Cluster {
    let t = (**db.table("t").unwrap()).clone();
    let shards = hash_partition(&t, 0, workers);
    Cluster::provision(workers, |id| {
        let mut wdb = Database::new();
        wdb.put_table("t", shards[id].clone());
        wdb
    })
}

/// Scalar `+` on i64::MAX overflows with the typed error on both paths.
#[test]
fn scalar_add_overflow_is_typed_and_topology_independent() {
    let db = int_db(&[1, i64::MAX]);
    let sql = "SELECT v + 1 AS w FROM t";

    let single = optique_relational::exec::query(sql, &db).unwrap_err();
    assert!(matches!(single, SqlError::Overflow(_)), "got {single}");

    let distributed = cluster_of(&db, 2).parallel_query(sql).unwrap_err();
    assert!(
        matches!(distributed, SqlError::Overflow(_)),
        "got {distributed}"
    );
}

/// `i64::MIN / -1` and `i64::MIN % -1` are the division-shaped overflows;
/// division by zero stays NULL (SQLite semantics), not an error.
#[test]
fn division_edge_cases() {
    let db = int_db(&[i64::MIN]);
    for sql in ["SELECT v / -1 AS w FROM t", "SELECT v % -1 AS w FROM t"] {
        let err = optique_relational::exec::query(sql, &db).unwrap_err();
        assert!(matches!(err, SqlError::Overflow(_)), "{sql}: got {err}");
    }
    let null = optique_relational::exec::query("SELECT v / 0 AS w FROM t", &db).unwrap();
    assert_eq!(null.rows[0][0], Value::Null);
}

/// Integer SUM overflow: on one node the accumulator overflows; distributed,
/// each worker's partial fits but the merge overflows. Both must surface the
/// same typed error — the differential oracle for satellite semantics.
#[test]
fn sum_overflow_matches_between_single_node_and_merge() {
    let db = int_db(&[i64::MAX, i64::MAX]);
    let sql = "SELECT SUM(v) AS s FROM t";

    let single = optique_relational::exec::query(sql, &db).unwrap_err();
    assert!(matches!(single, SqlError::Overflow(_)), "got {single}");

    // Two workers, one MAX row each: worker partials succeed…
    let partials = cluster_of(&db, 2).parallel_query(sql).unwrap();
    assert!(partials
        .iter()
        .all(|t| t.rows[0][0] == Value::Int(i64::MAX)));
    // …and the global combine is where the overflow must reappear.
    let merged = merge_partial_aggregates(partials, 0, &[MergeOp::Sum]).unwrap_err();
    assert!(matches!(merged, SqlError::Overflow(_)), "got {merged}");
}

/// Sums that stay in range keep returning exact integers (no float detour).
#[test]
fn in_range_sum_stays_exact_int() {
    let db = int_db(&[i64::MAX - 10, 7]);
    let sql = "SELECT SUM(v) AS s FROM t";
    let t = optique_relational::exec::query(sql, &db).unwrap();
    assert_eq!(t.rows[0][0], Value::Int(i64::MAX - 3));
}
