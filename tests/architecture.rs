//! Reproduction of paper Figure 2 (experiment F2): the distributed
//! stream-engine architecture — gateway registration, scheduler placement,
//! per-worker execution.

use std::sync::Arc;

use optique_exastream::cluster::{hash_partition, Cluster};
use optique_exastream::gateway::{AsyncFrontend, Gateway};
use optique_relational::Database;
use optique_siemens::{FleetConfig, StreamConfig};

/// A 4-worker cluster with the measurement stream hash-partitioned by
/// sensor and static tables replicated.
fn siemens_cluster(workers: usize) -> (Arc<Cluster>, usize) {
    let mut db = Database::new();
    let sensor_ids = optique_siemens::fleet::build_fleet(&mut db, &FleetConfig::small()).unwrap();
    let config = StreamConfig::small(sensor_ids);
    optique_siemens::streamgen::build_stream(&mut db, &config).unwrap();
    let stream = (**db.table("S_Msmt").unwrap()).clone();
    let total = stream.len();
    let shards = hash_partition(&stream, 1, workers); // column 1 = sensor_id
    let statics: Vec<(String, _)> = ["turbines", "assemblies", "sensors", "countries"]
        .iter()
        .map(|t| (t.to_string(), (**db.table(t).unwrap()).clone()))
        .collect();
    let cluster = Cluster::provision(workers, |id| {
        let mut worker_db = Database::new();
        worker_db.put_table("S_Msmt", shards[id].clone());
        for (name, table) in &statics {
            worker_db.put_table(name.clone(), table.clone());
        }
        optique_stream::register_stream_functions(&mut worker_db);
        worker_db
    });
    (Arc::new(cluster), total)
}

#[test]
fn partitioned_execution_covers_every_tuple() {
    let (cluster, total) = siemens_cluster(4);
    let results = cluster
        .parallel_query("SELECT COUNT(*) AS n FROM S_Msmt")
        .unwrap();
    let sum: i64 = results.iter().map(|t| t.rows[0][0].as_i64().unwrap()).sum();
    assert_eq!(sum as usize, total);
}

#[test]
fn gateway_places_queries_by_load() {
    let (cluster, _) = siemens_cluster(4);
    let gateway = Gateway::new(Arc::clone(&cluster));
    for _ in 0..64 {
        gateway
            .register(
                "SELECT sensor_id, MAX(value) FROM S_Msmt GROUP BY sensor_id",
                1.0,
            )
            .unwrap();
    }
    let loads = gateway.worker_loads();
    assert_eq!(loads.len(), 4);
    let (min, max) = loads.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &l| {
        (lo.min(l), hi.max(l))
    });
    assert!(
        (max - min).abs() < 1e-9,
        "uniform queries balance exactly: {loads:?}"
    );
}

#[test]
fn run_all_returns_per_query_answers() {
    let (cluster, _) = siemens_cluster(2);
    let gateway = Gateway::new(Arc::clone(&cluster));
    let q1 = gateway
        .register("SELECT COUNT(*) AS n FROM S_Msmt", 1.0)
        .unwrap();
    let q2 = gateway
        .register("SELECT COUNT(*) AS n FROM S_Msmt WHERE value >= 95", 1.0)
        .unwrap();
    let results = gateway.run_all();
    assert_eq!(results.len(), 2);
    let n1 = results
        .iter()
        .find(|(id, _)| *id == q1)
        .unwrap()
        .1
        .as_ref()
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    let n2 = results
        .iter()
        .find(|(id, _)| *id == q2)
        .unwrap()
        .1
        .as_ref()
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    assert!(n1 > 0);
    assert!(
        n2 < n1,
        "hot readings are a strict subset (shard-local counts)"
    );
}

#[test]
fn async_gateway_accepts_concurrent_submissions() {
    let (cluster, _) = siemens_cluster(2);
    let gateway = Gateway::new(Arc::clone(&cluster));
    let frontend = AsyncFrontend::spawn(Arc::clone(&gateway));
    let receivers: Vec<_> = (0..128)
        .map(|i| {
            frontend.submit(
                format!("SELECT COUNT(*) FROM S_Msmt WHERE sensor_id = {i}"),
                1.0,
            )
        })
        .collect();
    for rx in receivers {
        rx.recv().unwrap().unwrap();
    }
    assert_eq!(gateway.registered(), 128);
}

#[test]
fn windowed_queries_run_on_workers() {
    let (cluster, _) = siemens_cluster(4);
    let gateway = Gateway::new(Arc::clone(&cluster));
    gateway
        .register(
            "SELECT window_id, COUNT(*) AS n FROM \
             timeslidingwindow('S_Msmt', 0, 10000, 1000, 600000, 0, 9) AS w \
             GROUP BY window_id",
            2.0,
        )
        .unwrap();
    let results = gateway.run_all();
    let t = results[0].1.as_ref().unwrap();
    assert!(!t.is_empty(), "windows materialize on the worker's shard");
}

#[test]
fn deregistration_frees_capacity() {
    let (cluster, _) = siemens_cluster(2);
    let gateway = Gateway::new(Arc::clone(&cluster));
    let id = gateway
        .register("SELECT COUNT(*) FROM S_Msmt", 7.5)
        .unwrap();
    assert!(gateway.worker_loads().iter().any(|&l| l > 0.0));
    assert!(gateway.deregister(id));
    assert!(gateway.worker_loads().iter().all(|&l| l == 0.0));
}
