//! Shared helpers for the repo-level integration suites.
//!
//! The federation- and planner-equivalence suites check the same invariant
//! from two angles — every execution strategy must return the same answer
//! *set* — so they share one canonical form, one fixed query corpus and one
//! property-based query generator instead of forking them per suite.
//!
//! The generative suites read the `PROPTEST_CASES` environment variable
//! ([`proptest_cases`]), so CI can dial coverage up (or a quick local run
//! down) without editing test code.

#![allow(dead_code)] // each test binary uses the subset it needs

use optique::SparqlResults;
use proptest::prelude::*;

/// Canonical form for answer-set comparison: the variable header plus
/// sorted debug-rendered rows.
pub fn canon(results: &SparqlResults) -> (Vec<String>, Vec<String>) {
    let vars = results.vars().to_vec();
    let mut rows: Vec<String> = results
        .rows()
        .iter()
        .map(|row| format!("{row:?}"))
        .collect();
    rows.sort();
    (vars, rows)
}

/// Number of generated cases for a property suite: the `PROPTEST_CASES`
/// environment variable when set (CI dials coverage up without code
/// edits), `default` otherwise.
pub fn proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Handwritten queries mirroring the conformance suite's end-to-end
/// section: taxonomy rewriting, joins, OPTIONAL, UNION, FILTER, aggregates,
/// modifiers and ASK, all over the Siemens deployment.
pub const FIXED_QUERIES: &[&str] = &[
    "SELECT ?s WHERE { ?s a sie:Sensor }",
    "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }",
    "SELECT ?t WHERE { ?t a sie:PowerGeneratingAppliance }",
    "SELECT ?t ?m WHERE { ?t a sie:Turbine ; sie:hasModel ?m }",
    "SELECT ?t ?m ?c WHERE { ?t a sie:Turbine ; sie:hasModel ?m . \
     OPTIONAL { ?t sie:locatedIn ?c } FILTER(REGEX(?m, \"^SGT\")) } ORDER BY ?m LIMIT 7",
    "SELECT DISTINCT ?s WHERE { \
     { ?s a sie:TemperatureSensor } UNION { ?s a sie:PressureSensor } }",
    "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?a sie:inAssembly ?s } \
     GROUP BY ?a ORDER BY DESC(?n) LIMIT 5",
    "SELECT ?a ?s WHERE { ?a sie:inAssembly ?s . ?s a sie:TemperatureSensor }",
    // Adjacent groups create residual joins the planner may reorder and
    // semi-join; textual order puts the wide scan first on purpose.
    "SELECT ?a ?s WHERE { { ?a sie:inAssembly ?s } { ?s a sie:TemperatureSensor } }",
    "SELECT ?t ?m WHERE { { ?t sie:hasModel ?m } { ?t a sie:GasTurbine } }",
    // A nested OPTIONAL inside a restricted sibling: pushdown below a left
    // join would flip matches into unbound survivors — the planner must
    // leave this subtree unrestricted (regression for exactly that bug).
    "SELECT ?s ?a ?m WHERE { { ?s a sie:TemperatureSensor } \
     { { ?a sie:inAssembly ?s } OPTIONAL { ?s sie:hasModel ?m } } }",
    "SELECT ?x WHERE { ?x a sie:Sensor } ORDER BY ?x LIMIT 10 OFFSET 5",
    "ASK { ?s a sie:RotorSpeedSensor }",
    "ASK { ?s a sie:VibrationSensor }",
    "SELECT ?x WHERE { ?x a sie:DiagnosticMessage }",
];

/// Classes the generator draws from (all mapped, with deliberately varied
/// cardinalities so the planner sees real ordering choices).
pub const CLASSES: [&str; 7] = [
    "Sensor",
    "TemperatureSensor",
    "PressureSensor",
    "Turbine",
    "GasTurbine",
    "MonitoringDevice",
    "Assembly",
];

/// The instance-data namespace the Siemens deployment mints IRIs in —
/// constant-anchored shapes below name individuals directly, which inverts
/// to a filter on the anchored table's key column.
pub const DATA_NS: &str = "http://siemens.example/data/";

/// Fixtures for the **streaming** differential oracle: a deployment whose
/// static side is big enough to partition, whose stream hash-partitions on
/// the sensor key, and whose TBox carries no integrity constraints — so
/// window-restriction pushdown is admissible and the oracle exercises both
/// the restricted and the unrestricted distributed paths.
pub mod streaming {
    use optique::OptiquePlatform;
    use optique_mapping::{IriTemplate, MappingAssertion, MappingCatalog, TermMap};
    use optique_ontology::{Axiom, BasicConcept, Ontology};
    use optique_rdf::{Datatype, Iri, Namespaces};
    use optique_relational::{table::table_of, ColumnType, Database, Value};
    use optique_starql::StreamToRdf;
    use proptest::prelude::*;

    /// Ontology namespace.
    pub const SIE: &str = "http://siemens.example/ontology#";
    /// Instance namespace.
    pub const DATA: &str = "http://siemens.example/data/";
    /// Sensors in the deployment (enough rows that the partition advisor
    /// may shard the static side too).
    pub const SENSORS: i64 = 64;
    /// Sensor ids the stream generator draws from (a subset, so windows
    /// overlap heavily across cases).
    pub const STREAM_SENSORS: i64 = 16;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("{SIE}{s}"))
    }

    /// One measurement row: `(ts, sensor_id, value, event)`.
    pub fn msmt(ts: i64, sensor: i64, value: f64, failure: bool) -> Vec<Value> {
        vec![
            Value::Timestamp(ts),
            Value::Int(sensor),
            Value::Float(value),
            if failure {
                Value::text("failure")
            } else {
                Value::Null
            },
        ]
    }

    /// A deterministic ramp stream: every sensor reports each second over
    /// `600s..=612s`; even sensors rise (and fail at 609 s), odd sensors
    /// fall.
    pub fn ramp_stream() -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for i in 0..13i64 {
            let ts = 600_000 + i * 1_000;
            for sensor in 0..STREAM_SENSORS {
                let rising = sensor % 2 == 0;
                let value = if rising {
                    60.0 + i as f64
                } else {
                    90.0 - i as f64
                };
                rows.push(msmt(ts, sensor, value, rising && i == 9));
            }
        }
        rows
    }

    /// Builds the deployment platform over the given stream rows.
    pub fn deployment(stream_rows: Vec<Vec<Value>>) -> OptiquePlatform {
        let mut db = Database::new();
        db.put_table(
            "assemblies",
            table_of(
                "assemblies",
                &[("aid", ColumnType::Int)],
                (0..8).map(|a| vec![Value::Int(a)]).collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "sensors",
            table_of(
                "sensors",
                &[
                    ("sid", ColumnType::Int),
                    ("aid", ColumnType::Int),
                    ("kind", ColumnType::Text),
                ],
                (0..SENSORS)
                    .map(|s| {
                        vec![
                            Value::Int(s),
                            Value::Int(s % 8),
                            Value::text(if s % 2 == 0 {
                                "temperature"
                            } else {
                                "pressure"
                            }),
                        ]
                    })
                    .collect(),
            )
            .unwrap(),
        );
        db.put_table(
            "S_Msmt",
            table_of(
                "S_Msmt",
                &[
                    ("ts", ColumnType::Timestamp),
                    ("sensor_id", ColumnType::Int),
                    ("value", ColumnType::Float),
                    ("event", ColumnType::Text),
                ],
                stream_rows,
            )
            .unwrap(),
        );

        // Subclass + domain/range only: no functional/disjointness
        // constraints, so window restriction stays admissible.
        let mut onto = Ontology::new();
        onto.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("TemperatureSensor")),
            BasicConcept::atomic(iri("Sensor")),
        ));
        onto.add_axiom(Axiom::subclass(
            BasicConcept::atomic(iri("PressureSensor")),
            BasicConcept::atomic(iri("Sensor")),
        ));
        onto.add_axiom(Axiom::domain(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Assembly")),
        ));
        onto.add_axiom(Axiom::range(
            iri("inAssembly"),
            BasicConcept::atomic(iri("Sensor")),
        ));

        let mut maps = MappingCatalog::new();
        maps.add(
            MappingAssertion::class(
                "assembly",
                iri("Assembly"),
                "SELECT aid FROM assemblies",
                TermMap::template(&format!("{DATA}assembly/{{aid}}")),
            )
            .with_key(vec!["aid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::class(
                "sensor",
                iri("Sensor"),
                "SELECT sid FROM sensors",
                TermMap::template(&format!("{DATA}sensor/{{sid}}")),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::class(
                "temp_sensor",
                iri("TemperatureSensor"),
                "SELECT sid FROM sensors WHERE kind = 'temperature'",
                TermMap::template(&format!("{DATA}sensor/{{sid}}")),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::class(
                "pressure_sensor",
                iri("PressureSensor"),
                "SELECT sid FROM sensors WHERE kind = 'pressure'",
                TermMap::template(&format!("{DATA}sensor/{{sid}}")),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::property(
                "in_assembly",
                iri("inAssembly"),
                "SELECT aid, sid FROM sensors",
                TermMap::template(&format!("{DATA}assembly/{{aid}}")),
                TermMap::template(&format!("{DATA}sensor/{{sid}}")),
            )
            .with_key(vec!["aid".into(), "sid".into()]),
        )
        .unwrap();
        maps.add(
            MappingAssertion::property(
                "serial",
                iri("hasSerial"),
                "SELECT sid FROM sensors",
                TermMap::template(&format!("{DATA}sensor/{{sid}}")),
                TermMap::column("sid", Datatype::Integer),
            )
            .with_key(vec!["sid".into()]),
        )
        .unwrap();

        let stream_to_rdf = StreamToRdf {
            timestamp_col: "ts".into(),
            subject: IriTemplate::parse(&format!("{DATA}sensor/{{sensor_id}}")).unwrap(),
            value_property: iri("hasValue"),
            value_col: "value".into(),
            value_datatype: Datatype::Double,
            event_col: Some("event".into()),
            event_classes: vec![("failure".into(), iri("showsFailure"))],
        };
        OptiquePlatform::deploy(
            db,
            onto,
            Namespaces::with_w3c_defaults(),
            maps,
            stream_to_rdf,
        )
    }

    /// One generated oracle case: a STARQL program plus the stream it runs
    /// over.
    #[derive(Clone, Debug)]
    pub struct StreamingCase {
        /// The STARQL text.
        pub text: String,
        /// Measurement rows for `S_Msmt`.
        pub rows: Vec<Vec<Value>>,
    }

    /// Renders a STARQL program from shape parameters. Shapes cover: the
    /// Figure 1 monotonic macro, threshold and failure-event EXISTS
    /// conditions, FILTER-narrowed stream-static joins (tiny binding sets
    /// → shard pruning), UNION WHERE clauses, a negated HAVING (restriction
    /// provably unsafe → unrestricted scatter), and a HAVING-local subject
    /// variable (likewise unrestricted).
    pub fn program(shape: usize, range_s: i64, slide_s: i64, pulse: bool, knob: i64) -> String {
        let header = format!("PREFIX sie: <{SIE}>\nPREFIX : <{SIE}>\nCREATE STREAM S_out AS\n");
        let window = format!(
            "FROM STREAM S_Msmt [NOW-\"PT{range_s}S\"^^xsd:duration, NOW]->\"PT{slide_s}S\"^^xsd:duration\n"
        );
        let pulse = if pulse {
            "USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"PT1S\"\n"
        } else {
            ""
        };
        let threshold = 60 + (knob % 30);
        let serial_cap = 1 + (knob % 5);
        let (construct, where_clause, having) = match shape % 7 {
            0 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :MonInc }",
                "WHERE { ?c1 sie:inAssembly ?c2 }".to_string(),
                "HAVING MONOTONIC.HAVING(?c2, sie:hasValue)\n\
                 CREATE AGGREGATE MONOTONIC:HAVING ($var, $attr) AS\n\
                 HAVING EXISTS ?k IN seq: GRAPH ?k { $var sie:showsFailure } AND\n\
                 FORALL ?i < ?j IN seq, ?x, ?y:\n\
                 IF ( ?i, ?j < ?k AND GRAPH ?i {$var $attr ?x} AND GRAPH ?j {$var $attr ?y}) THEN ?x<=?y"
                    .to_string(),
            ),
            1 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :Hot }",
                "WHERE { ?c2 a sie:TemperatureSensor }".to_string(),
                format!(
                    "HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?v }} AND ?v >= {threshold}"
                ),
            ),
            2 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :Failed }",
                "WHERE { ?c1 sie:inAssembly ?c2 }".to_string(),
                "HAVING EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:showsFailure }".to_string(),
            ),
            3 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :Watched }",
                format!(
                    "WHERE {{ ?c1 sie:inAssembly ?c2 . ?c2 sie:hasSerial ?n . FILTER(?n < {serial_cap}) }}"
                ),
                format!(
                    "HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?v }} AND ?v >= {threshold}"
                ),
            ),
            4 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :Active }",
                "WHERE { { ?c2 a sie:TemperatureSensor } UNION { ?c1 sie:inAssembly ?c2 } }"
                    .to_string(),
                format!(
                    "HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:hasValue ?v }} AND ?v >= {threshold}"
                ),
            ),
            5 => (
                "CONSTRUCT GRAPH NOW { ?c2 a :Quiet }",
                "WHERE { ?c1 sie:inAssembly ?c2 }".to_string(),
                // Negation: restriction-unsafe — distributed ticks must
                // ship the full window and still agree.
                "HAVING NOT EXISTS ?k IN seq: GRAPH ?k { ?c2 sie:showsFailure }".to_string(),
            ),
            _ => (
                "CONSTRUCT GRAPH NOW { ?c2 a :NearActivity }",
                "WHERE { ?c1 sie:inAssembly ?c2 }".to_string(),
                // HAVING-local subject ?c3 ranges over the whole window:
                // restriction-unsafe, unrestricted scatter.
                format!(
                    "HAVING EXISTS ?k IN seq: GRAPH ?k {{ ?c3 sie:hasValue ?v }} AND ?v >= {threshold}"
                ),
            ),
        };
        format!("{header}{construct}\n{window}{pulse}{where_clause}\nSEQUENCE BY StdSeq AS seq\n{having}")
    }

    /// Renders an **aggregate-HAVING** program over the stream-static
    /// join: shapes 0–5 are pure aggregate threshold trees
    /// (COUNT/SUM/AVG/MIN/MAX and an AND/NOT combination — all
    /// pane-combinable, so distributed ticks answer from shard-local pane
    /// partials); shape 6 mixes in an EXISTS graph condition, which the
    /// pane analysis must decline (ticks fall back to full-window
    /// shipping). `mode` is the relation-to-stream operator (`""` /
    /// `"RSTREAM"` / `"ISTREAM"` / `"DSTREAM"`).
    pub fn agg_program(
        shape: usize,
        mode: &str,
        range_s: i64,
        slide_s: i64,
        pulse: bool,
        knob: i64,
    ) -> String {
        let header =
            format!("PREFIX sie: <{SIE}>\nPREFIX : <{SIE}>\nCREATE STREAM S_out AS {mode}\n");
        let window = format!(
            "FROM STREAM S_Msmt [NOW-\"PT{range_s}S\"^^xsd:duration, NOW]->\"PT{slide_s}S\"^^xsd:duration\n"
        );
        let pulse = if pulse {
            "USING PULSE WITH START = \"00:10:00CET\", FREQUENCY = \"PT1S\"\n"
        } else {
            ""
        };
        // Thresholds span the generated value band (whole numbers only:
        // whole-valued f64 sums are exact, so pane-merge order cannot
        // flip a threshold).
        let threshold = 55 + (knob % 40);
        let count_cap = 1 + (knob % 20);
        let having = match shape % 7 {
            0 => format!("HAVING COUNT(?c2, sie:hasValue) >= {count_cap}"),
            1 => format!("HAVING SUM(?c2, sie:hasValue) >= {}", threshold * 5),
            2 => format!("HAVING AVG(?c2, sie:hasValue) >= {threshold}"),
            3 => format!("HAVING MIN(?c2, sie:hasValue) >= {threshold}"),
            4 => format!("HAVING MAX(?c2, sie:hasValue) >= {threshold}"),
            5 => format!(
                "HAVING MAX(?c2, sie:hasValue) >= {threshold} AND \
                 NOT COUNT(?c2, sie:hasValue) > {count_cap}"
            ),
            _ => format!(
                "HAVING AVG(?c2, sie:hasValue) >= {threshold} AND \
                 EXISTS ?k IN seq: GRAPH ?k {{ ?c2 sie:showsFailure }}"
            ),
        };
        format!(
            "{header}CONSTRUCT GRAPH NOW {{ ?c2 a :AggAlarm }}\n\
             {window}{pulse}WHERE {{ ?c1 sie:inAssembly ?c2 }}\n\
             SEQUENCE BY StdSeq AS seq\n{having}"
        )
    }

    /// Property-based generator for the **pane** oracle: aggregate program
    /// shape × output mode × window geometry × a generated whole-valued
    /// measurement stream (whole values keep float sums order-exact).
    pub fn pane_case_strategy() -> impl Strategy<Value = StreamingCase> {
        let row = (0..STREAM_SENSORS, 0i64..12_000, 0i64..100, 0u32..12).prop_map(
            |(sensor, dt, value, failure)| msmt(600_000 + dt, sensor, value as f64, failure == 0),
        );
        (
            (
                0usize..7,
                prop_oneof![Just(""), Just("ISTREAM"), Just("DSTREAM")],
                prop_oneof![Just(2i64), Just(5i64), Just(10i64)],
                prop_oneof![Just(1i64), Just(2i64)],
            ),
            (0u32..2, 0i64..100, proptest::collection::vec(row, 0..100)),
        )
            .prop_map(|((shape, mode, range_s, slide_s), (pulse, knob, rows))| {
                StreamingCase {
                    text: agg_program(shape, mode, range_s, slide_s, pulse == 0, knob),
                    rows,
                }
            })
    }

    /// Property-based generator of oracle cases: program shape × window
    /// geometry × pulse × a generated measurement stream.
    pub fn case_strategy() -> impl Strategy<Value = StreamingCase> {
        let row = (0..STREAM_SENSORS, 0i64..12_000, 0u32..1000, 0u32..12).prop_map(
            |(sensor, dt, centivalue, failure)| {
                msmt(600_000 + dt, sensor, centivalue as f64 / 10.0, failure == 0)
            },
        );
        (
            (
                0usize..7,
                prop_oneof![Just(2i64), Just(5i64), Just(10i64)],
                prop_oneof![Just(1i64), Just(2i64)],
            ),
            (0u32..2, 0i64..100, proptest::collection::vec(row, 0..100)),
        )
            .prop_map(
                |((shape, range_s, slide_s), (pulse, knob, rows))| StreamingCase {
                    text: program(shape, range_s, slide_s, pulse == 0, knob),
                    rows,
                },
            )
    }
}

/// A generator of query texts over the Siemens vocabulary: single BGPs,
/// two-branch UNIONs, OPTIONAL extensions, FILTERed joins, adjacent
/// subgroups (residual joins the planner reorders / semi-joins),
/// multi-atom and multi-table join chains (joins *inside* one unfolded
/// fragment — the co-partitioning unit), skewed joins through the turbine
/// taxonomy, and partition-key-anchored constants whose tiny binding sets
/// drive shard routing and pruning. Type-mismatch combinations (e.g.
/// `hasModel` on a sensor class) are deliberately kept — they exercise the
/// empty-result paths, where equivalence must also hold.
pub fn query_strategy() -> impl Strategy<Value = String> {
    (0usize..7, 0usize..7, 0usize..12, 0usize..3, 0usize..20).prop_map(
        |(c1, c2, shape, filter, anchor)| {
            let a = CLASSES[c1];
            let b = CLASSES[c2];
            let filter = match filter {
                0 => "",
                1 => "FILTER(REGEX(?m, \"^SGT\")) ",
                _ => "FILTER(?m > \"S\") ",
            };
            match shape {
                0 => format!("SELECT ?x WHERE {{ ?x a sie:{a} }}"),
                1 => format!(
                    "SELECT DISTINCT ?x WHERE {{ {{ ?x a sie:{a} }} UNION {{ ?x a sie:{b} }} }}"
                ),
                2 => format!(
                    "SELECT ?x ?m WHERE {{ ?x a sie:{a} . \
                     OPTIONAL {{ ?x sie:hasModel ?m }} {filter}}}"
                ),
                3 => format!(
                    "SELECT ?x ?s WHERE {{ ?x a sie:{a} . OPTIONAL {{ ?x sie:inAssembly ?s }} }}"
                ),
                4 => format!(
                    "SELECT ?x ?m WHERE {{ \
                     {{ ?x a sie:{a} . ?x sie:hasModel ?m }} UNION {{ ?x a sie:{b} }} {filter}}}"
                ),
                // Adjacent groups: a residual join between separately-unfolded
                // BGPs — the planner's reorder/semi-join unit.
                5 => {
                    format!(
                        "SELECT ?x ?s WHERE {{ {{ ?x sie:inAssembly ?s }} {{ ?s a sie:{a} }} }}"
                    )
                }
                6 => format!(
                    "SELECT ?x ?s ?m WHERE {{ {{ ?x sie:inAssembly ?s }} {{ ?s a sie:{a} }} \
                     OPTIONAL {{ ?x sie:hasModel ?m }} {filter}}}"
                ),
                // OPTIONAL nested inside a restricted sibling subgroup: the
                // planner must not push the class bindings below the left join.
                7 => format!(
                    "SELECT ?x ?s ?m WHERE {{ {{ ?s a sie:{a} }} \
                     {{ {{ ?x sie:inAssembly ?s }} OPTIONAL {{ ?s sie:hasModel ?m }} }} }}"
                ),
                // Multi-atom BGP: the join lands *inside* each unfolded
                // fragment (sensors ⋈ sensors on the sensor key) — the
                // co-partitioning case shard routing must keep complete.
                8 => format!("SELECT ?x ?s WHERE {{ ?x sie:inAssembly ?s . ?s a sie:{a} }}"),
                // Multi-table chain through the part-whole hierarchy:
                // assemblies ⋈ sensors in one fragment, replicated ⋈
                // partitioned.
                9 => format!(
                    "SELECT ?x ?t ?s WHERE {{ ?x sie:partOf ?t . ?x sie:inAssembly ?s . \
                     ?s a sie:{a} }}"
                ),
                // Skewed join: turbine models/kinds concentrate on a few
                // values, so the restriction lists repeat heavily.
                10 => format!(
                    "SELECT ?x ?t ?m WHERE {{ {{ ?x sie:partOf ?t }} {{ ?t a sie:{b} }} \
                     {{ ?t sie:hasModel ?m }} {filter}}}"
                ),
                // Partition-key anchor: a constant assembly pins the sensor
                // set to at most a handful of keys — the selective binding
                // list that makes shard routing actually prune.
                _ => format!(
                    "SELECT ?s WHERE {{ {{ <{DATA_NS}assembly/{anchor}> sie:inAssembly ?s }} \
                     {{ ?s a sie:{a} }} }}"
                ),
            }
        },
    )
}
