//! Shared helpers for the repo-level integration suites.
//!
//! The federation- and planner-equivalence suites check the same invariant
//! from two angles — every execution strategy must return the same answer
//! *set* — so they share one canonical form, one fixed query corpus and one
//! property-based query generator instead of forking them per suite.
//!
//! The generative suites read the `PROPTEST_CASES` environment variable
//! ([`proptest_cases`]), so CI can dial coverage up (or a quick local run
//! down) without editing test code.

#![allow(dead_code)] // each test binary uses the subset it needs

use optique::SparqlResults;
use proptest::prelude::*;

/// Canonical form for answer-set comparison: the variable header plus
/// sorted debug-rendered rows.
pub fn canon(results: &SparqlResults) -> (Vec<String>, Vec<String>) {
    let vars = results.vars().to_vec();
    let mut rows: Vec<String> = results
        .rows()
        .iter()
        .map(|row| format!("{row:?}"))
        .collect();
    rows.sort();
    (vars, rows)
}

/// Number of generated cases for a property suite: the `PROPTEST_CASES`
/// environment variable when set (CI dials coverage up without code
/// edits), `default` otherwise.
pub fn proptest_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Handwritten queries mirroring the conformance suite's end-to-end
/// section: taxonomy rewriting, joins, OPTIONAL, UNION, FILTER, aggregates,
/// modifiers and ASK, all over the Siemens deployment.
pub const FIXED_QUERIES: &[&str] = &[
    "SELECT ?s WHERE { ?s a sie:Sensor }",
    "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }",
    "SELECT ?t WHERE { ?t a sie:PowerGeneratingAppliance }",
    "SELECT ?t ?m WHERE { ?t a sie:Turbine ; sie:hasModel ?m }",
    "SELECT ?t ?m ?c WHERE { ?t a sie:Turbine ; sie:hasModel ?m . \
     OPTIONAL { ?t sie:locatedIn ?c } FILTER(REGEX(?m, \"^SGT\")) } ORDER BY ?m LIMIT 7",
    "SELECT DISTINCT ?s WHERE { \
     { ?s a sie:TemperatureSensor } UNION { ?s a sie:PressureSensor } }",
    "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?a sie:inAssembly ?s } \
     GROUP BY ?a ORDER BY DESC(?n) LIMIT 5",
    "SELECT ?a ?s WHERE { ?a sie:inAssembly ?s . ?s a sie:TemperatureSensor }",
    // Adjacent groups create residual joins the planner may reorder and
    // semi-join; textual order puts the wide scan first on purpose.
    "SELECT ?a ?s WHERE { { ?a sie:inAssembly ?s } { ?s a sie:TemperatureSensor } }",
    "SELECT ?t ?m WHERE { { ?t sie:hasModel ?m } { ?t a sie:GasTurbine } }",
    // A nested OPTIONAL inside a restricted sibling: pushdown below a left
    // join would flip matches into unbound survivors — the planner must
    // leave this subtree unrestricted (regression for exactly that bug).
    "SELECT ?s ?a ?m WHERE { { ?s a sie:TemperatureSensor } \
     { { ?a sie:inAssembly ?s } OPTIONAL { ?s sie:hasModel ?m } } }",
    "SELECT ?x WHERE { ?x a sie:Sensor } ORDER BY ?x LIMIT 10 OFFSET 5",
    "ASK { ?s a sie:RotorSpeedSensor }",
    "ASK { ?s a sie:VibrationSensor }",
    "SELECT ?x WHERE { ?x a sie:DiagnosticMessage }",
];

/// Classes the generator draws from (all mapped, with deliberately varied
/// cardinalities so the planner sees real ordering choices).
pub const CLASSES: [&str; 7] = [
    "Sensor",
    "TemperatureSensor",
    "PressureSensor",
    "Turbine",
    "GasTurbine",
    "MonitoringDevice",
    "Assembly",
];

/// The instance-data namespace the Siemens deployment mints IRIs in —
/// constant-anchored shapes below name individuals directly, which inverts
/// to a filter on the anchored table's key column.
pub const DATA_NS: &str = "http://siemens.example/data/";

/// A generator of query texts over the Siemens vocabulary: single BGPs,
/// two-branch UNIONs, OPTIONAL extensions, FILTERed joins, adjacent
/// subgroups (residual joins the planner reorders / semi-joins),
/// multi-atom and multi-table join chains (joins *inside* one unfolded
/// fragment — the co-partitioning unit), skewed joins through the turbine
/// taxonomy, and partition-key-anchored constants whose tiny binding sets
/// drive shard routing and pruning. Type-mismatch combinations (e.g.
/// `hasModel` on a sensor class) are deliberately kept — they exercise the
/// empty-result paths, where equivalence must also hold.
pub fn query_strategy() -> impl Strategy<Value = String> {
    (0usize..7, 0usize..7, 0usize..12, 0usize..3, 0usize..20).prop_map(
        |(c1, c2, shape, filter, anchor)| {
            let a = CLASSES[c1];
            let b = CLASSES[c2];
            let filter = match filter {
                0 => "",
                1 => "FILTER(REGEX(?m, \"^SGT\")) ",
                _ => "FILTER(?m > \"S\") ",
            };
            match shape {
                0 => format!("SELECT ?x WHERE {{ ?x a sie:{a} }}"),
                1 => format!(
                    "SELECT DISTINCT ?x WHERE {{ {{ ?x a sie:{a} }} UNION {{ ?x a sie:{b} }} }}"
                ),
                2 => format!(
                    "SELECT ?x ?m WHERE {{ ?x a sie:{a} . \
                     OPTIONAL {{ ?x sie:hasModel ?m }} {filter}}}"
                ),
                3 => format!(
                    "SELECT ?x ?s WHERE {{ ?x a sie:{a} . OPTIONAL {{ ?x sie:inAssembly ?s }} }}"
                ),
                4 => format!(
                    "SELECT ?x ?m WHERE {{ \
                     {{ ?x a sie:{a} . ?x sie:hasModel ?m }} UNION {{ ?x a sie:{b} }} {filter}}}"
                ),
                // Adjacent groups: a residual join between separately-unfolded
                // BGPs — the planner's reorder/semi-join unit.
                5 => {
                    format!(
                        "SELECT ?x ?s WHERE {{ {{ ?x sie:inAssembly ?s }} {{ ?s a sie:{a} }} }}"
                    )
                }
                6 => format!(
                    "SELECT ?x ?s ?m WHERE {{ {{ ?x sie:inAssembly ?s }} {{ ?s a sie:{a} }} \
                     OPTIONAL {{ ?x sie:hasModel ?m }} {filter}}}"
                ),
                // OPTIONAL nested inside a restricted sibling subgroup: the
                // planner must not push the class bindings below the left join.
                7 => format!(
                    "SELECT ?x ?s ?m WHERE {{ {{ ?s a sie:{a} }} \
                     {{ {{ ?x sie:inAssembly ?s }} OPTIONAL {{ ?s sie:hasModel ?m }} }} }}"
                ),
                // Multi-atom BGP: the join lands *inside* each unfolded
                // fragment (sensors ⋈ sensors on the sensor key) — the
                // co-partitioning case shard routing must keep complete.
                8 => format!("SELECT ?x ?s WHERE {{ ?x sie:inAssembly ?s . ?s a sie:{a} }}"),
                // Multi-table chain through the part-whole hierarchy:
                // assemblies ⋈ sensors in one fragment, replicated ⋈
                // partitioned.
                9 => format!(
                    "SELECT ?x ?t ?s WHERE {{ ?x sie:partOf ?t . ?x sie:inAssembly ?s . \
                     ?s a sie:{a} }}"
                ),
                // Skewed join: turbine models/kinds concentrate on a few
                // values, so the restriction lists repeat heavily.
                10 => format!(
                    "SELECT ?x ?t ?m WHERE {{ {{ ?x sie:partOf ?t }} {{ ?t a sie:{b} }} \
                     {{ ?t sie:hasModel ?m }} {filter}}}"
                ),
                // Partition-key anchor: a constant assembly pins the sensor
                // set to at most a handful of keys — the selective binding
                // list that makes shard routing actually prune.
                _ => format!(
                    "SELECT ?s WHERE {{ {{ <{DATA_NS}assembly/{anchor}> sie:inAssembly ?s }} \
                     {{ ?s a sie:{a} }} }}"
                ),
            }
        },
    )
}
