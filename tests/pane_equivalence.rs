//! Incremental window aggregation, proven by a **differential oracle**:
//! for every aggregate-HAVING continuous query — a fixed suite plus the
//! property-based generator in `tests/common` — three backends must emit
//! identical output streams at every pulse instant:
//!
//! 1. single-node ticks (the reference),
//! 2. distributed ticks answering from **shard-local pane partials**
//!    (the default once the pane analysis accepts the HAVING tree), and
//! 3. distributed ticks with pane aggregation disabled, i.e. full-window
//!    rescans (`set_pane_aggregation(false)`),
//!
//! at 1, 2, 4 and 8 workers. Alongside the oracle, the suite pins down
//! that the pane path actually engages on combinable trees (warm ticks
//! hit the per-shard pane stores), that mixed aggregate/graph HAVING
//! trees are *declined* and fall back to full-window shipping without
//! changing answers, that IStream/DStream delta modes stay equivalent
//! while genuinely emitting deltas, and that mid-stream appends — both
//! novelty-overlay writes and `append_stream`-driven ticking — keep the
//! backends in agreement.
//!
//! Generated streams carry whole-numbered values only: whole-valued f64
//! sums are exact, so pane-merge order cannot flip a SUM/AVG threshold
//! and every divergence the oracle reports is a real bug.

mod common;

use common::proptest_cases;
use common::streaming::{self, StreamingCase};
use optique::OptiquePlatform;
use optique_rdf::Triple;
use optique_starql::TickOutput;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Pulse instants the oracle ticks over (the generated streams live in
/// `600s..612s`; one extra tick past the end covers empty trailing
/// windows).
fn tick_instants() -> impl Iterator<Item = i64> {
    (600_000..=613_000).step_by(1_000)
}

fn canon_triples(triples: &[Triple]) -> Vec<String> {
    let mut out: Vec<String> = triples.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

/// The comparable slice of one tick: everything that defines the output
/// stream. Shipping accounting (`tuples_in_window`, `pane_hits`, …)
/// legitimately differs between backends and is asserted separately.
fn output_stream(tick: &TickOutput) -> (u64, usize, usize, Vec<String>) {
    (
        tick.window_id,
        tick.satisfied,
        tick.bindings_checked,
        canon_triples(&tick.triples),
    )
}

/// Registers `text` distributed over `workers`, optionally disabling the
/// pane path so ticks rescan full windows.
fn distributed(case: &StreamingCase, workers: usize, panes: bool) -> OptiquePlatform {
    let p = streaming::deployment(case.rows.clone());
    p.register_starql_distributed(&case.text, workers)
        .unwrap_or_else(|e| {
            panic!(
                "{workers}-worker registration failed for\n{}\n{e}",
                case.text
            )
        });
    if !panes {
        p.set_pane_aggregation(false);
    }
    p
}

/// Asserts single-node ≡ pane-distributed ≡ rescan-distributed output
/// streams for one program over one stream, at every worker count.
fn assert_pane_equivalent(case: &StreamingCase) {
    let single = streaming::deployment(case.rows.clone());
    single
        .register_starql(&case.text)
        .unwrap_or_else(|e| panic!("single-node registration failed for\n{}\n{e}", case.text));
    let reference: Vec<(u64, usize, usize, Vec<String>)> = tick_instants()
        .map(|t| output_stream(&single.tick_all(t).unwrap()[0].1))
        .collect();

    for workers in WORKER_COUNTS {
        for panes in [true, false] {
            let arm = if panes { "pane" } else { "rescan" };
            let p = distributed(case, workers, panes);
            for (instant, expected) in tick_instants().zip(&reference) {
                let outputs = p.tick_all(instant).unwrap_or_else(|e| {
                    panic!(
                        "{workers}-worker {arm} tick {instant} failed for\n{}\n{e}",
                        case.text
                    )
                });
                assert_eq!(
                    &output_stream(&outputs[0].1),
                    expected,
                    "{workers}-worker {arm} tick {instant} diverged for\n{}",
                    case.text
                );
            }
        }
    }
}

// Tests live in a module named after the suite so a bare
// `cargo test pane_equivalence` filter selects them all.
mod pane_equivalence {
    use super::*;

    /// Handwritten programs: COUNT/SUM/AVG/MIN/MAX thresholds, the
    /// AND/NOT combination, and the declined mixed aggregate/graph tree —
    /// each proven equivalent across all three backends.
    #[test]
    fn fixed_suite_is_equivalent() {
        let rows = streaming::ramp_stream();
        for shape in 0..7 {
            assert_pane_equivalent(&StreamingCase {
                text: streaming::agg_program(shape, "", 10, 1, true, 3),
                rows: rows.clone(),
            });
        }
        // A tumbling window (slide == range) and a no-pulse grid: pane
        // width degenerates to the full range.
        assert_pane_equivalent(&StreamingCase {
            text: streaming::agg_program(1, "", 2, 2, false, 12),
            rows: rows.clone(),
        });
        // An empty stream: every group aggregate is absent everywhere.
        assert_pane_equivalent(&StreamingCase {
            text: streaming::agg_program(2, "", 5, 1, true, 0),
            rows: Vec::new(),
        });
    }

    /// The pane path genuinely engages on a combinable tree: warm ticks
    /// answer from the per-shard pane stores (`pane_hits > 0`), and the
    /// platform counters mirror the panel.
    #[test]
    fn combinable_tree_answers_from_panes() {
        let case = StreamingCase {
            text: streaming::agg_program(4, "", 10, 1, true, 30), // MAX ≥ 85
            rows: streaming::ramp_stream(),
        };
        let p = distributed(&case, 4, true);
        for instant in tick_instants() {
            p.tick_all(instant).unwrap();
        }
        let panel = &p.dashboard().panels[0];
        assert!(
            panel.pane_hits > 0,
            "warm ticks must hit the pane stores: {panel:?}"
        );
        assert!(panel.pane_hits + panel.pane_misses > 0);
    }

    /// A mixed aggregate/graph HAVING tree is declined by the pane
    /// analysis: no pane traffic at all, full windows ship instead — and
    /// the fallback was already proven equivalent by the fixed suite.
    #[test]
    fn declined_analysis_falls_back_to_window_shipping() {
        let case = StreamingCase {
            text: streaming::agg_program(6, "", 10, 1, true, 30), // AVG ∧ EXISTS
            rows: streaming::ramp_stream(),
        };
        let p = distributed(&case, 4, true);
        for instant in tick_instants() {
            p.tick_all(instant).unwrap();
        }
        let panel = &p.dashboard().panels[0];
        assert_eq!(
            panel.pane_hits + panel.pane_misses,
            0,
            "declined trees must not touch panes: {panel:?}"
        );
        assert!(
            panel.window_fragments > 0,
            "the fallback ships full windows: {panel:?}"
        );
    }

    /// Disabling pane aggregation is a true kill switch: even a
    /// combinable tree rescans full windows with zero pane traffic.
    #[test]
    fn kill_switch_forces_full_rescans() {
        let case = StreamingCase {
            text: streaming::agg_program(4, "", 10, 1, true, 30),
            rows: streaming::ramp_stream(),
        };
        let p = distributed(&case, 4, false);
        for instant in tick_instants() {
            p.tick_all(instant).unwrap();
        }
        let panel = &p.dashboard().panels[0];
        assert_eq!(panel.pane_hits + panel.pane_misses, 0, "{panel:?}");
        assert!(panel.window_fragments > 0, "{panel:?}");
    }

    /// IStream/DStream delta modes stay equivalent across backends while
    /// genuinely emitting deltas. With `MAX ≥ 85` over the ramp, the odd
    /// (falling) sensors satisfy from the first window and drop out once
    /// their in-window maximum decays below the threshold — so IStream
    /// fires a burst up front then goes quiet, and DStream is quiet up
    /// front then fires a deletion burst. Each backend holds its own
    /// differ state, ticked in lockstep from scratch.
    #[test]
    fn delta_modes_are_equivalent_and_emit_deltas() {
        // Tick past the stream's end so windows decay and empty out.
        let instants = || (600_000..=622_000).step_by(1_000);
        for mode in ["ISTREAM", "DSTREAM"] {
            let case = StreamingCase {
                text: streaming::agg_program(4, mode, 10, 1, true, 30), // MAX ≥ 85
                rows: streaming::ramp_stream(),
            };
            let single = streaming::deployment(case.rows.clone());
            single.register_starql(&case.text).unwrap();
            let reference: Vec<_> = instants()
                .map(|t| output_stream(&single.tick_all(t).unwrap()[0].1))
                .collect();

            let bursts = reference
                .iter()
                .filter(|(_, _, _, triples)| !triples.is_empty())
                .count();
            let quiet_while_satisfied = reference
                .iter()
                .filter(|(_, satisfied, _, triples)| *satisfied > 0 && triples.is_empty())
                .count();
            assert!(bursts > 0, "{mode} never emitted a delta");
            assert!(
                quiet_while_satisfied > 0,
                "{mode} must stay quiet while the relation is stable"
            );

            for workers in WORKER_COUNTS {
                for panes in [true, false] {
                    let p = distributed(&case, workers, panes);
                    for (instant, expected) in instants().zip(&reference) {
                        assert_eq!(
                            &output_stream(&p.tick_all(instant).unwrap()[0].1),
                            expected,
                            "{mode} {workers}-worker (panes={panes}) tick {instant} diverged"
                        );
                    }
                }
            }
        }
    }

    /// Novelty-overlay writes land mid-stream: rows inserted after
    /// registration stay in the unmerged overlay (`novelty_depth > 0`)
    /// yet appear in every subsequent window on all backends — the pane
    /// fragments read the same epoch-pinned view the reference does.
    #[test]
    fn mid_stream_novelty_appends_stay_equivalent() {
        let case = StreamingCase {
            text: streaming::agg_program(4, "", 10, 1, true, 30), // MAX ≥ 85
            rows: streaming::ramp_stream(),
        };
        let single = streaming::deployment(case.rows.clone());
        single.register_starql(&case.text).unwrap();
        let dist = distributed(&case, 4, true);

        // Warm both backends over the base stream.
        for instant in tick_instants() {
            let s = output_stream(&single.tick_all(instant).unwrap()[0].1);
            let d = output_stream(&dist.tick_all(instant).unwrap()[0].1);
            assert_eq!(s, d, "pre-append tick {instant}");
        }

        // Append hot readings for the even (previously sub-threshold)
        // sensors; the write policy keeps them as a novelty overlay.
        let appended: Vec<Vec<optique_relational::Value>> = (613..=616)
            .flat_map(|sec| {
                (0..streaming::STREAM_SENSORS)
                    .filter(|s| s % 2 == 0)
                    .map(move |s| streaming::msmt(sec * 1_000, s, 95.0, false))
            })
            .collect();
        single.insert_static("S_Msmt", appended.clone()).unwrap();
        dist.insert_static("S_Msmt", appended).unwrap();
        assert!(
            dist.novelty_depth() > 0,
            "appended rows must be served from the unmerged overlay"
        );

        let mut post_append_alarms = 0;
        for instant in (614_000..=618_000).step_by(1_000) {
            let s = single.tick_all(instant).unwrap()[0].1.clone();
            let d = dist.tick_all(instant).unwrap()[0].1.clone();
            assert_eq!(
                output_stream(&s),
                output_stream(&d),
                "post-append tick {instant}"
            );
            post_append_alarms += s.satisfied;
        }
        assert!(
            post_append_alarms > 0,
            "the overlay rows must push even sensors over the threshold"
        );
    }

    /// Append-driven ticking matches across backends: the same
    /// `append_stream` call drives the same closed windows on a
    /// single-node and a pane-distributed deployment, producing identical
    /// output streams without any external pulse.
    #[test]
    fn append_driven_ticks_are_equivalent_across_backends() {
        let case = StreamingCase {
            text: streaming::agg_program(4, "", 10, 1, true, 30), // MAX ≥ 85
            rows: streaming::ramp_stream(),
        };
        let single = streaming::deployment(case.rows.clone());
        single.register_starql(&case.text).unwrap();
        let dist = distributed(&case, 4, true);

        let appended: Vec<Vec<optique_relational::Value>> = (613..=617)
            .flat_map(|sec| {
                (0..streaming::STREAM_SENSORS)
                    .map(move |s| streaming::msmt(sec * 1_000, s, 90.0, false))
            })
            .collect();
        let s_driven = single.append_stream("S_Msmt", appended.clone()).unwrap();
        let d_driven = dist.append_stream("S_Msmt", appended).unwrap();

        assert!(!s_driven.is_empty(), "the append must drive ticks");
        assert_eq!(s_driven.len(), d_driven.len(), "same driven window count");
        for ((s_id, s_tick), (d_id, d_tick)) in s_driven.iter().zip(&d_driven) {
            assert_eq!(s_id, d_id);
            assert_eq!(
                output_stream(s_tick),
                output_stream(d_tick),
                "driven window {} diverged",
                s_tick.window_id
            );
        }
        assert!(
            s_driven.iter().any(|(_, t)| t.satisfied > 0),
            "the hot appended readings must raise alarms"
        );
    }

    // ---- generated suite -----------------------------------------------

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(proptest_cases(8)))]

        /// Generated aggregate programs (all five aggregates, AND/NOT
        /// combinations, the declined mixed shape, every output mode)
        /// over generated whole-valued streams: pane-distributed and
        /// rescan-distributed ticks (1/2/4/8 workers) reproduce
        /// single-node output streams exactly.
        #[test]
        fn generated_agg_programs_are_equivalent(case in streaming::pane_case_strategy()) {
            assert_pane_equivalent(&case);
        }
    }
}
