//! Federation equivalence: distributed `query_static` must return exactly
//! the single-node answer *set* — over a fixed suite of handwritten
//! queries and a property-based generator of BGP/UNION/OPTIONAL/FILTER
//! shapes — at 1, 2, 4 and 8 workers.
//!
//! The platform's per-BGP cache is invalidated between runs so every
//! execution genuinely exercises its own backend (otherwise the second run
//! would answer from the first run's cache and the comparison would be
//! vacuous).

use std::sync::OnceLock;

use optique::{OptiquePlatform, SparqlResults};
use optique_siemens::SiemensDeployment;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn platform() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| OptiquePlatform::from_siemens(SiemensDeployment::small()))
}

/// Canonical form for set comparison: sorted debug-rendered rows.
fn canon(results: &SparqlResults) -> (Vec<String>, Vec<String>) {
    let vars = results.vars().to_vec();
    let mut rows: Vec<String> = results
        .rows()
        .iter()
        .map(|row| format!("{row:?}"))
        .collect();
    rows.sort();
    (vars, rows)
}

/// Runs `text` single-node and at every worker count, asserting identical
/// answer sets. Invalidates the BGP cache around each execution.
fn assert_equivalent(text: &str) {
    let p = platform();
    p.bgp_cache().invalidate();
    let single = p
        .query_static(text)
        .unwrap_or_else(|e| panic!("single-node failed for {text}: {e}"));
    for workers in WORKER_COUNTS {
        p.bgp_cache().invalidate();
        let (distributed, stats) = p
            .query_static_distributed_with_stats(text, workers)
            .unwrap_or_else(|e| panic!("{workers}-worker run failed for {text}: {e}"));
        assert_eq!(
            canon(&single),
            canon(&distributed),
            "distributed ≠ single-node at {workers} workers for {text}"
        );
        assert!(
            stats.fragments >= stats.sql_disjuncts.min(1),
            "no fragments shipped at {workers} workers for {text}: {stats:?}"
        );
    }
    p.bgp_cache().invalidate();
}

// ---- fixed suite -------------------------------------------------------

/// Handwritten queries mirroring the conformance suite's end-to-end
/// section: taxonomy rewriting, joins, OPTIONAL, UNION, FILTER, aggregates,
/// modifiers and ASK, all over the Siemens deployment.
#[test]
fn fixed_suite_is_equivalent_across_worker_counts() {
    let queries = [
        "SELECT ?s WHERE { ?s a sie:Sensor }",
        "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }",
        "SELECT ?t WHERE { ?t a sie:PowerGeneratingAppliance }",
        "SELECT ?t ?m WHERE { ?t a sie:Turbine ; sie:hasModel ?m }",
        "SELECT ?t ?m ?c WHERE { ?t a sie:Turbine ; sie:hasModel ?m . \
         OPTIONAL { ?t sie:locatedIn ?c } FILTER(REGEX(?m, \"^SGT\")) } ORDER BY ?m LIMIT 7",
        "SELECT DISTINCT ?s WHERE { \
         { ?s a sie:TemperatureSensor } UNION { ?s a sie:PressureSensor } }",
        "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?a sie:inAssembly ?s } \
         GROUP BY ?a ORDER BY DESC(?n) LIMIT 5",
        "SELECT ?a ?s WHERE { ?a sie:inAssembly ?s . ?s a sie:TemperatureSensor }",
        "SELECT ?x WHERE { ?x a sie:Sensor } ORDER BY ?x LIMIT 10 OFFSET 5",
        "ASK { ?s a sie:RotorSpeedSensor }",
        "ASK { ?s a sie:VibrationSensor }",
        "SELECT ?x WHERE { ?x a sie:DiagnosticMessage }",
    ];
    for text in queries {
        assert_equivalent(text);
    }
}

/// Federated execution populates the same BGP cache: a distributed run
/// primes it, and a later single-node run of the same query hits.
#[test]
fn federated_runs_share_the_bgp_cache() {
    // Own platform: the shared one's cache is invalidated concurrently by
    // the equivalence tests, which would make counter assertions flaky.
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    let text = "SELECT ?t WHERE { ?t a sie:GasTurbine }";
    let (_, cold) = p.query_static_distributed_with_stats(text, 4).unwrap();
    assert_eq!(cold.cache_hits, 0);
    let (_, warm) = p.query_static_with_stats(text).unwrap();
    assert!(
        warm.cache_hits >= 1,
        "single-node reuses the federated fill"
    );
}

// ---- property-based suite ----------------------------------------------

const CLASSES: [&str; 7] = [
    "Sensor",
    "TemperatureSensor",
    "PressureSensor",
    "Turbine",
    "GasTurbine",
    "MonitoringDevice",
    "Assembly",
];

/// A generator of query texts over the Siemens vocabulary: single BGPs,
/// two-branch UNIONs, OPTIONAL extensions and FILTERed joins. Type-mismatch
/// combinations (e.g. `hasModel` on a sensor class) are deliberately kept —
/// they exercise the empty-result paths, where equivalence must also hold.
fn query_strategy() -> impl Strategy<Value = String> {
    (0usize..7, 0usize..7, 0usize..5, 0usize..3).prop_map(|(c1, c2, shape, filter)| {
        let a = CLASSES[c1];
        let b = CLASSES[c2];
        let filter = match filter {
            0 => "",
            1 => "FILTER(REGEX(?m, \"^SGT\")) ",
            _ => "FILTER(?m > \"S\") ",
        };
        match shape {
            0 => format!("SELECT ?x WHERE {{ ?x a sie:{a} }}"),
            1 => format!(
                "SELECT DISTINCT ?x WHERE {{ {{ ?x a sie:{a} }} UNION {{ ?x a sie:{b} }} }}"
            ),
            2 => format!(
                "SELECT ?x ?m WHERE {{ ?x a sie:{a} . \
                 OPTIONAL {{ ?x sie:hasModel ?m }} {filter}}}"
            ),
            3 => format!(
                "SELECT ?x ?s WHERE {{ ?x a sie:{a} . OPTIONAL {{ ?x sie:inAssembly ?s }} }}"
            ),
            _ => format!(
                "SELECT ?x ?m WHERE {{ \
                 {{ ?x a sie:{a} . ?x sie:hasModel ?m }} UNION {{ ?x a sie:{b} }} {filter}}}"
            ),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn generated_queries_are_equivalent(text in query_strategy()) {
        let p = platform();
        p.bgp_cache().invalidate();
        let single = p.query_static(&text);
        prop_assert!(single.is_ok(), "single-node failed for {}: {:?}", text, single.err());
        let single = single.unwrap();
        for workers in WORKER_COUNTS {
            p.bgp_cache().invalidate();
            let distributed = p.query_static_distributed(&text, workers);
            prop_assert!(
                distributed.is_ok(),
                "{} workers failed for {}: {:?}", workers, text, distributed.err()
            );
            prop_assert_eq!(
                canon(&single),
                canon(&distributed.unwrap()),
                "distributed ≠ single-node at {} workers for {}", workers, text
            );
        }
        p.bgp_cache().invalidate();
    }
}
