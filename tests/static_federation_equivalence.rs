//! Federation equivalence: distributed `query_static` must return exactly
//! the single-node answer *set* — over the shared fixed suite of
//! handwritten queries and the shared property-based generator of
//! BGP/UNION/OPTIONAL/FILTER shapes (`tests/common`) — at 1, 2, 4 and 8
//! workers.
//!
//! The platform's per-BGP cache is invalidated between runs so every
//! execution genuinely exercises its own backend (otherwise the second run
//! would answer from the first run's cache and the comparison would be
//! vacuous).

mod common;

use std::sync::OnceLock;

use common::{canon, proptest_cases, query_strategy, FIXED_QUERIES};
use optique::OptiquePlatform;
use optique_siemens::SiemensDeployment;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn platform() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| OptiquePlatform::from_siemens(SiemensDeployment::small()))
}

/// Runs `text` single-node and at every worker count, asserting identical
/// answer sets. Invalidates the BGP cache around each execution.
fn assert_equivalent(text: &str) {
    let p = platform();
    p.bgp_cache().invalidate();
    let single = p
        .query_static(text)
        .unwrap_or_else(|e| panic!("single-node failed for {text}: {e}"));
    for workers in WORKER_COUNTS {
        p.bgp_cache().invalidate();
        let (distributed, stats) = p
            .query_static_distributed_with_stats(text, workers)
            .unwrap_or_else(|e| panic!("{workers}-worker run failed for {text}: {e}"));
        assert_eq!(
            canon(&single),
            canon(&distributed),
            "distributed ≠ single-node at {workers} workers for {text}"
        );
        assert!(
            stats.fragments >= stats.sql_disjuncts.min(1),
            "no fragments shipped at {workers} workers for {text}: {stats:?}"
        );
        assert_eq!(
            stats.coordinator_fallbacks, 0,
            "replicated pools must never fall back for {text}: {stats:?}"
        );
    }
    p.bgp_cache().invalidate();
}

// ---- fixed suite -------------------------------------------------------

#[test]
fn fixed_suite_is_equivalent_across_worker_counts() {
    for text in FIXED_QUERIES {
        assert_equivalent(text);
    }
}

/// Federated execution populates the same BGP cache: a distributed run
/// primes it, and a later single-node run of the same query hits.
#[test]
fn federated_runs_share_the_bgp_cache() {
    // Own platform: the shared one's cache is invalidated concurrently by
    // the equivalence tests, which would make counter assertions flaky.
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    let text = "SELECT ?t WHERE { ?t a sie:GasTurbine }";
    let (_, cold) = p.query_static_distributed_with_stats(text, 4).unwrap();
    assert_eq!(cold.cache_hits, 0);
    let (_, warm) = p.query_static_with_stats(text).unwrap();
    assert!(
        warm.cache_hits >= 1,
        "single-node reuses the federated fill"
    );
}

// ---- property-based suite ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(32)))]
    #[test]
    fn generated_queries_are_equivalent(text in query_strategy()) {
        let p = platform();
        p.bgp_cache().invalidate();
        let single = p.query_static(&text);
        prop_assert!(single.is_ok(), "single-node failed for {}: {:?}", text, single.err());
        let single = single.unwrap();
        for workers in WORKER_COUNTS {
            p.bgp_cache().invalidate();
            let distributed = p.query_static_distributed(&text, workers);
            prop_assert!(
                distributed.is_ok(),
                "{} workers failed for {}: {:?}", workers, text, distributed.err()
            );
            prop_assert_eq!(
                canon(&single),
                canon(&distributed.unwrap()),
                "distributed ≠ single-node at {} workers for {}", workers, text
            );
        }
        p.bgp_cache().invalidate();
    }
}
