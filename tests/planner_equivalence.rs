//! Differential plan equivalence: every plan the statistics-driven planner
//! emits (join reordering + semi-join pushdown) must return an answer set
//! identical to the naive (planner-disabled) plan — on the shared fixed
//! suite and the shared property-based generator (`tests/common`), both
//! single-node and federated at 1, 2, 4 and 8 workers.
//!
//! Two platforms over the same deployment keep the comparison race-free:
//! one pinned to [`PlannerSettings::disabled`] (the naive oracle), one on
//! the default (optimized) settings. No test ever toggles a shared
//! platform's knobs mid-flight.
//!
//! Alongside the oracle, this suite pins down the planner's observable
//! side-channel: stats refresh on `insert_static`, cache interaction under
//! restricted executions, and the dashboard counters that prove fragments
//! actually shipped (and semi-joins actually pruned).

mod common;

use std::sync::OnceLock;

use common::{canon, proptest_cases, query_strategy, FIXED_QUERIES};
use optique::OptiquePlatform;
use optique_relational::Value;
use optique_siemens::SiemensDeployment;
use optique_sparql::PlannerSettings;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The naive oracle: planner disabled, textual join order, no pushdown.
fn naive() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| {
        let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
        p.set_planner_settings(PlannerSettings::disabled());
        p
    })
}

/// The system under test: default (optimized) planner settings.
fn optimized() -> &'static OptiquePlatform {
    static PLATFORM: OnceLock<OptiquePlatform> = OnceLock::new();
    PLATFORM.get_or_init(|| OptiquePlatform::from_siemens(SiemensDeployment::small()))
}

/// Asserts the optimized plans for `text` — single-node and at every worker
/// count — return exactly the naive single-node answer set. Caches are
/// invalidated around every run so each execution exercises its own plan.
fn assert_plan_equivalent(text: &str) {
    let n = naive();
    n.bgp_cache().invalidate();
    let reference = n
        .query_static(text)
        .unwrap_or_else(|e| panic!("naive run failed for {text}: {e}"));

    let o = optimized();
    o.bgp_cache().invalidate();
    let single = o
        .query_static(text)
        .unwrap_or_else(|e| panic!("optimized run failed for {text}: {e}"));
    assert_eq!(
        canon(&reference),
        canon(&single),
        "optimized ≠ naive single-node for {text}"
    );

    for workers in WORKER_COUNTS {
        o.bgp_cache().invalidate();
        let (distributed, stats) = o
            .query_static_distributed_with_stats(text, workers)
            .unwrap_or_else(|e| panic!("{workers}-worker optimized run failed for {text}: {e}"));
        assert_eq!(
            canon(&reference),
            canon(&distributed),
            "optimized distributed ≠ naive at {workers} workers for {text}"
        );
        assert!(
            stats.fragments >= stats.sql_disjuncts.min(1),
            "no fragments shipped at {workers} workers for {text}: {stats:?}"
        );
        assert_eq!(
            stats.coordinator_fallbacks, 0,
            "silent coordinator fallback at {workers} workers for {text}: {stats:?}"
        );
    }
    o.bgp_cache().invalidate();
    n.bgp_cache().invalidate();
}

// ---- fixed suite -------------------------------------------------------

#[test]
fn fixed_suite_plans_are_equivalent() {
    for text in FIXED_QUERIES {
        assert_plan_equivalent(text);
    }
}

/// The planner must actually *do* something on the join-shaped queries —
/// otherwise this suite proves nothing.
#[test]
fn planner_reorders_and_pushes_on_join_queries() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    // Textual order puts the wide inAssembly scan first; the planner must
    // flip it and push the temperature-sensor bindings into the scan.
    let text = "SELECT ?a ?s WHERE { { ?a sie:inAssembly ?s } { ?s a sie:TemperatureSensor } }";
    let (_, stats) = p.query_static_with_stats(text).unwrap();
    assert!(stats.join_reorders >= 1, "no reorder happened: {stats:?}");
    assert!(
        stats.semi_joins_pushed >= 1,
        "no semi-join pushed: {stats:?}"
    );
    assert!(
        stats.estimated_rows > 0 && stats.actual_rows > 0,
        "{stats:?}"
    );
    // The dashboard surfaces the same counters.
    let dash = p.dashboard();
    assert!(dash.total_join_reorders() >= 1);
    assert!(dash.total_semi_joins_pushed() >= 1);
}

/// Semi-join pushdown must shrink what fragments return over the wire on a
/// federated join — naive and optimized platforms, same query, same
/// workers, strictly fewer fetched rows (and identical answers).
#[test]
fn semi_join_pushdown_shrinks_federated_row_traffic() {
    let text = "SELECT ?a ?s WHERE { { ?a sie:inAssembly ?s } { ?s a sie:TemperatureSensor } }";
    let n = OptiquePlatform::from_siemens(SiemensDeployment::small());
    n.set_planner_settings(PlannerSettings::disabled());
    let o = OptiquePlatform::from_siemens(SiemensDeployment::small());

    let (naive_results, naive_stats) = n.query_static_distributed_with_stats(text, 4).unwrap();
    let (opt_results, opt_stats) = o.query_static_distributed_with_stats(text, 4).unwrap();

    assert_eq!(canon(&naive_results), canon(&opt_results));
    assert_eq!(naive_stats.semi_joins_pushed, 0);
    assert!(opt_stats.semi_joins_pushed >= 1, "{opt_stats:?}");
    assert!(
        opt_stats.fragment_rows < naive_stats.fragment_rows,
        "pushdown must shrink fragment traffic: {} !< {}",
        opt_stats.fragment_rows,
        naive_stats.fragment_rows
    );
}

// ---- stats refresh & cache interaction ---------------------------------

/// `insert_static` refreshes the `TableStats` catalog, invalidates the BGP
/// cache, and subsequent plans see the new cardinalities — visible through
/// the planner counters.
#[test]
fn insert_static_refreshes_stats_and_invalidates_cache() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    let text = "SELECT ?t ?m WHERE { { ?t a sie:Turbine } { ?t sie:hasModel ?m } }";

    let (first, cold) = p.query_static_with_stats(text).unwrap();
    assert!(cold.estimated_rows > 0, "planner estimated: {cold:?}");
    let (_, warm) = p.query_static_with_stats(text).unwrap();
    assert!(warm.cache_hits >= 1, "second run answers from cache");

    // Grow the turbines table substantially.
    let stats_before = p.table_stats();
    let rows_before = stats_before.row_count("turbines").unwrap();
    let turbines = p.db().table("turbines").unwrap().clone();
    let id_col = turbines.schema.index_of("tid").expect("turbines.tid");
    let inserted: Vec<Vec<Value>> = (0..50)
        .map(|i| {
            let mut row = turbines.rows[0].clone();
            row[id_col] = Value::Int(90_000 + i);
            row
        })
        .collect();
    p.insert_static("turbines", inserted).unwrap();

    // The stats catalog reflects the write immediately.
    let stats_after = p.table_stats();
    assert_eq!(
        stats_after.row_count("turbines"),
        Some(rows_before + 50),
        "TableStats refreshed on insert_static"
    );
    assert!(stats_after.total_rows() > stats_before.total_rows());

    // The cache was invalidated: the next run misses, sees the new rows,
    // and its plan reflects the new cardinalities.
    let (after, fresh) = p.query_static_with_stats(text).unwrap();
    assert_eq!(fresh.cache_hits, 0, "stale cache served: {fresh:?}");
    assert!(fresh.cache_misses >= 1);
    assert!(after.len() > first.len(), "inserted turbines are visible");
    assert!(
        fresh.estimated_rows > cold.estimated_rows,
        "plan estimates must grow with the table: {} !> {}",
        fresh.estimated_rows,
        cold.estimated_rows
    );
    assert!(fresh.actual_rows > cold.actual_rows);
    assert_eq!(p.dashboard().bgp_cache_invalidations, 1);
}

/// A distributed run must genuinely ship: fragments > 0 and zero
/// coordinator fallbacks, both on the per-query stats and the dashboard
/// (yesterday a silent fallback could make a "distributed" test pass on
/// the coordinator).
#[test]
fn distributed_runs_prove_fragments_shipped() {
    let p = OptiquePlatform::from_siemens(SiemensDeployment::small());
    let (_, stats) = p
        .query_static_distributed_with_stats(
            "SELECT DISTINCT ?s WHERE { ?s a sie:MonitoringDevice }",
            4,
        )
        .unwrap();
    assert!(stats.fragments >= 1, "{stats:?}");
    assert_eq!(stats.coordinator_fallbacks, 0, "{stats:?}");
    let dash = p.dashboard();
    let panel = dash.static_queries.last().unwrap();
    assert!(panel.fragments >= 1);
    assert_eq!(panel.coordinator_fallbacks, 0);
    assert_eq!(dash.total_coordinator_fallbacks(), 0);
}

// ---- property-based suite ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(32)))]
    #[test]
    fn generated_plans_are_equivalent(text in query_strategy()) {
        let n = naive();
        n.bgp_cache().invalidate();
        let reference = n.query_static(&text);
        prop_assert!(reference.is_ok(), "naive failed for {}: {:?}", text, reference.err());
        let reference = reference.unwrap();

        let o = optimized();
        o.bgp_cache().invalidate();
        let single = o.query_static(&text);
        prop_assert!(single.is_ok(), "optimized failed for {}: {:?}", text, single.err());
        prop_assert_eq!(
            canon(&reference),
            canon(&single.unwrap()),
            "optimized ≠ naive single-node for {}", text
        );
        for workers in WORKER_COUNTS {
            o.bgp_cache().invalidate();
            let distributed = o.query_static_distributed(&text, workers);
            prop_assert!(
                distributed.is_ok(),
                "{} workers failed for {}: {:?}", workers, text, distributed.err()
            );
            prop_assert_eq!(
                canon(&reference),
                canon(&distributed.unwrap()),
                "optimized distributed ≠ naive at {} workers for {}", workers, text
            );
        }
        o.bgp_cache().invalidate();
        n.bgp_cache().invalidate();
    }
}
