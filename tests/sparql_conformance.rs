//! Conformance suite for the `optique-sparql` front-end.
//!
//! Three table-driven sections:
//! 1. queries that must parse, with algebra-shape assertions,
//! 2. malformed queries that must be rejected with positioned errors,
//! 3. end-to-end `Platform::query_static` runs over the Siemens deployment
//!    (parse → PerfectRef rewrite → mapping unfolding → relational
//!    execution → residual algebra).

use optique::OptiquePlatform;
use optique_rdf::Namespaces;
use optique_siemens::SiemensDeployment;
use optique_sparql::{parse_sparql, PatternElement, Projection, Query, SelectItem, SparqlError};

fn ns() -> Namespaces {
    let mut ns = Namespaces::with_w3c_defaults();
    ns.bind("sie", "http://siemens.example/ontology#");
    ns.bind("", "http://siemens.example/ontology#");
    ns
}

fn parse(text: &str) -> Result<Query, SparqlError> {
    parse_sparql(text, &ns())
}

// ---- 1. valid parses + algebra shapes ---------------------------------

/// A predicate over the parsed algebra.
type ShapeCheck = fn(&Query) -> bool;

/// Each entry: (name, query, predicate over the parsed algebra).
fn valid_cases() -> Vec<(&'static str, &'static str, ShapeCheck)> {
    vec![
        ("plain_select", "SELECT ?s WHERE { ?s a sie:Sensor }", |q| {
            matches!(q, Query::Select(s) if !s.distinct
                && matches!(&s.projection, Projection::Items(items) if items.len() == 1))
        }),
        (
            "select_star",
            "SELECT * WHERE { ?s a sie:Sensor }",
            |q| matches!(q, Query::Select(s) if s.projection == Projection::All),
        ),
        (
            "distinct",
            "SELECT DISTINCT ?s WHERE { ?s a sie:Sensor }",
            |q| matches!(q, Query::Select(s) if s.distinct),
        ),
        (
            "where_keyword_optional",
            "SELECT ?s { ?s a sie:Sensor }",
            |q| matches!(q, Query::Select(_)),
        ),
        (
            "prologue_prefix",
            "PREFIX x: <http://example.org/> SELECT ?s WHERE { ?s a x:Thing }",
            |q| matches!(q, Query::Select(_)),
        ),
        (
            "base_resolution",
            "BASE <http://example.org/> SELECT ?s WHERE { ?s a <Thing> }",
            |q| matches!(q, Query::Select(_)),
        ),
        (
            "predicate_object_list",
            "SELECT ?s ?v WHERE { ?s a sie:Sensor ; sie:hasValue ?v . }",
            |q| bgp_len(q, 0) == Some(2),
        ),
        (
            "object_list",
            "SELECT ?s WHERE { ?s sie:relatedTo sie:a1 , sie:a2 . }",
            |q| bgp_len(q, 0) == Some(2),
        ),
        (
            "multiple_triples_one_block",
            "SELECT ?a ?s WHERE { ?a a sie:Assembly . ?s a sie:Sensor . ?a sie:inAssembly ?s . }",
            |q| bgp_len(q, 0) == Some(3),
        ),
        (
            "optional_element",
            "SELECT ?t ?c WHERE { ?t a sie:Turbine . OPTIONAL { ?t sie:locatedIn ?c } }",
            |q| matches!(element(q, 1), Some(PatternElement::Optional(_))),
        ),
        (
            "union_element",
            "SELECT ?x WHERE { { ?x a sie:GasTurbine } UNION { ?x a sie:SteamTurbine } }",
            |q| matches!(element(q, 0), Some(PatternElement::Union(b)) if b.len() == 2),
        ),
        (
            "three_way_union",
            "SELECT ?x WHERE { { ?x a :A } UNION { ?x a :B } UNION { ?x a :C } }",
            |q| matches!(element(q, 0), Some(PatternElement::Union(b)) if b.len() == 3),
        ),
        (
            "filter_comparison",
            "SELECT ?v WHERE { ?s sie:hasValue ?v . FILTER(?v >= 90.5) }",
            |q| matches!(element(q, 1), Some(PatternElement::Filter(_))),
        ),
        (
            "filter_connectives",
            "SELECT ?v WHERE { ?s sie:hasValue ?v . FILTER(?v > 1 && (?v < 9 || !(?v = 5))) }",
            |q| matches!(element(q, 1), Some(PatternElement::Filter(_))),
        ),
        (
            "filter_regex_flags",
            "SELECT ?m WHERE { ?t sie:hasModel ?m . FILTER(REGEX(?m, \"^sgt\", \"i\")) }",
            |q| matches!(element(q, 1), Some(PatternElement::Filter(_))),
        ),
        (
            "filter_bound",
            "SELECT ?t WHERE { ?t a sie:Turbine . OPTIONAL { ?t sie:locatedIn ?c } \
          FILTER(!BOUND(?c)) }",
            |q| matches!(element(q, 2), Some(PatternElement::Filter(_))),
        ),
        (
            "order_limit_offset",
            "SELECT ?s WHERE { ?s a sie:Sensor } ORDER BY ?s LIMIT 10 OFFSET 5",
            |q| {
                matches!(q, Query::Select(s)
             if s.modifiers.limit == Some(10) && s.modifiers.offset == Some(5)
                && s.modifiers.order_by.len() == 1)
            },
        ),
        (
            "order_desc",
            "SELECT ?v WHERE { ?s sie:hasValue ?v } ORDER BY DESC(?v) ?s",
            |q| {
                matches!(q, Query::Select(s) if s.modifiers.order_by.len() == 2
             && s.modifiers.order_by[0].1)
            },
        ),
        (
            "count_star_group_by",
            "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s sie:attachedTo ?t } GROUP BY ?t",
            |q| {
                matches!(q, Query::Select(s) if s.group_by == vec!["t".to_string()]
             && matches!(&s.projection, Projection::Items(items)
                 if matches!(items[1], SelectItem::Aggregate { var: None, .. })))
            },
        ),
        (
            "aggregate_suite",
            "SELECT (COUNT(?v) AS ?n) (AVG(?v) AS ?mean) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) \
          WHERE { ?s sie:hasValue ?v }",
            |q| {
                matches!(q, Query::Select(s)
             if matches!(&s.projection, Projection::Items(items) if items.len() == 4))
            },
        ),
        (
            "count_distinct",
            "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s sie:attachedTo ?t }",
            |q| {
                matches!(q, Query::Select(s)
             if matches!(&s.projection, Projection::Items(items)
                 if matches!(items[0], SelectItem::Aggregate { distinct: true, .. })))
            },
        ),
        ("ask_form", "ASK { ?s a sie:Sensor }", |q| {
            matches!(q, Query::Ask(_))
        }),
        ("ask_with_where", "ASK WHERE { ?s a sie:Sensor }", |q| {
            matches!(q, Query::Ask(_))
        }),
        (
            "typed_literal",
            "SELECT ?s WHERE { ?s sie:hasValue \"42\"^^xsd:integer }",
            |q| bgp_len(q, 0) == Some(1),
        ),
        (
            "negative_number_filter",
            "SELECT ?v WHERE { ?s sie:hasValue ?v . FILTER(?v > -5) }",
            |q| matches!(element(q, 1), Some(PatternElement::Filter(_))),
        ),
        (
            "comments_ignored",
            "# find sensors\nSELECT ?s # projection\nWHERE { ?s a sie:Sensor }",
            |q| matches!(q, Query::Select(_)),
        ),
        (
            "nested_group",
            "SELECT ?s WHERE { { ?s a sie:Sensor . } }",
            |q| matches!(element(q, 0), Some(PatternElement::SubGroup(_))),
        ),
    ]
}

fn element(q: &Query, i: usize) -> Option<&PatternElement> {
    q.pattern().elements.get(i)
}

fn bgp_len(q: &Query, i: usize) -> Option<usize> {
    match element(q, i) {
        Some(PatternElement::Triples(atoms)) => Some(atoms.len()),
        _ => None,
    }
}

#[test]
fn valid_queries_parse_with_expected_shapes() {
    for (name, text, check) in valid_cases() {
        match parse(text) {
            Ok(query) => assert!(check(&query), "{name}: unexpected shape: {query:#?}"),
            Err(e) => panic!("{name}: failed to parse: {e}"),
        }
    }
}

// ---- 2. malformed inputs ----------------------------------------------

/// Each entry: (name, query, substring expected in the error display).
fn invalid_cases() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("empty_input", "", "SELECT or ASK"),
        ("bare_keyword", "SELECT", "SELECT needs"),
        (
            "missing_brace",
            "SELECT ?s WHERE { ?s a sie:Sensor",
            "unterminated",
        ),
        (
            "missing_object",
            "SELECT ?s WHERE { ?s a }",
            "expected a term",
        ),
        (
            "variable_predicate",
            "SELECT ?s WHERE { ?s ?p ?o }",
            "variable predicate",
        ),
        (
            "unbound_prefix",
            "SELECT ?s WHERE { ?s a nope:Thing }",
            "unbound prefix",
        ),
        (
            "bad_aggregate",
            "SELECT (MEDIAN(?v) AS ?m) WHERE { ?s sie:hasValue ?v }",
            "unknown aggregate",
        ),
        (
            "sum_star",
            "SELECT (SUM(*) AS ?x) WHERE { ?s sie:hasValue ?v }",
            "COUNT(*)",
        ),
        (
            "aggregate_without_alias",
            "SELECT (COUNT(?v)) WHERE { ?s sie:hasValue ?v }",
            "expected AS",
        ),
        (
            "limit_not_a_number",
            "SELECT ?s WHERE { ?s a sie:Sensor } LIMIT many",
            "non-negative integer",
        ),
        (
            "group_by_without_vars",
            "SELECT ?s WHERE { ?s a sie:Sensor } GROUP BY",
            "at least one variable",
        ),
        (
            "trailing_garbage",
            "SELECT ?s WHERE { ?s a sie:Sensor } EXTRA",
            "trailing input",
        ),
        (
            "lone_ampersand",
            "SELECT ?v WHERE { ?s sie:hasValue ?v . FILTER(?v > 1 & ?v < 2) }",
            "lone '&'",
        ),
        (
            "unterminated_string",
            "SELECT ?s WHERE { ?s sie:hasModel \"SGT",
            "unterminated",
        ),
        (
            "filter_without_parens",
            "SELECT ?v WHERE { ?s sie:hasValue ?v . FILTER ?v > 5 }",
            "after FILTER",
        ),
    ]
}

#[test]
fn malformed_queries_rejected_with_positions() {
    for (name, text, needle) in invalid_cases() {
        match parse(text) {
            Ok(q) => panic!("{name}: should have been rejected, parsed as {q:#?}"),
            Err(e) => {
                let shown = e.to_string();
                assert!(
                    shown.contains(needle),
                    "{name}: error {shown:?} does not mention {needle:?}"
                );
                assert!(
                    shown.contains("line"),
                    "{name}: error {shown:?} carries no position"
                );
            }
        }
    }
}

// ---- 3. end-to-end over the Siemens deployment ------------------------

fn platform() -> OptiquePlatform {
    OptiquePlatform::from_siemens(SiemensDeployment::small())
}

/// The acceptance-criterion query: SELECT with FILTER + OPTIONAL +
/// ORDER/LIMIT over the Siemens mappings, end to end.
#[test]
fn select_filter_optional_order_limit_end_to_end() {
    let p = platform();
    let results = p
        .query_static(
            "SELECT ?t ?m ?c WHERE { \
               ?t a sie:Turbine ; sie:hasModel ?m . \
               OPTIONAL { ?t sie:locatedIn ?c } \
               FILTER(REGEX(?m, \"^SGT\")) \
             } ORDER BY ?m LIMIT 7",
        )
        .unwrap();
    assert_eq!(results.vars(), ["t", "m", "c"]);
    assert!(results.len() <= 7 && !results.is_empty());
    // Ordered ascending by model, and every model passed the filter.
    let models: Vec<String> = results
        .rows()
        .iter()
        .map(|r| match &r[1] {
            Some(optique_rdf::Term::Literal(l)) => l.lexical().to_string(),
            other => panic!("model should be a literal, got {other:?}"),
        })
        .collect();
    let mut sorted = models.clone();
    sorted.sort();
    assert_eq!(models, sorted);
    assert!(models.iter().all(|m| m.starts_with("SGT")));
    // locatedIn is mapped for every turbine, so the OPTIONAL binds.
    assert!(results.rows().iter().all(|r| r[2].is_some()));
    // The pipeline surfaced its counters on the dashboard.
    let dash = p.dashboard();
    assert_eq!(dash.static_queries.len(), 1);
    assert!(dash.static_queries[0].sql_disjuncts >= 1);
}

#[test]
fn taxonomy_reachability_via_rewriting() {
    let p = platform();
    // PowerGeneratingAppliance has no mapping of its own; only rewriting
    // through GasTurbine/SteamTurbine ⊑ Turbine ⊑ PowerGeneratingAppliance
    // reaches the data.
    let all = p
        .query_static("SELECT ?t WHERE { ?t a sie:PowerGeneratingAppliance }")
        .unwrap();
    let direct = p
        .query_static("SELECT ?t WHERE { ?t a sie:Turbine }")
        .unwrap();
    assert_eq!(all.len(), direct.len());
    assert!(!all.is_empty());
}

#[test]
fn union_and_distinct_over_regional_registries() {
    let p = platform();
    let (results, stats) = p
        .query_static_with_stats(
            "SELECT DISTINCT ?s WHERE { \
               { ?s a sie:TemperatureSensor } UNION { ?s a sie:PressureSensor } }",
        )
        .unwrap();
    // 3 sensors per assembly, kinds assigned round-robin per assembly →
    // 20 temperature + 20 pressure.
    assert_eq!(results.len(), 40);
    // Each branch fans out across the unified + 3 regional registries.
    assert!(stats.sql_disjuncts >= 8, "stats: {stats:?}");
}

#[test]
fn aggregates_group_sensors_per_assembly() {
    let p = platform();
    let results = p
        .query_static(
            "SELECT ?a (COUNT(DISTINCT ?s) AS ?n) WHERE { ?a sie:inAssembly ?s } \
             GROUP BY ?a ORDER BY DESC(?n) LIMIT 5",
        )
        .unwrap();
    assert!(!results.is_empty() && results.len() <= 5);
    // Every assembly hosts at least one sensor.
    for row in results.rows() {
        let n = match &row[1] {
            Some(optique_rdf::Term::Literal(l)) => l.as_i64().unwrap(),
            other => panic!("count should be an integer, got {other:?}"),
        };
        assert!(n >= 1);
    }
}

#[test]
fn ask_and_empty_results() {
    let p = platform();
    assert_eq!(
        p.query_static("ASK { ?s a sie:RotorSpeedSensor }")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    assert_eq!(
        p.query_static("ASK { ?s a sie:VibrationSensor }")
            .unwrap()
            .as_bool(),
        Some(false),
        "the small fleet assigns 3 sensors per assembly; vibration is the 4th kind"
    );
    let empty = p
        .query_static("SELECT ?x WHERE { ?x a sie:DiagnosticMessage }")
        .unwrap();
    assert!(
        empty.is_empty(),
        "diagnostic messages only exist on streams"
    );
}

// ---- 4. per-BGP cache behaviour ---------------------------------------

/// A query whose UNION branches repeat the same BGP hits the cache within a
/// single execution, and re-running a query hits for every BGP; the
/// counters surface on the dashboard.
#[test]
fn repeated_bgps_raise_hit_counters() {
    let p = platform();
    let text = "SELECT ?s WHERE { { ?s a sie:Sensor } UNION { ?s a sie:Sensor } }";
    let (_, stats) = p.query_static_with_stats(text).unwrap();
    assert_eq!(stats.cache_misses, 1, "first branch fills: {stats:?}");
    assert_eq!(stats.cache_hits, 1, "second branch hits: {stats:?}");
    let (_, stats) = p.query_static_with_stats(text).unwrap();
    assert_eq!(stats.cache_hits, 2, "warm re-run hits everywhere");
    assert_eq!(stats.cache_misses, 0);
    let dash = p.dashboard();
    assert_eq!(dash.bgp_cache_hits, 3);
    assert_eq!(dash.bgp_cache_misses, 1);
    assert_eq!(dash.bgp_cache_hit_rate(), Some(0.75));
    assert!(
        dash.render().contains("BGP cache 75% hit"),
        "{}",
        dash.render()
    );
}

/// A relational INSERT invalidates the cache; answers after the write are
/// correct (they include the new row) on both the single-node and the
/// federated path, and caching resumes on the new snapshot.
#[test]
fn insert_invalidates_and_results_stay_correct() {
    let p = platform();
    let text = "SELECT DISTINCT ?t WHERE { ?t a sie:Turbine }";
    let before = p.query_static(text).unwrap();
    // Warm the cache over the old snapshot.
    let (_, stats) = p.query_static_with_stats(text).unwrap();
    assert!(stats.cache_hits >= 1);

    // Append one turbine row (gas → reachable through GasTurbine ⊑ Turbine).
    let turbines = p.db().table("turbines").unwrap().clone();
    let mut row = turbines.rows[0].clone();
    row[0] = optique_relational::Value::Int(424_242);
    p.insert_static("turbines", vec![row]).unwrap();

    let after = p.query_static(text).unwrap();
    assert_eq!(
        after.len(),
        before.len() + 1,
        "stale cached answers would miss the inserted turbine"
    );
    let distributed = p.query_static_distributed(text, 4).unwrap();
    assert_eq!(distributed.len(), after.len(), "federation re-provisioned");
    // Caching resumed on the new snapshot.
    let (warm, stats) = p.query_static_with_stats(text).unwrap();
    assert!(stats.cache_hits >= 1);
    assert_eq!(warm.len(), after.len());
    assert_eq!(p.dashboard().bgp_cache_invalidations, 1);
    // Inserting into a missing table is a positioned failure, not a panic.
    assert!(p.insert_static("no_such_table", vec![]).is_err());
}

#[test]
fn results_render_for_the_dashboard() {
    let p = platform();
    let results = p
        .query_static("SELECT ?t ?m WHERE { ?t sie:hasModel ?m } ORDER BY ?m LIMIT 3")
        .unwrap();
    let rendered = results.render(2);
    assert!(rendered.contains("?t | ?m"));
    assert!(rendered.contains("more rows"), "{rendered}");
}
