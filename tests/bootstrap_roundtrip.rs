//! Demo scenario S3: deploy OPTIQUE over the Siemens data by bootstrapping
//! ontologies and mappings, then query the bootstrapped deployment.

use optique_bootstrap::{
    align, bootstrap_direct, discover_by_keywords, discover_foreign_keys, BootstrapSettings,
};
use optique_rdf::Iri;
use optique_rewrite::{Atom, ConjunctiveQuery, QueryTerm};
use optique_siemens::{fleet::fleet_schema, FleetConfig, SiemensDeployment};

fn settings() -> BootstrapSettings {
    BootstrapSettings {
        vocab_ns: "http://boot.example/vocab#".into(),
        data_ns: "http://boot.example/data/".into(),
        mandatory_participation: true,
    }
}

#[test]
fn bootstrap_then_query_roundtrip() {
    let deployment = SiemensDeployment::small();
    let out = bootstrap_direct(&fleet_schema(), &settings()).unwrap();
    assert!(out.skipped.is_empty(), "{:?}", out.skipped);

    // Query the bootstrapped class for turbines.
    let q = ConjunctiveQuery::new(
        vec!["t".into()],
        vec![Atom::class(
            Iri::new("http://boot.example/vocab#Turbine"),
            QueryTerm::var("t"),
        )],
    );
    let (sql, _) = optique_mapping::unfold_cq(&q, &out.mappings, &Default::default()).unwrap();
    let table = optique_relational::exec::query(&sql.unwrap().to_string(), &deployment.db).unwrap();
    assert_eq!(table.len(), FleetConfig::small().turbines);
}

#[test]
fn bootstrapped_fk_property_joins() {
    let deployment = SiemensDeployment::small();
    let out = bootstrap_direct(&fleet_schema(), &settings()).unwrap();
    // sensors.aid → assemblies: named hasAssembly (no `_id` suffix on the
    // column, so the target class names the property).
    let prop = out
        .mappings
        .mapped_terms()
        .into_iter()
        .find(|iri| iri.as_str().contains("vocab#hasAssembly"))
        .expect("FK property bootstrapped")
        .clone();
    let q = ConjunctiveQuery::new(
        vec!["s".into(), "a".into()],
        vec![Atom::property(
            prop,
            QueryTerm::var("s"),
            QueryTerm::var("a"),
        )],
    );
    let (sql, _) = optique_mapping::unfold_cq(&q, &out.mappings, &Default::default()).unwrap();
    let table = optique_relational::exec::query(&sql.unwrap().to_string(), &deployment.db).unwrap();
    assert_eq!(table.len(), deployment.sensor_ids.len());
}

#[test]
fn implicit_fks_rediscovered_from_data() {
    let deployment = SiemensDeployment::small();
    // Strip the declared FKs and rediscover them from the data.
    let mut schema = fleet_schema();
    for table in &mut schema.tables {
        table.foreign_keys.clear();
    }
    let proposals = discover_foreign_keys(&schema, &deployment.db, &Default::default());
    let has = |src: &str, col: &str, dst: &str| {
        proposals
            .iter()
            .any(|(t, fk)| t == src && fk.columns == vec![col.to_string()] && fk.ref_table == dst)
    };
    assert!(has("sensors", "aid", "assemblies"), "{proposals:?}");
    assert!(has("assemblies", "tid", "turbines"), "{proposals:?}");
    assert!(has("turbines", "country_id", "countries"), "{proposals:?}");
}

#[test]
fn keyword_discovery_on_fleet() {
    let deployment = SiemensDeployment::small();
    let candidates =
        discover_by_keywords(&fleet_schema(), &deployment.db, &["SGT", "gas", "germany"]);
    assert!(!candidates.is_empty());
    let best = &candidates[0];
    assert!(best.score > 0.6, "{best:?}");
    let table = optique_relational::exec::query(&best.sql, &deployment.db).unwrap();
    assert!(!table.is_empty());
}

#[test]
fn alignment_bridges_bootstrapped_to_curated() {
    let curated = optique_siemens::ontology::siemens_ontology();
    let out = bootstrap_direct(&fleet_schema(), &settings()).unwrap();
    // Bootstrapped vocabulary uses Turbine/Sensor/Assembly local names, so
    // lexical alignment against the curated Siemens ontology finds them.
    let result = align(&curated, &out.ontology);
    assert!(
        result.matches.len() >= 3,
        "expected Turbine/Sensor/Assembly/Country matches, got {:?}",
        result.matches
    );
    assert!(!result.accepted.is_empty());
    // Merged ontology entails: bootstrapped Turbine ⊑ curated PowerGeneratingAppliance.
    let boot_turbine =
        optique_ontology::BasicConcept::atomic(Iri::new("http://boot.example/vocab#Turbine"));
    let sups = result.merged.sup_concepts_closure(&boot_turbine);
    assert!(
        sups.iter().any(|c| c
            .as_atomic()
            .is_some_and(|i| i.local_name() == "PowerGeneratingAppliance")),
        "bridge connects bootstrapped vocabulary into the curated taxonomy"
    );
}

#[test]
fn bootstrap_scales_linearly_enough() {
    // E6 sanity: bootstrapping the fleet schema is effectively instant.
    let out = bootstrap_direct(&fleet_schema(), &settings()).unwrap();
    assert!(out.elapsed.as_millis() < 1_000, "took {:?}", out.elapsed);
    assert!(out.class_count() >= 5);
}
