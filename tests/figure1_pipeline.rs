//! End-to-end reproduction of paper Figure 1 (experiment F1): the
//! monotonic-increase diagnostic task, from STARQL text to alarms, checked
//! against the generator's planted ground truth.

use optique::OptiquePlatform;
use optique_siemens::SiemensDeployment;
use optique_starql::FIGURE1;

struct DeploymentInfo {
    ramp_failures: Vec<(i64, i64)>,
    start_ms: i64,
    duration_ms: i64,
}

/// Runs the full pipeline and collects `(tick, sensor IRI)` alarms.
fn run_figure1() -> (DeploymentInfo, Vec<(i64, String)>) {
    let deployment = SiemensDeployment::small();
    let info = DeploymentInfo {
        ramp_failures: deployment.ground_truth.ramp_failures.clone(),
        start_ms: deployment.stream_config.start_ms,
        duration_ms: deployment.stream_config.duration_ms,
    };
    let platform = OptiquePlatform::from_siemens(deployment);
    platform
        .register_starql(FIGURE1)
        .expect("figure 1 registers");

    let mut alarms = Vec::new();
    let end = info.start_ms + info.duration_ms;
    for tick in (info.start_ms..=end).step_by(1_000) {
        for (_, out) in platform.tick_all(tick).expect("tick") {
            for triple in out.triples {
                if let optique_rdf::Term::Iri(iri) = &triple.subject {
                    alarms.push((tick, iri.as_str().to_string()));
                }
            }
        }
    }
    (info, alarms)
}

#[test]
fn planted_ramps_raise_alarms() {
    let (info, alarms) = run_figure1();
    assert!(
        !info.ramp_failures.is_empty(),
        "generator must plant failures"
    );
    for (sensor, _fail_ts) in &info.ramp_failures {
        let iri = format!("http://siemens.example/data/sensor/{sensor}");
        assert!(
            alarms.iter().any(|(_, s)| s == &iri),
            "planted ramp on sensor {sensor} never fired; alarms: {alarms:?}"
        );
    }
}

#[test]
fn alarms_only_on_planted_sensors() {
    let (info, alarms) = run_figure1();
    let planted: Vec<String> = info
        .ramp_failures
        .iter()
        .map(|(s, _)| format!("http://siemens.example/data/sensor/{s}"))
        .collect();
    for (tick, sensor) in &alarms {
        assert!(
            planted.contains(sensor),
            "false alarm at {tick} for {sensor} (planted: {planted:?})"
        );
    }
}

#[test]
fn alarm_timing_matches_failure_instant() {
    let (info, alarms) = run_figure1();
    // An alarm fires no earlier than its failure event (the EXISTS needs
    // the failure message inside the window) and not much later.
    for (sensor, fail_ts) in &info.ramp_failures {
        let iri = format!("http://siemens.example/data/sensor/{sensor}");
        let first = alarms
            .iter()
            .find(|(_, s)| s == &iri)
            .map(|(t, _)| *t)
            .expect("alarm exists per previous test");
        assert!(
            first >= *fail_ts,
            "sensor {sensor}: alarm at {first} precedes failure at {fail_ts}"
        );
        assert!(
            first <= fail_ts + 11_000,
            "sensor {sensor}: alarm at {first} too long after failure at {fail_ts}"
        );
    }
}

#[test]
fn translation_artifacts_are_well_formed() {
    let deployment = SiemensDeployment::small();
    let parsed = optique_starql::parse_starql(FIGURE1, &deployment.namespaces).expect("parses");
    let ctx = optique_starql::TranslationContext {
        ontology: &deployment.ontology,
        mappings: &deployment.mappings,
        rewrite_settings: Default::default(),
        unfold_settings: Default::default(),
    };
    let translated = optique_starql::translate(&parsed, &ctx).expect("translates");
    // The static SQL must execute over the deployment.
    let sql = translated
        .static_sql
        .clone()
        .expect("WHERE terms are mapped");
    let table = optique_relational::exec::query(&sql.to_string(), &deployment.db).unwrap();
    // Disjuncts of the enriched union overlap; the distinct answers are
    // exactly the sensors (every sensor sits in an assembly).
    let distinct: std::collections::BTreeSet<_> = table.rows.iter().collect();
    assert_eq!(
        distinct.len(),
        deployment.sensor_ids.len(),
        "every sensor sits in an assembly, so every sensor is a binding"
    );
    // The fleet is strictly larger than the single STARQL query.
    assert!(translated.fleet_size() >= 2);
}
